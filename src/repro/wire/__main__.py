"""CLI for the frame catalogue.

``python -m repro.wire --dump-catalogue`` prints the generated frame
tables; ``python -m repro.wire --check-docs [PATH]`` verifies that the
marker-delimited section of ``PROTOCOLS.md`` matches the registry
byte-for-byte (the CI drift gate).
"""

from __future__ import annotations

import argparse
import sys

from repro.wire.catalogue import dump_catalogue

BEGIN_MARK = "<!-- BEGIN GENERATED FRAME CATALOGUE -->"
END_MARK = "<!-- END GENERATED FRAME CATALOGUE -->"


def embedded_section(doc_text: str) -> str | None:
    """The generated catalogue embedded in a document, or ``None``."""
    try:
        start = doc_text.index(BEGIN_MARK) + len(BEGIN_MARK)
        end = doc_text.index(END_MARK, start)
    except ValueError:
        return None
    return doc_text[start:end].strip("\n") + "\n"


def check_docs(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = fh.read()
    except OSError as exc:
        print(f"drift check: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    embedded = embedded_section(doc)
    if embedded is None:
        print(f"drift check: {path} has no "
              f"{BEGIN_MARK!r}...{END_MARK!r} section", file=sys.stderr)
        return 2
    expected = dump_catalogue()
    if embedded != expected:
        print(f"drift check: {path} frame catalogue is out of date — "
              "regenerate it with `python -m repro.wire --dump-catalogue`",
              file=sys.stderr)
        return 1
    print(f"drift check: {path} matches the registry "
          f"({expected.count('| `')} frames)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.wire")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dump-catalogue", action="store_true",
                       help="print the generated frame tables")
    group.add_argument("--check-docs", nargs="?", const="PROTOCOLS.md",
                       metavar="PATH",
                       help="verify the embedded catalogue in PATH "
                            "(default: PROTOCOLS.md)")
    args = parser.parse_args(argv)
    if args.dump_catalogue:
        sys.stdout.write(dump_catalogue())
        return 0
    return check_docs(args.check_docs)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
