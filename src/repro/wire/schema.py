"""Declarative frame schemas: ``Field``/``FrameSpec`` plus decoded views.

The paper's threat model (§2.3) is tampered and forged messages, yet a
hand-parsed frame is only as safe as the most careless handler.  This
module makes the frame layout itself data: each message type has a
:class:`FrameSpec` naming its fields, their wire kinds (text / bytes /
xml / json) and their bounds, and :meth:`FrameSpec.decode` turns a raw
:class:`~repro.jxta.messages.Message` into a validated
:class:`DecodedFrame` or raises a single, classified
:class:`WireRejected`.

The classification (:data:`REASONS`) is the reject taxonomy the
dispatch boundary counts under ``wire.reject.<msg_type>.<reason>`` —
see :mod:`repro.wire.boundary`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import JxtaError
from repro.jxta.messages import Message
from repro.xmllib import Element

#: Wire kinds a field may declare, in the order ``PROTOCOLS.md`` uses.
KINDS = ("text", "bytes", "xml", "json")

# -- reject taxonomy ---------------------------------------------------------

REASON_UNKNOWN_TYPE = "unknown_type"      # msg_type not in the registry
REASON_MISSING_FIELD = "missing_field"    # required field absent
REASON_DUPLICATE_FIELD = "duplicate_field"  # same name appears twice
REASON_WRONG_KIND = "wrong_kind"          # e.g. base64 where text expected
REASON_BAD_JSON = "bad_json"              # json field does not parse / wrong type
REASON_BAD_NUMBER = "bad_number"          # numeric text field is not an integer
REASON_TOO_LARGE = "too_large"            # a field exceeded its size bound
REASON_UNKNOWN_FIELD = "unknown_field"    # element not named by the spec
REASON_BAD_INNER = "bad_inner"            # pipe payload is not a valid frame
REASON_OVERSIZE = "oversize"              # whole frame over the global wire cap

#: Every reason the boundary may count, for docs and tests.
REASONS = (
    REASON_UNKNOWN_TYPE,
    REASON_MISSING_FIELD,
    REASON_DUPLICATE_FIELD,
    REASON_WRONG_KIND,
    REASON_BAD_JSON,
    REASON_BAD_NUMBER,
    REASON_TOO_LARGE,
    REASON_UNKNOWN_FIELD,
    REASON_BAD_INNER,
    REASON_OVERSIZE,
)


class WireRejected(JxtaError):
    """A frame failed boundary validation.

    Subclasses :class:`JxtaError` so pre-schema call sites that caught
    parse failures coarsely keep working unchanged.
    """

    def __init__(self, msg_type: str, reason: str, detail: str = "") -> None:
        text = f"frame {msg_type!r} rejected ({reason})"
        if detail:
            text = f"{text}: {detail}"
        super().__init__(text)
        self.msg_type = msg_type
        self.reason = reason
        self.detail = detail


#: Default per-field size bounds (serialized length) by kind.  ``xml``
#: fields are bounded only by the global wire cap — measuring them would
#: mean re-serializing the subtree on every decode.
DEFAULT_MAX_SIZE = {"text": 65536, "bytes": 262144, "json": 262144, "xml": None}

_PY_KIND = {"text": str, "bytes": bytes, "xml": Element}
_JSON_TYPES = {"dict": dict, "list": list}


@dataclass(frozen=True)
class Field:
    """One named element of a frame.

    ``kind`` is the wire encoding (``json`` rides on a text element and
    is parsed at decode time).  ``json_type`` constrains the decoded
    JSON top-level type (``"dict"`` or ``"list"``).  ``numeric`` marks a
    text field that must hold a base-10 integer; the decoded view then
    yields an ``int``.  ``max_size`` bounds the serialized length
    (``None`` = bounded only by the global wire cap).  ``sample`` is a
    representative valid value used by the fuzz/coverage suites to
    synthesize well-formed instances.
    """

    name: str
    kind: str = "text"
    required: bool = True
    max_size: int | None = -1  # -1: use the per-kind default
    json_type: str | None = None
    numeric: bool = False
    sample: Any = None
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown field kind {self.kind!r}")
        if self.json_type is not None and self.json_type not in _JSON_TYPES:
            raise ValueError(f"unknown json_type {self.json_type!r}")
        if self.numeric and self.kind != "text":
            raise ValueError("numeric applies to text fields only")
        if self.max_size == -1:
            object.__setattr__(self, "max_size", DEFAULT_MAX_SIZE[self.kind])

    # -- validation --------------------------------------------------------

    def check(self, msg_type: str, value: Any) -> Any:
        """Validate one raw element value; return the decoded value.

        Raises :class:`WireRejected` with the precise reason on failure.
        """
        expected = _PY_KIND.get("text" if self.kind == "json" else self.kind)
        if not isinstance(value, expected):
            raise WireRejected(
                msg_type, REASON_WRONG_KIND,
                f"field {self.name!r} expects {self.kind}")
        if self.max_size is not None and not isinstance(value, Element):
            if len(value) > self.max_size:
                raise WireRejected(
                    msg_type, REASON_TOO_LARGE,
                    f"field {self.name!r} over {self.max_size} bytes")
        if self.kind == "json":
            try:
                decoded = json.loads(value)
            except json.JSONDecodeError as exc:
                raise WireRejected(
                    msg_type, REASON_BAD_JSON,
                    f"field {self.name!r}: {exc}") from None
            if self.json_type is not None and not isinstance(
                    decoded, _JSON_TYPES[self.json_type]):
                raise WireRejected(
                    msg_type, REASON_BAD_JSON,
                    f"field {self.name!r} must be a JSON {self.json_type}")
            return decoded
        if self.numeric:
            try:
                return int(value, 10)
            except ValueError:
                raise WireRejected(
                    msg_type, REASON_BAD_NUMBER,
                    f"field {self.name!r} is not an integer") from None
        return value

    # -- fuzz/coverage synthesis -------------------------------------------

    def sample_value(self) -> Any:
        """A representative valid raw value for this field."""
        if self.sample is not None:
            return self.sample
        if self.kind == "bytes":
            return b"\x01\x02"
        if self.kind == "xml":
            return Element("Doc")
        if self.kind == "json":
            return [] if self.json_type == "list" else {}
        if self.numeric:
            return "0"
        return "x"


class DecodedFrame:
    """Typed, validated view over one message's elements.

    Field access goes through ``frame["name"]`` / ``frame.get("name")``;
    json fields are already parsed, numeric fields are ``int``.
    """

    __slots__ = ("msg_type", "spec", "_values")

    def __init__(self, msg_type: str, spec: "FrameSpec",
                 values: dict[str, Any]) -> None:
        self.msg_type = msg_type
        self.spec = spec
        self._values = values

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise JxtaError(
                f"frame {self.msg_type!r} has no element {name!r}") from None

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def has(self, name: str) -> bool:
        return name in self._values

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedFrame {self.msg_type} {sorted(self._values)}>"


def _compile_field(msg_type: str, field: Field) -> Callable[[Any], Any]:
    """Specialize :meth:`Field.check` into a closure for one field.

    All per-kind branching is resolved here, once, so the returned
    checker runs only the tests that can actually fail for this field.
    The decision logic (and every reject reason) is identical to
    :meth:`Field.check` — the differential tests hold the two paths
    byte-for-byte equal over the mutation-fuzz corpus.
    """
    name, kind = field.name, field.kind
    expected = _PY_KIND["text" if kind == "json" else kind]
    max_size = field.max_size
    # xml values are Elements, which the reference path never measures.
    check_size = max_size is not None and kind != "xml"

    if kind == "json":
        json_type = _JSON_TYPES[field.json_type] if field.json_type else None
        loads = json.loads

        def check(value: Any) -> Any:
            if not isinstance(value, str):
                raise WireRejected(msg_type, REASON_WRONG_KIND,
                                   f"field {name!r} expects {kind}")
            if check_size and len(value) > max_size:
                raise WireRejected(msg_type, REASON_TOO_LARGE,
                                   f"field {name!r} over {max_size} bytes")
            try:
                decoded = loads(value)
            except json.JSONDecodeError as exc:
                raise WireRejected(msg_type, REASON_BAD_JSON,
                                   f"field {name!r}: {exc}") from None
            if json_type is not None and not isinstance(decoded, json_type):
                raise WireRejected(
                    msg_type, REASON_BAD_JSON,
                    f"field {name!r} must be a JSON {field.json_type}")
            return decoded

    elif field.numeric:

        def check(value: Any) -> Any:
            if not isinstance(value, str):
                raise WireRejected(msg_type, REASON_WRONG_KIND,
                                   f"field {name!r} expects {kind}")
            if check_size and len(value) > max_size:
                raise WireRejected(msg_type, REASON_TOO_LARGE,
                                   f"field {name!r} over {max_size} bytes")
            try:
                return int(value, 10)
            except ValueError:
                raise WireRejected(msg_type, REASON_BAD_NUMBER,
                                   f"field {name!r} is not an integer") from None

    else:

        def check(value: Any) -> Any:
            if not isinstance(value, expected):
                raise WireRejected(msg_type, REASON_WRONG_KIND,
                                   f"field {name!r} expects {kind}")
            if check_size and len(value) > max_size:
                raise WireRejected(msg_type, REASON_TOO_LARGE,
                                   f"field {name!r} over {max_size} bytes")
            return value

    return check


@dataclass(frozen=True)
class FrameSpec:
    """The declarative schema for one message type."""

    msg_type: str
    fields: tuple[Field, ...] = ()
    category: str = "plain"   # plain | federation | secure | pipe
    doc: str = ""

    def field(self, name: str) -> Field | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def required_fields(self) -> tuple[Field, ...]:
        return tuple(f for f in self.fields if f.required)

    # -- decoding ----------------------------------------------------------

    def decode(self, message: Message) -> DecodedFrame:
        """Validate ``message`` against this spec; raise :class:`WireRejected`.

        Strict by design: unknown elements are rejected, not ignored — a
        forged rider element must never coast through on a valid frame.
        """
        by_name = {f.name: f for f in self.fields}
        values: dict[str, Any] = {}
        for name, raw in message._elements:
            field = by_name.get(name)
            if field is None:
                raise WireRejected(
                    self.msg_type, REASON_UNKNOWN_FIELD,
                    f"unexpected element {name!r}")
            if name in values:
                raise WireRejected(
                    self.msg_type, REASON_DUPLICATE_FIELD,
                    f"element {name!r} repeated")
            values[name] = field.check(self.msg_type, raw)
        for field in self.fields:
            if field.required and field.name not in values:
                raise WireRejected(
                    self.msg_type, REASON_MISSING_FIELD,
                    f"element {field.name!r} required")
        return DecodedFrame(message.msg_type, self, values)

    def compiled(self) -> Callable[[Message], DecodedFrame]:
        """The precompiled decoder for this spec (built once, memoized).

        Semantically identical to :meth:`decode` — same decisions, same
        reject reasons, in the same order — but with the per-field
        dispatch specialized into closures, so the dispatch boundary
        pays no interpretive overhead per frame.  :meth:`decode` stays
        the reference implementation the differential tests diff
        against.
        """
        compiled = getattr(self, "_compiled", None)
        if compiled is not None:
            return compiled
        msg_type = self.msg_type
        checkers = {f.name: _compile_field(msg_type, f) for f in self.fields}
        required = tuple(f.name for f in self.fields if f.required)
        lookup = checkers.get
        spec = self

        def decode_fast(message: Message) -> DecodedFrame:
            values: dict[str, Any] = {}
            for name, raw in message._elements:
                checker = lookup(name)
                if checker is None:
                    raise WireRejected(msg_type, REASON_UNKNOWN_FIELD,
                                       f"unexpected element {name!r}")
                if name in values:
                    raise WireRejected(msg_type, REASON_DUPLICATE_FIELD,
                                       f"element {name!r} repeated")
                values[name] = checker(raw)
            for name in required:
                if name not in values:
                    raise WireRejected(msg_type, REASON_MISSING_FIELD,
                                       f"element {name!r} required")
            return DecodedFrame(message.msg_type, spec, values)

        object.__setattr__(self, "_compiled", decode_fast)
        return decode_fast

    # -- fuzz/coverage synthesis -------------------------------------------

    def sample_message(self) -> Message:
        """A well-formed instance of this frame (all fields populated)."""
        message = Message(self.msg_type)
        for field in self.fields:
            value = field.sample_value()
            if field.kind == "bytes":
                message.add_bytes(field.name, value)
            elif field.kind == "xml":
                message.add_xml(field.name, value)
            elif field.kind == "json":
                message.add_json(field.name, value)
            else:
                message.add_text(field.name, value)
        return message
