"""Mutation fuzzing over the frame catalogue.

Promoted from the wire test suite so runtime adversaries can reuse it:
given any :class:`~repro.wire.schema.FrameSpec`, :func:`build` emits a
valid sample instance and :func:`mutations` emits a family of
malformed variants, each labelled with the reject reason the wire
boundary must classify it under.  Everything works from the spec
alone, so the generated corpus automatically tracks catalogue changes.

Consumers:

* ``tests/wire/`` — per-spec fuzz against live broker/client endpoints;
* :class:`repro.scenario.adversaries.FrameStorm` — the scenario
  engine's malformed-frame adversary, which replays these mutations at
  population scale and checks the ``wire.reject.<msg_type>.<reason>``
  taxonomy accounts for every one of them.
"""

from __future__ import annotations

from repro.jxta.messages import Message
from repro.wire.schema import Field, FrameSpec

__all__ = ["add_field", "build", "mutations"]


def add_field(message: Message, field: Field, value) -> None:
    """Append one element of the field's declared kind."""
    if field.kind == "bytes":
        message.add_bytes(field.name, value)
    elif field.kind == "xml":
        message.add_xml(field.name, value)
    elif field.kind == "json":
        message.add_json(field.name, value)
    else:
        message.add_text(field.name, value)


def build(spec: FrameSpec, *, skip: str | None = None,
          mutate: dict | None = None) -> Message:
    """A sample instance of ``spec`` with one field dropped or corrupted.

    ``mutate`` maps field name to a ``(message, field)`` callable that
    appends the corrupted element itself.
    """
    message = Message(spec.msg_type)
    for field in spec.fields:
        if field.name == skip:
            continue
        if mutate is not None and field.name in mutate:
            mutate[field.name](message, field)
            continue
        add_field(message, field, field.sample_value())
    return message


def _wrong_kind(message: Message, field: Field) -> None:
    if field.kind in ("bytes", "xml"):
        message.add_text(field.name, "not-the-declared-encoding")
    else:
        message.add_bytes(field.name, b"\xff\xfe")


def _oversized(message: Message, field: Field) -> None:
    if field.kind == "bytes":
        message.add_bytes(field.name, b"\x00" * (field.max_size + 1))
    else:
        message.add_text(field.name, "x" * (field.max_size + 1))


def _junk_json(message: Message, field: Field) -> None:
    message.add_text(field.name, '{"unterminated')


def _bad_number(message: Message, field: Field) -> None:
    message.add_text(field.name, "three")


def mutations(spec: FrameSpec) -> list[tuple[str, Message, str]]:
    """``(label, malformed message, expected reject reason)`` triples.

    Every spec yields at least one mutation (the forged rider element);
    the others apply where the schema has a field of the right shape.
    """
    muts: list[tuple[str, Message, str]] = []
    for field in spec.required_fields():
        muts.append((f"drop-{field.name}",
                     build(spec, skip=field.name), "missing_field"))
    if spec.fields:
        first = spec.fields[0]
        muts.append((f"wrong-kind-{first.name}",
                     build(spec, mutate={first.name: _wrong_kind}),
                     "wrong_kind"))
        dup = build(spec)
        add_field(dup, first, first.sample_value())
        muts.append((f"duplicate-{first.name}", dup, "duplicate_field"))
    for field in spec.fields:
        if field.kind != "xml" and field.max_size is not None:
            muts.append((f"oversized-{field.name}",
                         build(spec, mutate={field.name: _oversized}),
                         "too_large"))
            break
    for field in spec.fields:
        if field.kind == "json":
            muts.append((f"junk-json-{field.name}",
                         build(spec, mutate={field.name: _junk_json}),
                         "bad_json"))
            break
    for field in spec.fields:
        if field.numeric:
            muts.append((f"bad-number-{field.name}",
                         build(spec, mutate={field.name: _bad_number}),
                         "bad_number"))
            break
    rider = build(spec)
    rider.add_text("bogus_rider", "1")
    muts.append(("forged-rider", rider, "unknown_field"))
    return muts
