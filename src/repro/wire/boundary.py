"""The dispatch-side validation boundary: decode, count, drop.

One place turns a raw inbound :class:`~repro.jxta.messages.Message`
into either a validated decoded view or a counted rejection.  Every
rejection lands under ``wire.reject.<msg_type>.<reason>`` (the whole
frame-too-large case, where no type can be parsed, under the flat
``wire.reject.oversize``) and never escapes dispatch as an exception.
"""

from __future__ import annotations

import re

from repro import obs, perf
from repro.jxta.messages import Message
from repro.wire import catalogue
from repro.wire.schema import (
    REASON_OVERSIZE,
    REASON_UNKNOWN_TYPE,
    DecodedFrame,
    WireRejected,
)

#: msg_type length ceiling inside metric names; matches ``obs._SEGMENT``.
_MAX_SEGMENT = 48
_BAD_CHARS = re.compile(r"[^A-Za-z0-9_\-]")


def sanitize_msg_type(msg_type: str) -> str:
    """Fold an attacker-controlled msg_type into one safe metric segment."""
    cleaned = _BAD_CHARS.sub("-", msg_type)[:_MAX_SEGMENT]
    return cleaned or "unknown"


#: Reject counters interned per (msg_type, reason) so a malformed-frame
#: storm skips the sanitize + format work after the first occurrence.
#: Bounded: both segments are drawn from the catalogue/taxonomy on the
#: defender side, and attacker-minted types collapse via sanitize.
_REJECT_COUNTERS: dict[tuple[str, str], obs.InternedCounter] = {}
_REJECT_CACHE_MAX = 4096

_M_OVERSIZE = obs.InternedCounter(f"wire.reject.{REASON_OVERSIZE}")


def count_reject(msg_type: str, reason: str) -> None:
    """Record one boundary rejection in the process metrics registry."""
    counter = _REJECT_COUNTERS.get((msg_type, reason))
    if counter is None:
        if len(_REJECT_COUNTERS) >= _REJECT_CACHE_MAX:
            _REJECT_COUNTERS.clear()
        counter = _REJECT_COUNTERS[(msg_type, reason)] = obs.InternedCounter(
            f"wire.reject.{sanitize_msg_type(msg_type)}.{reason}")
    counter.incr()


def count_oversize() -> None:
    """Record a frame refused by the global wire cap (type unparsed)."""
    _M_OVERSIZE.incr()


def decode(message: Message) -> DecodedFrame:
    """Validated, typed view of ``message`` (memoized on the instance).

    Raises :class:`WireRejected` — reason ``unknown_type`` when the
    msg_type is not in the catalogue, otherwise the precise field-level
    reason.  The decoded view is cached on the message and invalidated
    by any ``add_*`` mutation.
    """
    cached = message._decoded
    if isinstance(cached, DecodedFrame):
        return cached
    spec = catalogue.get(message.msg_type)
    if spec is None:
        raise WireRejected(message.msg_type, REASON_UNKNOWN_TYPE)
    if perf.FLAGS.compiled_decoders:
        view = spec.compiled()(message)
    else:
        view = spec.decode(message)
    message._decoded = view
    return view


def check(message: Message) -> bool:
    """Boundary predicate: decode or count-and-refuse, never raise."""
    try:
        decode(message)
    except WireRejected as exc:
        count_reject(exc.msg_type, exc.reason)
        return False
    return True
