"""The frame catalogue: one :class:`FrameSpec` per overlay message type.

This registry is the source of truth for the wire protocol.  The tables
in ``PROTOCOLS.md`` are generated from :func:`dump_catalogue`
(``python -m repro.wire --dump-catalogue``) and a drift test keeps them
in lock-step, so the docs can no longer rot.

Categories follow the protocol layers:

* ``plain`` — the §2 overlay primitives (connect/login, groups,
  discovery, presence, chat, file transfer, task execution);
* ``pipe`` — the pipe demux frame carrying an inner frame;
* ``federation`` — the sharded broker tier; every federation frame may
  carry the :data:`~repro.core.secure_federation.SEAL_ELEMS` quad
  (``fed_from``/``fed_scheme``/``fed_chain``/``fed_sig``), appended by
  :class:`~repro.core.secure_federation.SecureFederation` and ignored
  by the plain tier;
* ``secure`` — the §4/§6 security extension (challenge/response
  connect, envelope RPC, revocation and renewal).
"""

from __future__ import annotations

from repro.jxta.messages import Message
from repro.wire.schema import Field, FrameSpec

# Short aliases so the catalogue below stays table-like.
_F = Field


def _ident(name: str, required: bool = True, sample: str = "x") -> Field:
    """A short identifier-ish text field (names, ids, schemes...)."""
    return Field(name, "text", required=required, max_size=1024, sample=sample)


def _reason() -> Field:
    return Field("reason", "text", max_size=4096, sample="refused")


def _envelope() -> Field:
    """The signed+encrypted RPC payload; bounded by the global wire cap."""
    return Field("envelope", "json", json_type="dict", max_size=None,
                 sample={"v": 1})


def _seal_quad() -> tuple[Field, ...]:
    """Optional SecureFederation seal; absent on the plain tier."""
    return (
        Field("fed_from", "text", required=False, max_size=1024),
        Field("fed_scheme", "text", required=False, max_size=64),
        Field("fed_chain", "xml", required=False),
        Field("fed_sig", "bytes", required=False, max_size=4096),
    )


def _sample_chat_element():
    """A valid inner frame for ``pipe_data`` samples."""
    chat = Message("chat")
    chat.add_text("from_peer", "urn:jxta:peer-0")
    chat.add_text("from_user", "alice")
    chat.add_text("group", "students")
    chat.add_text("text", "hi")
    return chat.to_element()


_SPECS: tuple[FrameSpec, ...] = (
    # -- plain overlay: broker connection and login (§2.2) -----------------
    FrameSpec("connect_req", (), "plain", "open a broker session"),
    FrameSpec("connect_ok", (_ident("broker_id"), _ident("broker_name")),
              "plain", "broker accepts the connection"),
    FrameSpec("login_req",
              (_ident("username", sample="alice"),
               Field("password", "text", max_size=1024, sample="pw"),
               Field("peer_adv", "xml")),
              "plain", "authenticate and register the peer advertisement"),
    FrameSpec("login_ok",
              (Field("groups", "json", json_type="list"), _ident("peer_id")),
              "plain", "login accepted; lists the user's groups"),
    FrameSpec("login_fail", (_reason(),), "plain", "login refused"),
    FrameSpec("logout_req", (), "plain", "close the session"),
    FrameSpec("logout_ok", (), "plain", "session closed"),
    FrameSpec("logout_fail", (_reason(),), "plain", "logout refused"),
    # -- plain overlay: discovery and presence ------------------------------
    FrameSpec("publish_adv",
              (Field("adv", "xml"),
               _ident("fed_no_redirect", required=False, sample="1")),
              "plain", "publish an advertisement to the broker index"),
    FrameSpec("publish_ok", (), "plain", "advertisement accepted"),
    FrameSpec("publish_fail", (_reason(),), "plain", "advertisement refused"),
    FrameSpec("adv_push", (Field("adv", "xml"),),
              "plain", "broker pushes an advertisement to group members"),
    FrameSpec("query_req",
              (_ident("adv_type", required=False, sample="FileAdvertisement"),
               _ident("peer_id", required=False),
               _ident("group", required=False),
               _ident("fed_no_redirect", required=False, sample="1")),
              "plain", "advertisement lookup (all filters optional)"),
    FrameSpec("query_resp", (Field("results", "xml"),),
              "plain", "matching advertisement documents"),
    FrameSpec("peer_status_req",
              (_ident("peer_id"),
               _ident("fed_no_redirect", required=False, sample="1")),
              "plain", "is this peer online? (paper's isOnline primitive)"),
    FrameSpec("peer_status_resp",
              (_ident("peer_id"),
               _ident("online", sample="true"),
               _ident("username", required=False),
               _ident("last_seen", required=False, sample="0.0")),
              "plain", "presence answer"),
    FrameSpec("presence_beat", (Field("adv", "xml", required=False),),
              "plain", "periodic client heartbeat with its peer advertisement"),
    # -- plain overlay: link-layer capability negotiation --------------------
    FrameSpec("link_caps_req",
              (Field("codecs", "json", json_type="list", max_size=1024,
                     sample=["zlib"]),
               Field("level", "text", numeric=True, max_size=8, sample="6")),
              "plain", "offer batch-payload codecs and a max zlib level"),
    FrameSpec("link_caps_ok",
              (_ident("codec", sample="zlib"),
               Field("level", "text", numeric=True, max_size=8, sample="6")),
              "plain", "selected batch-payload codec and level for the link"),
    # -- plain overlay: group management -------------------------------------
    FrameSpec("create_group_req",
              (_ident("name", sample="students"),
               Field("description", "text", required=False, max_size=4096,
                     sample="")),
              "plain", "create a peer group"),
    FrameSpec("create_group_ok", (Field("group_adv", "xml"),),
              "plain", "group created; returns its advertisement"),
    FrameSpec("create_group_fail", (_reason(),), "plain", "creation refused"),
    FrameSpec("join_group_req", (_ident("name", sample="students"),),
              "plain", "join a peer group"),
    FrameSpec("join_group_ok", (Field("members", "json", json_type="list"),),
              "plain", "joined; returns the member list"),
    FrameSpec("join_group_fail", (_reason(),), "plain", "join refused"),
    FrameSpec("leave_group_req", (_ident("name", sample="students"),),
              "plain", "leave a peer group"),
    FrameSpec("leave_group_ok", (), "plain", "left the group"),
    FrameSpec("leave_group_fail", (_reason(),), "plain", "leave refused"),
    FrameSpec("list_groups_req", (), "plain", "list every group"),
    FrameSpec("list_groups_resp", (Field("groups", "json", json_type="list"),),
              "plain", "known group names"),
    FrameSpec("group_members_req", (_ident("name", sample="students"),),
              "plain", "list one group's members"),
    FrameSpec("group_members_resp",
              (Field("members", "json", json_type="list"),),
              "plain", "the group's member usernames"),
    FrameSpec("group_members_fail", (_reason(),), "plain", "lookup refused"),
    FrameSpec("peer_joined",
              (_ident("group"), _ident("peer_id"), _ident("username")),
              "plain", "broker notifies members of a join"),
    FrameSpec("peer_left", (_ident("group"), _ident("peer_id")),
              "plain", "broker notifies members of a leave"),
    # -- plain overlay: messaging, files, tasks -------------------------------
    FrameSpec("chat",
              (_ident("from_peer"), _ident("from_user", sample="alice"),
               _ident("group"),
               Field("text", "text", max_size=4 << 20, sample="hi")),
              "plain", "group/peer chat message (rides inside pipe_data)"),
    FrameSpec("file_req",
              (_ident("file_name", sample="notes.txt"),
               Field("offset", "text", numeric=True, max_size=32),
               Field("length", "text", numeric=True, max_size=32,
                     sample="1")),
              "plain", "request one chunk of a shared file"),
    FrameSpec("file_resp",
              (_ident("file_name", sample="notes.txt"),
               Field("offset", "text", numeric=True, max_size=32),
               Field("total", "text", numeric=True, max_size=32),
               Field("data", "bytes", max_size=1 << 20),
               _ident("eof", sample="true")),
              "plain", "one chunk of file content"),
    FrameSpec("file_fail", (_reason(),), "plain", "file request refused"),
    FrameSpec("task_req",
              (_ident("task", sample="echo"),
               Field("argument", "text", max_size=65536, sample="1"),
               _ident("from_peer")),
              "plain", "remote task execution request (execTask)"),
    FrameSpec("task_resp", (Field("result", "text", max_size=65536,
                                  sample="ok"),),
              "plain", "task completed"),
    FrameSpec("task_fail", (_reason(),), "plain", "task refused or raised"),
    # -- pipe demux -----------------------------------------------------------
    FrameSpec("pipe_data",
              (_ident("pipe_id"),
               Field("inner", "xml", sample=_sample_chat_element())),
              "pipe", "pipe frame; inner holds exactly one nested frame"),
    # -- broker federation (sharded index) ------------------------------------
    FrameSpec("index_sync",
              (Field("adv", "xml"),) + _seal_quad(),
              "federation", "legacy index replication datagram"),
    FrameSpec("fed_link_req",
              (Field("members", "json", json_type="list"),) + _seal_quad(),
              "federation", "join the broker federation with a roster"),
    FrameSpec("fed_link_ok",
              (Field("members", "json", json_type="list"),) + _seal_quad(),
              "federation", "link accepted; returns the merged roster"),
    FrameSpec("fed_members",
              (Field("members", "json", json_type="list"),) + _seal_quad(),
              "federation", "membership gossip"),
    FrameSpec("fed_unlink", _seal_quad(),
              "federation", "leave the federation"),
    FrameSpec("fed_digest",
              (Field("entries", "json", json_type="dict"),) + _seal_quad(),
              "federation", "anti-entropy digest of owned index entries"),
    FrameSpec("fed_digest_resp",
              (Field("need", "json", json_type="list"),) + _seal_quad(),
              "federation", "which digest entries the peer is missing"),
    FrameSpec("fed_delta",
              (Field("advs", "xml"),) + _seal_quad(),
              "federation", "batch of advertisement documents"),
    FrameSpec("fed_delta_ok",
              (Field("accepted", "text", numeric=True, max_size=32),)
              + _seal_quad(),
              "federation", "how many delta documents were accepted"),
    FrameSpec("fed_presence",
              (Field("ops", "json", json_type="list"),) + _seal_quad(),
              "federation", "presence directory ops for the owning shard"),
    FrameSpec("fed_query",
              (_ident("adv_type", required=False,
                      sample="FileAdvertisement"),
               _ident("group", required=False)) + _seal_quad(),
              "federation", "scatter-gather query from another broker"),
    FrameSpec("fed_query_resp",
              (Field("results", "xml"),) + _seal_quad(),
              "federation", "scatter-gather results"),
    FrameSpec("fed_redirect",
              (_ident("owner"),) + _seal_quad(),
              "federation", "ask the client to retry at the owning shard"),
    # -- federation: group-cast relay + epoch distribution --------------------
    FrameSpec("fed_group_cast",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32),
               Field("seq", "text", numeric=True, max_size=32),
               _ident("from_peer"),
               _ident("origin"),
               _envelope()) + _seal_quad(),
              "federation", "relay one epoch-sealed group frame ring-wide"),
    FrameSpec("fed_group_epoch",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32))
              + _seal_quad(),
              "federation", "epoch owner announces a rotation (no secret)"),
    FrameSpec("fed_group_epoch_req",
              (_ident("group", sample="students"),
               _ident("rotate", required=False, sample="1"))
              + _seal_quad(),
              "federation", "pull epoch secrets from the shard owner"),
    FrameSpec("fed_group_epoch_ok",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32),
               Field("secrets", "json", json_type="dict")) + _seal_quad(),
              "federation", "epoch secrets, each sealed to the asker"),
    FrameSpec("fed_group_epoch_fail", (_reason(),) + _seal_quad(),
              "federation", "epoch pull refused"),
    # -- secure extension: connection and login (§4.1, §4.2) ------------------
    FrameSpec("secure_connect_req",
              (Field("chall", "bytes", max_size=1024),),
              "secure", "client challenge for broker authentication"),
    FrameSpec("secure_connect_resp",
              (_ident("sid"),
               Field("chall_sig", "bytes", max_size=4096),
               _ident("scheme", sample="rsa-sha256"),
               Field("chain", "xml")),
              "secure", "signed challenge + broker credential chain"),
    FrameSpec("secure_connect_fail", (_reason(),),
              "secure", "secureConnection refused"),
    FrameSpec("secure_login_req", (_envelope(),),
              "secure", "encrypted credentials + public key"),
    FrameSpec("secure_login_ok",
              (Field("credential", "xml"),
               Field("groups", "json", json_type="list")),
              "secure", "issued credential + authorized groups"),
    FrameSpec("secure_login_fail", (_reason(),),
              "secure", "secureLogin refused"),
    # -- secure extension: envelope RPC (§4.3-§4.5) ---------------------------
    FrameSpec("secure_chat", (_envelope(),),
              "secure", "sealed chat payload (rides inside pipe_data)"),
    FrameSpec("resume_reset", (_ident("sid"),),
              "secure", "receiver lost the resumption session; re-key"),
    FrameSpec("secure_file_req", (_envelope(),),
              "secure", "sealed file chunk request"),
    FrameSpec("secure_file_resp", (_envelope(),),
              "secure", "sealed file chunk"),
    FrameSpec("secure_file_fail",
              (_reason(),
               _ident("code", required=False, sample="unknown_session")),
              "secure", "sealed file transfer refused"),
    FrameSpec("secure_task_req", (_envelope(),),
              "secure", "sealed task execution request"),
    FrameSpec("secure_task_resp", (_envelope(),),
              "secure", "sealed task result"),
    FrameSpec("secure_task_fail", (_reason(),),
              "secure", "sealed task refused"),
    FrameSpec("secure_group_op_req", (_envelope(),),
              "secure", "sealed group-management operation"),
    FrameSpec("secure_group_op_resp", (_envelope(),),
              "secure", "sealed group-operation result"),
    FrameSpec("secure_group_op_fail", (_reason(),),
              "secure", "sealed group operation refused"),
    # -- secure extension: broker-mediated group cast -------------------------
    FrameSpec("group_epoch_req", (_envelope(),),
              "secure", "sealed request for a group's epoch secrets"),
    FrameSpec("group_epoch_ok", (_envelope(),),
              "secure", "sealed epoch secrets (entitled epochs only)"),
    FrameSpec("group_epoch_fail", (_reason(),),
              "secure", "epoch fetch refused"),
    FrameSpec("group_sub",
              (_ident("group", sample="students"),
               Field("since", "text", numeric=True, required=False,
                     max_size=32)),
              "secure", "register group-cast delivery interest"),
    FrameSpec("group_sub_ok",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32),
               Field("replayed", "text", numeric=True, max_size=32)),
              "secure", "subscribed; backlog replay scheduled"),
    FrameSpec("group_sub_fail",
              (_reason(),
               _ident("code", required=False, sample="not_member")),
              "secure", "subscription refused"),
    FrameSpec("group_unsub", (_ident("group", sample="students"),),
              "secure", "withdraw group-cast delivery interest"),
    FrameSpec("group_unsub_ok", (_ident("group", sample="students"),),
              "secure", "unsubscribed"),
    FrameSpec("group_cast",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32),
               _envelope()),
              "secure", "one epoch-sealed frame for the whole group"),
    FrameSpec("group_cast_ok",
              (Field("seq", "text", numeric=True, max_size=32),
               Field("delivered", "text", numeric=True, max_size=32),
               Field("relayed", "text", numeric=True, max_size=32)),
              "secure", "cast accepted: local deliveries + relay count"),
    FrameSpec("group_cast_fail",
              (_reason(),
               _ident("code", required=False, sample="stale_epoch")),
              "secure", "cast refused (stale_epoch asks for a refresh)"),
    FrameSpec("group_deliver",
              (_ident("group", sample="students"),
               Field("epoch", "text", numeric=True, max_size=32),
               Field("seq", "text", numeric=True, max_size=32),
               _ident("from_peer"),
               _envelope()),
              "secure", "broker fans one sealed group frame to a subscriber"),
    # -- secure extension: revocation and renewal (§6) ------------------------
    FrameSpec("revocation_push", (Field("rl", "xml"),),
              "secure", "broker pushes the signed revocation list"),
    FrameSpec("revocation_req", (),
              "secure", "fetch the current revocation list"),
    FrameSpec("revocation_resp", (Field("rl", "xml"),),
              "secure", "the signed revocation list"),
    FrameSpec("renew_req", (_envelope(),),
              "secure", "credential renewal request"),
    FrameSpec("renew_ok", (Field("credential", "xml"),),
              "secure", "fresh credential issued"),
    FrameSpec("renew_fail", (_reason(),),
              "secure", "renewal refused"),
)

#: msg_type -> spec, in catalogue order (dicts preserve insertion order).
REGISTRY: dict[str, FrameSpec] = {spec.msg_type: spec for spec in _SPECS}

assert len(REGISTRY) == len(_SPECS), "duplicate msg_type in catalogue"

#: Display order + headings for the generated PROTOCOLS.md tables.
CATEGORIES: tuple[tuple[str, str], ...] = (
    ("plain", "Plain overlay frames"),
    ("pipe", "Pipe frames"),
    ("federation", "Federation frames"),
    ("secure", "Secure-extension frames"),
)


def get(msg_type: str) -> FrameSpec | None:
    return REGISTRY.get(msg_type)


def specs() -> tuple[FrameSpec, ...]:
    return _SPECS


def _field_cell(field: Field) -> str:
    kind = field.kind
    if field.numeric:
        kind = "int"
    out = f"`{field.name}`"
    if not field.required:
        out += "?"
    out += f" {kind}"
    if field.max_size is not None and field.max_size != 65536:
        out += f"&le;{field.max_size}"
    return out


def dump_catalogue() -> str:
    """The generated frame tables, exactly as embedded in PROTOCOLS.md."""
    lines = [
        "Generated by `python -m repro.wire --dump-catalogue` from",
        "`repro.wire.catalogue` — edit the registry, not this text.",
        "Field notation: `name`? marks optional fields; int is a numeric",
        "text element; &le;N bounds the serialized field size in bytes",
        "(unmarked text fields are bounded at 65536, xml fields and the",
        "secure envelope only by the global wire cap).  Federation frames",
        "may carry the optional SecureFederation seal quad `fed_from`,",
        "`fed_scheme`, `fed_chain`, `fed_sig` (shown once below).",
        "",
    ]
    seal_names = {f.name for f in _seal_quad()}
    for category, heading in CATEGORIES:
        lines.append(f"### {heading}")
        lines.append("")
        lines.append("| msg_type | fields | purpose |")
        lines.append("|---|---|---|")
        for spec in _SPECS:
            if spec.category != category:
                continue
            fields = [f for f in spec.fields
                      if not (category == "federation"
                              and f.name in seal_names)]
            cell = ", ".join(_field_cell(f) for f in fields) or "&mdash;"
            if category == "federation":
                cell += " (+seal)"
            lines.append(f"| `{spec.msg_type}` | {cell} | {spec.doc} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
