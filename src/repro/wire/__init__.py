"""``repro.wire`` — declarative frame schemas and the validation boundary.

The wire protocol as data: every overlay message type has a
:class:`~repro.wire.schema.FrameSpec` in :mod:`repro.wire.catalogue`,
and all boundary parsing goes through :func:`decode`, which returns a
validated :class:`~repro.wire.schema.DecodedFrame` or raises a single
classified :class:`~repro.wire.schema.WireRejected`.  The endpoint,
broker, federation and pipe layers call :func:`check` before any
handler runs, counting every refusal under
``wire.reject.<msg_type>.<reason>`` (see ``docs/OBSERVABILITY.md``).

``python -m repro.wire --dump-catalogue`` prints the generated frame
tables embedded in ``PROTOCOLS.md``; ``--check-docs`` verifies them.
"""

from __future__ import annotations

from repro.wire.boundary import (
    check,
    count_oversize,
    count_reject,
    decode,
    sanitize_msg_type,
)
from repro.wire.catalogue import CATEGORIES, REGISTRY, dump_catalogue, get, specs
from repro.wire.schema import (
    KINDS,
    REASONS,
    DecodedFrame,
    Field,
    FrameSpec,
    WireRejected,
)

__all__ = [
    "CATEGORIES",
    "DecodedFrame",
    "Field",
    "FrameSpec",
    "KINDS",
    "REASONS",
    "REGISTRY",
    "WireRejected",
    "check",
    "count_oversize",
    "count_reject",
    "decode",
    "dump_catalogue",
    "get",
    "sanitize_msg_type",
    "specs",
]
