"""Element names and algorithm identifiers for the XMLdsig subset.

The shapes follow W3C XML-Signature (ref [16] of the paper) structurally:
``Signature / SignedInfo / Reference / DigestValue / SignatureValue /
KeyInfo``, with an enveloped-signature transform.  Algorithm URIs are
short package-local identifiers instead of the W3C URLs — the verifier
rejects anything it does not recognize, which is the property that
matters.
"""

from __future__ import annotations

SIGNATURE_TAG = "Signature"
SIGNED_INFO_TAG = "SignedInfo"
C14N_METHOD_TAG = "CanonicalizationMethod"
SIGNATURE_METHOD_TAG = "SignatureMethod"
REFERENCE_TAG = "Reference"
TRANSFORMS_TAG = "Transforms"
TRANSFORM_TAG = "Transform"
DIGEST_METHOD_TAG = "DigestMethod"
DIGEST_VALUE_TAG = "DigestValue"
SIGNATURE_VALUE_TAG = "SignatureValue"
KEY_INFO_TAG = "KeyInfo"

ALG_ATTR = "Algorithm"
URI_ATTR = "URI"

#: The only canonicalization method implemented (repro.xmllib.c14n).
C14N_ALG = "repro:c14n"
#: Digest algorithm for references.
DIGEST_ALG = "repro:sha256"
#: Enveloped-signature transform: drop the Signature element itself.
ENVELOPED_TRANSFORM_ALG = "repro:enveloped-signature"
#: Signature methods map 1:1 to :mod:`repro.crypto.signing` scheme names.
SIG_ALG_PSS = "rsa-pss-sha256"
SIG_ALG_V15 = "rsa-pkcs1v15-sha256"

SUPPORTED_SIG_ALGS = (SIG_ALG_PSS, SIG_ALG_V15)
