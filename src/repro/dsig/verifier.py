"""Verifying enveloped XMLdsig signatures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import sigcache
from repro.crypto.rsa import PublicKey
from repro.crypto.sha2 import sha256
from repro.dsig import templates as t
from repro.dsig.transforms import find_signature, strip_signatures
from repro.errors import (
    DigestMismatchError,
    InvalidSignatureError,
    SignatureFormatError,
)
from repro.utils.bytesutil import constant_time_eq
from repro.utils.encoding import b64decode
from repro.xmllib.c14n import canonicalize
from repro.xmllib.element import Element


@dataclass(frozen=True)
class VerifiedSignature:
    """Result of structural + digest validation of an enveloped signature."""

    signed_info: Element
    signature_value: bytes
    sig_alg: str
    keyinfo: Element | None


def parse_signature(elem: Element) -> VerifiedSignature:
    """Structurally validate the <Signature> on ``elem`` and check digests.

    This performs every check that does *not* require a key: the SignedInfo
    structure, supported algorithm identifiers, and the Reference digest
    against the canonicalized (signature-stripped) document.  Raises
    :class:`SignatureFormatError` or :class:`DigestMismatchError`.
    """
    sig = find_signature(elem)
    signed_info = sig.find_required(t.SIGNED_INFO_TAG)

    c14n_alg = signed_info.find_required(t.C14N_METHOD_TAG).get(t.ALG_ATTR)
    if c14n_alg != t.C14N_ALG:
        raise SignatureFormatError(f"unsupported canonicalization {c14n_alg!r}")
    sig_alg = signed_info.find_required(t.SIGNATURE_METHOD_TAG).get(t.ALG_ATTR)
    if sig_alg not in t.SUPPORTED_SIG_ALGS:
        raise SignatureFormatError(f"unsupported signature algorithm {sig_alg!r}")

    ref = signed_info.find_required(t.REFERENCE_TAG)
    if ref.get(t.URI_ATTR) != "":
        raise SignatureFormatError("only whole-document references are supported")
    digest_alg = ref.find_required(t.DIGEST_METHOD_TAG).get(t.ALG_ATTR)
    if digest_alg != t.DIGEST_ALG:
        raise SignatureFormatError(f"unsupported digest algorithm {digest_alg!r}")
    transforms = ref.find(t.TRANSFORMS_TAG)
    if transforms is None or [tr.get(t.ALG_ATTR) for tr in transforms.findall(t.TRANSFORM_TAG)] != [t.ENVELOPED_TRANSFORM_ALG]:
        raise SignatureFormatError("reference must use exactly the enveloped transform")

    claimed_digest = b64decode(ref.find_required(t.DIGEST_VALUE_TAG).text)
    actual_digest = sha256(canonicalize(strip_signatures(elem)))
    if not constant_time_eq(claimed_digest, actual_digest):
        raise DigestMismatchError(
            f"digest mismatch on <{elem.tag}>: content altered after signing"
        )

    sig_value = b64decode(sig.find_required(t.SIGNATURE_VALUE_TAG).text)
    return VerifiedSignature(
        signed_info=signed_info,
        signature_value=sig_value,
        sig_alg=sig_alg,
        keyinfo=sig.find(t.KEY_INFO_TAG),
    )


def verify_element(elem: Element, pub: PublicKey) -> VerifiedSignature:
    """Full verification of the enveloped signature on ``elem``.

    Checks structure, the reference digest, and the SignatureValue under
    ``pub``.  Raises a :class:`repro.errors.XMLDsigError` subclass or
    :class:`InvalidSignatureError` on failure; returns the parsed
    signature (including KeyInfo) on success.
    """
    parsed = parse_signature(elem)
    try:
        # Routed through the shared LRU verification cache: identical
        # (key, SignedInfo, signature) tuples — credential chains, signed
        # advertisements — skip the RSA verify after the first success.
        sigcache.cached_verify(pub, canonicalize(parsed.signed_info),
                               parsed.signature_value, parsed.sig_alg)
    except InvalidSignatureError as exc:
        raise InvalidSignatureError(
            f"SignatureValue on <{elem.tag}> does not verify: {exc}"
        ) from exc
    return parsed
