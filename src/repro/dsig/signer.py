"""Producing enveloped XMLdsig signatures.

``sign_element`` appends a <Signature> child to the document **in place**,
which is precisely the property ref [15] of the paper needs: the signed
advertisement *keeps its original root element type*, unlike JXTA's
built-in signed advertisements that wrap the original in a Base64 blob.
"""

from __future__ import annotations

from repro.crypto import signing
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey
from repro.crypto.sha2 import sha256
from repro.dsig import templates as t
from repro.dsig.transforms import strip_signatures
from repro.errors import SignatureFormatError
from repro.utils.encoding import b64encode
from repro.xmllib.c14n import canonicalize
from repro.xmllib.element import Element


def build_signed_info(digest_b64: str, sig_alg: str) -> Element:
    """Assemble the <SignedInfo> element for an enveloped signature."""
    si = Element(t.SIGNED_INFO_TAG)
    si.add(t.C14N_METHOD_TAG, attrib={t.ALG_ATTR: t.C14N_ALG})
    si.add(t.SIGNATURE_METHOD_TAG, attrib={t.ALG_ATTR: sig_alg})
    ref = si.add(t.REFERENCE_TAG, attrib={t.URI_ATTR: ""})
    transforms = ref.add(t.TRANSFORMS_TAG)
    transforms.add(t.TRANSFORM_TAG, attrib={t.ALG_ATTR: t.ENVELOPED_TRANSFORM_ALG})
    ref.add(t.DIGEST_METHOD_TAG, attrib={t.ALG_ATTR: t.DIGEST_ALG})
    ref.add(t.DIGEST_VALUE_TAG, text=digest_b64)
    return si


def sign_element(elem: Element, priv: PrivateKey, keyinfo: Element | None = None,
                 sig_alg: str = t.SIG_ALG_PSS, drbg: HmacDrbg | None = None) -> Element:
    """Sign ``elem`` in place with an enveloped signature; returns ``elem``.

    ``keyinfo`` (typically a credential wrapper) is embedded verbatim.  Any
    pre-existing signature is replaced.
    """
    if sig_alg not in t.SUPPORTED_SIG_ALGS:
        raise SignatureFormatError(f"unsupported signature algorithm {sig_alg!r}")
    # Replace any existing signature rather than stacking.
    elem.children = [c for c in elem.children if c.tag != t.SIGNATURE_TAG]

    digest = sha256(canonicalize(strip_signatures(elem)))
    signed_info = build_signed_info(b64encode(digest), sig_alg)
    sig_value = signing.sign(priv, canonicalize(signed_info), scheme=sig_alg, drbg=drbg)

    sig = Element(t.SIGNATURE_TAG)
    sig.append(signed_info)
    sig.add(t.SIGNATURE_VALUE_TAG, text=b64encode(sig_value))
    if keyinfo is not None:
        if keyinfo.tag != t.KEY_INFO_TAG:
            raise SignatureFormatError("keyinfo element must be <KeyInfo>")
        sig.append(keyinfo)
    elem.append(sig)
    return elem
