"""KeyInfo helpers: embedding public keys / credentials in a signature.

The paper's scheme carries the signer's *credential* (an issuer-signed
document that contains the public key) inside KeyInfo, so a verifier can
both obtain the key and check who vouches for it.  At this layer we only
provide the raw-key form; credentials are built on top by
:mod:`repro.core.credentials`.
"""

from __future__ import annotations

from repro.crypto.keys import public_key_from_text, public_key_to_text
from repro.crypto.rsa import PublicKey
from repro.dsig.templates import KEY_INFO_TAG
from repro.errors import SignatureFormatError
from repro.xmllib.element import Element

KEY_VALUE_TAG = "KeyValue"


def keyinfo_from_public_key(pub: PublicKey) -> Element:
    """Build a <KeyInfo><KeyValue>...</KeyValue></KeyInfo> element."""
    ki = Element(KEY_INFO_TAG)
    ki.add(KEY_VALUE_TAG, text=public_key_to_text(pub))
    return ki


def public_key_from_keyinfo(keyinfo: Element) -> PublicKey:
    """Extract a raw public key from a <KeyInfo> element."""
    if keyinfo.tag != KEY_INFO_TAG:
        raise SignatureFormatError(f"expected <KeyInfo>, got <{keyinfo.tag}>")
    kv = keyinfo.find(KEY_VALUE_TAG)
    if kv is None or not kv.text:
        raise SignatureFormatError("KeyInfo carries no KeyValue")
    return public_key_from_text(kv.text)
