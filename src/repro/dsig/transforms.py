"""Reference transforms: currently only the enveloped-signature transform."""

from __future__ import annotations

from repro.dsig.templates import SIGNATURE_TAG
from repro.errors import SignatureFormatError
from repro.xmllib.element import Element


def strip_signatures(elem: Element) -> Element:
    """Return a deep copy of ``elem`` with direct <Signature> children removed.

    This is the enveloped-signature transform: the digest of a signed
    document must be computed over the document *as it was before signing*,
    i.e. without the signature that will be (or has been) embedded in it.
    Only direct children are considered — a nested Signature belongs to an
    embedded sub-document (e.g. a credential inside KeyInfo) and is part of
    the signed content.
    """
    copy = elem.deep_copy()
    copy.children = [c for c in copy.children if c.tag != SIGNATURE_TAG]
    return copy


def find_signature(elem: Element) -> Element:
    """Locate exactly one direct <Signature> child of a signed document."""
    sigs = elem.findall(SIGNATURE_TAG)
    if not sigs:
        raise SignatureFormatError(f"<{elem.tag}> carries no <Signature>")
    if len(sigs) > 1:
        raise SignatureFormatError(f"<{elem.tag}> carries {len(sigs)} signatures; expected 1")
    return sigs[0]
