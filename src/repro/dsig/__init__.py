"""XMLdsig (W3C XML-Signature, ref [16]) — enveloped signatures.

Used by the paper's scheme (via ref [15]) to sign JXTA advertisements
while *preserving their original element type*, and to carry the signer's
credential in <KeyInfo> as the transparent key-distribution mechanism.
"""

from repro.dsig.keyinfo import keyinfo_from_public_key, public_key_from_keyinfo
from repro.dsig.signer import sign_element
from repro.dsig.verifier import VerifiedSignature, parse_signature, verify_element

__all__ = [
    "sign_element",
    "verify_element",
    "parse_signature",
    "VerifiedSignature",
    "keyinfo_from_public_key",
    "public_key_from_keyinfo",
]
