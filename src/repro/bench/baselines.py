"""Driving the TLS/CBJX baselines over the simulated network (ablation A4).

The TLS handshake is pushed through real network frames so its round
trips are charged to the virtual clock, exactly like the secure
primitives' exchanges.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import KeyPair
from repro.errors import TransportError
from repro.jxta.transport.cbjx import CbjxTransport
from repro.jxta.transport.tls import TlsClient, TlsServer
from repro.sim.network import Frame, SimNetwork

# 1-byte frame tags for the raw handshake/record protocol.
_T_HELLO = b"\x01"
_T_KEYEX = b"\x02"
_T_RECORD = b"\x03"


class TlsEchoServer:
    """A raw endpoint that performs the TLS handshake and echoes records."""

    def __init__(self, network: SimNetwork, address: str, keys: KeyPair,
                 drbg: HmacDrbg) -> None:
        self.network = network
        self.address = address
        self.keys = keys
        self._drbg = drbg
        self._sessions: dict[str, TlsServer] = {}
        network.register(address, self._on_frame)

    def _on_frame(self, frame: Frame) -> bytes | None:
        tag, body = frame.payload[:1], frame.payload[1:]
        if tag == _T_HELLO:
            server = TlsServer(self.keys, self._drbg.fork(frame.src.encode()))
            self._sessions[frame.src] = server
            return _T_HELLO + server.hello(body)
        if tag == _T_KEYEX:
            server = self._sessions.get(frame.src)
            if server is None:
                return None
            return _T_KEYEX + server.finish(body)
        if tag == _T_RECORD:
            server = self._sessions.get(frame.src)
            if server is None or server.record is None:
                return None
            plain = server.record.unprotect(body)
            return _T_RECORD + server.record.protect(plain)
        return None


class TlsClientDriver:
    """Client side: handshake over the network, then echo round trips."""

    def __init__(self, network: SimNetwork, address: str, server_address: str,
                 drbg: HmacDrbg) -> None:
        self.network = network
        self.address = address
        self.server_address = server_address
        self.client = TlsClient(drbg)
        network.register(address, lambda frame: None)

    def handshake(self) -> None:
        """The 2-RTT TLS negotiation the paper contrasts with (§4.3)."""
        hello_resp = self.network.request(
            self.address, self.server_address, _T_HELLO + self.client.hello())
        if hello_resp[:1] != _T_HELLO:
            raise TransportError("unexpected TLS handshake response")
        keyex = self.client.key_exchange(hello_resp[1:])
        finish_resp = self.network.request(
            self.address, self.server_address, _T_KEYEX + keyex)
        if finish_resp[:1] != _T_KEYEX:
            raise TransportError("unexpected TLS handshake response")
        self.client.verify_finish(finish_resp[1:])

    def echo(self, payload: bytes) -> bytes:
        """One protected round trip over the established channel."""
        if self.client.record is None:
            raise TransportError("TLS channel not established")
        record = self.client.record.protect(payload)
        resp = self.network.request(self.address, self.server_address,
                                    _T_RECORD + record)
        if resp[:1] != _T_RECORD:
            raise TransportError("unexpected TLS record response")
        return self.client.record.unprotect(resp[1:])


class CbjxEchoPair:
    """Two endpoints exchanging CBJX-encapsulated datagrams."""

    def __init__(self, network: SimNetwork, addr_a: str, addr_b: str,
                 keys_a: KeyPair, keys_b: KeyPair,
                 drbg: HmacDrbg) -> None:
        self.network = network
        self.addr_a = addr_a
        self.addr_b = addr_b
        self.transport_a = CbjxTransport(keys_a, drbg.fork(b"a"))
        self.transport_b = CbjxTransport(keys_b, drbg.fork(b"b"))
        self.received_b: list[bytes] = []
        network.register(addr_a, lambda frame: None)
        network.register(addr_b, self._on_b)

    def _on_b(self, frame: Frame) -> bytes | None:
        self.received_b.append(
            self.transport_b.unwrap(frame.payload, peer=frame.src, local=self.addr_b))
        return None

    def send_a_to_b(self, payload: bytes) -> bool:
        wire = self.transport_a.wrap(payload, peer=self.addr_b, local=self.addr_a)
        return self.network.send(self.addr_a, self.addr_b, wire)
