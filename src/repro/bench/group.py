"""E-GROUP: broker-mediated group cast vs the iterated §4.3 fan-out.

The paper's ``secureMsgPeerGroup`` pays per-member sender cost: resolve
+ sign + seal + push once for every recipient.  The group-cast path
(``policy.enable_group_cast``) inverts the shape — the sender seals the
payload **once** under the group's epoch key and hands its home broker
one ``group_cast`` frame; the broker fans out locally and relays the
ciphertext ring-wide as ``fed_group_cast``.  This experiment prices the
inversion:

* **group-size sweep** — members 10..100k on a fixed 2-broker ring.
  Per-sender cost (RSA ops, epoch seals, frames, bytes on the client
  uplink) must stay **flat** while delivered count tracks the group
  size; mean virtual delivery latency shows the broker-side fan-out
  cost.
* **broker sweep** — a fixed-size group sharded across 1/2/4/8 brokers.
  Relay amplification must be exactly ``brokers - 1`` sealed datagrams
  per cast (the federation ring is fully meshed and the relay is sealed
  once, not per peer).
* **legacy comparison** — the iterated baseline at small N, showing the
  per-sender frame count growing linearly where group cast stays at one.

Group members beyond the two real clients (the sender and one real
receiver riding the full client path) are synthetic *sink subscribers*:
registered sim endpoints with broker-side session + interest records.
They exercise the exact broker fan-out and wire path while keeping a
100k-member world affordable — what is measured (seals, frames, bytes,
virtual time) is identical to real clients; only the sinks' client-side
decryption is skipped.

``python -m repro.bench --experiment group`` prints the report and
writes ``BENCH_GROUP.json`` (under ``benchmarks/out/``), exiting nonzero
if an acceptance check fails.  ``python -m repro.bench.group --gate
FRESH [BASELINE]`` compares the deterministic quantities (frames and
bytes per cast, deliveries, relay amplification) against the committed
``benchmarks/baselines/BENCH_GROUP.json`` with a 20% tolerance.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.bench import fixtures
from repro.bench.msgfast import _restore_registry, _swap_registry
from repro.bench.paths import bench_out_path
from repro.bench.timing import timed_call
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope, signing
from repro.overlay.broker import ConnectedPeer

#: group sizes of the member sweep (total members incl. the two real clients)
GROUP_SIZES = (10, 100, 1_000, 10_000, 100_000)
GROUP_SIZES_QUICK = (10, 100, 1_000)

#: ring widths of the broker sweep
BROKER_COUNTS = (1, 2, 4, 8)
BROKER_COUNTS_QUICK = (1, 2, 4)

#: member sweep runs on this many brokers; broker sweep at this size
SWEEP_BROKERS = 2
SWEEP_SIZE = 1_000
SWEEP_SIZE_QUICK = 100

#: legacy (iterated secure_msg_peer) comparison sizes — real clients
LEGACY_SIZES = (2, 4, 8)

#: casts measured per cell
MESSAGES = 3

#: the O(1) acceptance pair: sender cost at 10 must equal cost at 10k
CHECK_SPAN = (10, 10_000)

BASELINE_PATH = "benchmarks/baselines/BENCH_GROUP.json"
TOLERANCE = 0.20

GROUP = "bench-cast"


def bench_policy(cast: bool = True) -> SecurityPolicy:
    """Small keys + v1.5: the compared quantities are counts, not moduli."""
    return SecurityPolicy(
        rsa_bits=512,
        envelope_wrap=envelope.WRAP_V15,
        signature_scheme=signing.SCHEME_V15,
        enable_group_cast=cast,
    ).validate()


@dataclass
class CastCell:
    """One (group size, broker count) cell of the cast sweeps."""

    group_size: int
    brokers: int
    messages: int
    #: per-cast sender cost — the O(1) claims
    sender_frames_per_cast: float
    sender_bytes_per_cast: float
    epoch_seals_per_cast: float
    rsa_ops_per_cast: float
    #: per-cast fan-out effect
    delivered_per_cast: float
    relayed_per_cast: float
    mean_ms_per_cast: float


@dataclass
class LegacyCell:
    """One iterated-baseline cell (real clients, small N)."""

    group_size: int
    messages: int
    sender_frames_per_cast: float
    rsa_ops_per_cast: float
    delivered_per_cast: float
    mean_ms_per_cast: float


_RSA = ("crypto.rsa.private_op", "crypto.rsa.public_op")


class _UplinkTap:
    """Counts frames and bytes leaving one address (the sender's uplink)."""

    def __init__(self, address: str) -> None:
        self.address = address
        self.frames = 0
        self.bytes = 0

    def observe(self, frame) -> None:
        if frame.src == self.address:
            self.frames += 1
            self.bytes += frame.size


def _populate_sinks(net, brokers, n_sinks: int) -> None:
    """Attach synthetic members: endpoint + session + shard interest.

    Round-robin across brokers, installed *below* the membership hooks so
    a 100k world costs 100k dict inserts, not 100k epoch rotations.  The
    sinks' entitlement floor is epoch 1, so the already-established ring
    covers them; only the broker-side fan-out (the measured path) runs.
    """
    handler = lambda frame: None  # noqa: E731 - shared no-op sink endpoint
    for i in range(n_sinks):
        broker = brokers[i % len(brokers)]
        pid = f"urn:jxta:cbid-sink{i:08x}"
        address = f"sink:{i}"
        net.register(address, handler)
        broker.connected[pid] = ConnectedPeer(
            peer_id=pid, username="sink", address=address,
            last_seen=broker.clock.now)
        broker._ensure_group(GROUP).add_member(pid)
        shard = broker.groupcast._shard(GROUP)
        shard.subscribers[pid] = address
        shard.entitled.setdefault(pid, 1)


def _measure_cast(net, registry, sender, messages: int) -> dict:
    before_rsa = {n: registry.count(n) for n in _RSA}
    before_seal = registry.count("crypto.groupkey.seal")
    before_delivered = registry.count("groupcast.delivered")
    before_relayed = registry.count("groupcast.relayed")
    tap = _UplinkTap(sender.address)
    net.add_tap(tap)
    total_s = 0.0
    try:
        for i in range(messages):
            timing = timed_call(
                net, lambda: sender.secure_msg_peer_group(GROUP, f"cast {i}"))
            total_s += timing.total_s
    finally:
        net.remove_tap(tap)
    rsa = sum(registry.count(n) - before_rsa[n] for n in _RSA)
    return {
        "messages": messages,
        "sender_frames_per_cast": tap.frames / messages,
        "sender_bytes_per_cast": tap.bytes / messages,
        "epoch_seals_per_cast":
            (registry.count("crypto.groupkey.seal") - before_seal) / messages,
        "rsa_ops_per_cast": rsa / messages,
        "delivered_per_cast":
            (registry.count("groupcast.delivered") - before_delivered) / messages,
        "relayed_per_cast":
            (registry.count("groupcast.relayed") - before_relayed) / messages,
        "mean_ms_per_cast": total_s / messages * 1e3,
    }


def _cast_cell(size: int, n_brokers: int, messages: int = MESSAGES) -> CastCell:
    registry, saved = _swap_registry()
    try:
        net, _admin, brokers, clients = fixtures.build_federated_secure_world(
            n_brokers, n_clients=2, policy=bench_policy(),
            seed=b"e-group|%d|%d" % (size, n_brokers))
        sender, receiver = clients
        sender.secure_create_group(GROUP)
        receiver.secure_join_group(GROUP)
        _populate_sinks(net, brokers, max(0, size - 2))
        # Warm-up: the first cast absorbs the one-time stale-epoch retry
        # after the join rotation; what follows is steady state.
        sender.secure_msg_peer_group(GROUP, "establish")
        stats = _measure_cast(net, registry, sender, messages)
    finally:
        _restore_registry(saved)
    return CastCell(group_size=size, brokers=n_brokers, **stats)


def _legacy_cell(size: int, messages: int = MESSAGES) -> LegacyCell:
    """Iterated §4.3 baseline: size real members on one broker."""
    registry, saved = _swap_registry()
    try:
        net, _admin, _broker, clients = fixtures.build_secure_world(
            n_clients=size, policy=bench_policy(cast=False),
            seed=b"e-group-legacy", joined=True)
        sender = clients[0]
        # warm the per-peer sessions so steady-state cost is measured
        sender.secure_msg_peer_group("bench", "establish")
        before_rsa = {n: registry.count(n) for n in _RSA}
        tap = _UplinkTap(sender.address)
        net.add_tap(tap)
        total_s, delivered = 0.0, 0
        try:
            for i in range(messages):
                result = {}

                def one():
                    result["n"] = sender.secure_msg_peer_group(
                        "bench", f"msg {i}")

                total_s += timed_call(net, one).total_s
                delivered += int(result["n"])
        finally:
            net.remove_tap(tap)
        rsa = sum(registry.count(n) - before_rsa[n] for n in _RSA)
    finally:
        _restore_registry(saved)
    return LegacyCell(
        group_size=size, messages=messages,
        sender_frames_per_cast=tap.frames / messages,
        rsa_ops_per_cast=rsa / messages,
        delivered_per_cast=delivered / messages,
        mean_ms_per_cast=total_s / messages * 1e3)


def _checks(size_cells: list[CastCell], broker_cells: list[CastCell],
            legacy_cells: list[LegacyCell]) -> dict:
    by_size = {c.group_size: c for c in size_cells}
    lo_n, hi_n = CHECK_SPAN
    lo = by_size.get(lo_n) or size_cells[0]
    hi = by_size.get(hi_n) or size_cells[-1]
    span = hi.group_size / lo.group_size
    checks = {
        "o1_span": f"{lo.group_size}->{hi.group_size} members ({span:.0f}x)",
        # O(1): the sender pays the same frames/seals/RSA at both ends.
        "o1_sender_frames_flat":
            hi.sender_frames_per_cast == lo.sender_frames_per_cast,
        "o1_epoch_seals_flat":
            hi.epoch_seals_per_cast == lo.epoch_seals_per_cast == 1.0,
        "o1_rsa_flat": hi.rsa_ops_per_cast == lo.rsa_ops_per_cast,
        # one uplink datagram per logical message
        "single_uplink_frame": all(
            c.sender_frames_per_cast == 1.0 for c in size_cells),
        # every member except the sender gets the frame, every cast
        "all_delivered": all(
            c.delivered_per_cast == c.group_size - 1
            for c in size_cells + broker_cells),
        # relay amplification is exactly ring width - 1
        "relay_is_ring_minus_one": all(
            c.relayed_per_cast == c.brokers - 1 for c in broker_cells),
    }
    if legacy_cells:
        lo_l, hi_l = legacy_cells[0], legacy_cells[-1]
        checks["legacy_grows_with_members"] = (
            hi_l.sender_frames_per_cast > lo_l.sender_frames_per_cast)
        checks["cast_beats_legacy_frames"] = (
            by_size[min(by_size)].sender_frames_per_cast
            < hi_l.sender_frames_per_cast)
    checks["all_passed"] = all(
        v for v in checks.values() if isinstance(v, bool))
    return checks


def group_report(quick: bool = False) -> dict:
    """The complete E-GROUP document."""
    sizes = GROUP_SIZES_QUICK if quick else GROUP_SIZES
    broker_counts = BROKER_COUNTS_QUICK if quick else BROKER_COUNTS
    sweep_size = SWEEP_SIZE_QUICK if quick else SWEEP_SIZE
    size_cells = [_cast_cell(size, SWEEP_BROKERS) for size in sizes]
    broker_cells = [_cast_cell(sweep_size, b) for b in broker_counts]
    legacy_cells = [_legacy_cell(size) for size in LEGACY_SIZES]
    checks = _checks(size_cells, broker_cells, legacy_cells)
    return {
        "experiment": "E-GROUP",
        "quick": quick,
        "rsa_bits": bench_policy().rsa_bits,
        "messages_per_cell": MESSAGES,
        "size_sweep": [asdict(c) for c in size_cells],
        "broker_sweep": [asdict(c) for c in broker_cells],
        "legacy_sweep": [asdict(c) for c in legacy_cells],
        "checks": checks,
    }


def format_group(data: dict) -> str:
    lines = [
        f"E-GROUP: broker-mediated group cast "
        f"({data['messages_per_cell']} casts/cell, rsa-{data['rsa_bits']})",
        "",
        f"  size sweep ({SWEEP_BROKERS} brokers):",
        f"  {'members':>8}  {'frames':>7}  {'B/cast':>8}  {'seals':>6}  "
        f"{'RSA':>5}  {'delivered':>10}  {'ms/cast':>9}",
    ]
    for c in data["size_sweep"]:
        lines.append(
            f"  {c['group_size']:>8}  {c['sender_frames_per_cast']:>7.1f}  "
            f"{c['sender_bytes_per_cast']:>8.0f}  "
            f"{c['epoch_seals_per_cast']:>6.1f}  {c['rsa_ops_per_cast']:>5.1f}  "
            f"{c['delivered_per_cast']:>10.1f}  {c['mean_ms_per_cast']:>9.2f}")
    lines += [
        "",
        "  broker sweep:",
        f"  {'brokers':>8}  {'members':>8}  {'relayed':>8}  {'delivered':>10}  "
        f"{'ms/cast':>9}",
    ]
    for c in data["broker_sweep"]:
        lines.append(
            f"  {c['brokers']:>8}  {c['group_size']:>8}  "
            f"{c['relayed_per_cast']:>8.1f}  {c['delivered_per_cast']:>10.1f}  "
            f"{c['mean_ms_per_cast']:>9.2f}")
    lines += [
        "",
        "  legacy (iterated §4.3) baseline:",
        f"  {'members':>8}  {'frames':>7}  {'RSA':>5}  {'ms/msg':>9}",
    ]
    for c in data["legacy_sweep"]:
        lines.append(
            f"  {c['group_size']:>8}  {c['sender_frames_per_cast']:>7.1f}  "
            f"{c['rsa_ops_per_cast']:>5.1f}  {c['mean_ms_per_cast']:>9.2f}")
    lines += ["", "E-GROUP acceptance checks:"]
    checks = data["checks"]
    for key, value in sorted(checks.items()):
        if key != "all_passed":
            lines.append(f"  {key:<30} : {value}")
    lines.append(f"  {'all_passed':<30} : {checks['all_passed']}")
    return "\n".join(lines)


def write_bench_group(data: dict, path: str | Path | None = None) -> Path:
    """Persist the E-GROUP document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_GROUP.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# -- CI regression gate ----------------------------------------------------


def check_group_regression(fresh: dict, baseline: dict,
                           tolerance: float = TOLERANCE) -> list[str]:
    """Problems (empty = pass) comparing fresh numbers to the baseline.

    Only deterministic count quantities are gated — frames, bytes,
    deliveries, relay amplification; virtual latency stays informational
    (it includes a measured-CPU term).
    """
    problems: list[str] = []
    for sweep in ("size_sweep", "broker_sweep"):
        fresh_cells = {(c["group_size"], c["brokers"]): c
                       for c in fresh.get(sweep, ())}
        base_cells = {(c["group_size"], c["brokers"]): c
                      for c in baseline.get(sweep, ())}
        if not base_cells:
            problems.append(f"baseline document has no {sweep} section")
            continue
        for key, base in sorted(base_cells.items()):
            cell = fresh_cells.get(key)
            label = f"{sweep}[{key[0]} members/{key[1]} brokers]"
            if cell is None:
                problems.append(f"{label}: missing from fresh run")
                continue
            for quantity in ("sender_frames_per_cast", "sender_bytes_per_cast",
                             "rsa_ops_per_cast"):
                ceiling = base[quantity] * (1.0 + tolerance)
                if cell[quantity] > ceiling:
                    problems.append(
                        f"{label}: {quantity} regressed "
                        f"{cell[quantity]:.1f} > {ceiling:.1f} "
                        f"(baseline {base[quantity]:.1f})")
            for quantity in ("delivered_per_cast", "relayed_per_cast"):
                if cell[quantity] != base[quantity]:
                    problems.append(
                        f"{label}: {quantity} changed "
                        f"{cell[quantity]:.1f} != {base[quantity]:.1f}")
    if not fresh["checks"]["all_passed"]:
        failed = [k for k, v in fresh["checks"].items()
                  if isinstance(v, bool) and not v]
        problems.append(f"fresh run failed its own checks: {failed}")
    return problems


def gate(fresh_path: str, baseline_path: str = BASELINE_PATH,
         tolerance: float = TOLERANCE) -> int:
    try:
        fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"group gate: cannot load inputs: {exc}")
        return 2
    problems = check_group_regression(fresh, baseline, tolerance)
    for problem in problems:
        print(f"group gate: FAIL: {problem}")
    if not problems:
        print("group gate: pass")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.group",
        description="E-GROUP broker-mediated fan-out regression gate")
    parser.add_argument("--gate", nargs="+", metavar="JSON", required=True,
                        help="compare FRESH [BASELINE] group documents; "
                             f"baseline defaults to {BASELINE_PATH}")
    args = parser.parse_args(argv)
    baseline = args.gate[1] if len(args.gate) > 1 else BASELINE_PATH
    return gate(args.gate[0], baseline)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
