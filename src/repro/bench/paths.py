"""Where benchmark documents land.

Fresh ``BENCH_*.json`` runs are build artifacts, not source: they go to
``benchmarks/out/`` (gitignored), while the committed regression
baselines stay under ``benchmarks/baselines/``.  Every ``write_bench_*``
helper routes through :func:`bench_out_path` so callers that pass no
explicit path never litter the repository root.
"""

from __future__ import annotations

from pathlib import Path

#: fresh benchmark documents (gitignored build artifacts)
OUT_DIR = Path("benchmarks") / "out"

#: committed regression baselines (the gate's reference side)
BASELINE_DIR = Path("benchmarks") / "baselines"


def bench_out_path(name: str) -> Path:
    """``benchmarks/out/<name>``, creating the directory on first use."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR / name
