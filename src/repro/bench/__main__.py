"""``python -m repro.bench``: run every experiment and print the report.

``--experiment NAME`` runs one named experiment (see
:data:`EXPERIMENTS`) and writes its ``BENCH_<NAME>.json``, exiting
nonzero if the experiment's acceptance checks fail; ``--quick`` shrinks
every experiment for CI smoke runs.

* ``fault`` — E-FAULT: fault-injection sweep + broker-crash recovery,
  ``BENCH_FAULT.json``.
* ``msgfast`` — E-MSGFAST: secure-messaging fast-path sweeps,
  ``BENCH_MSGFAST.json``.
* ``fed`` — E-FED: sharded-federation sweep, ``BENCH_FED.json``.
* ``group`` — E-GROUP: broker-mediated group cast vs the iterated
  fan-out (O(1) sender cost, relay amplification), ``BENCH_GROUP.json``.
* ``hotpath`` — E-HOTPATH: per-stage hot-path profile, the legacy-vs-
  optimized steady-state A/B and the layer-cost ladder,
  ``BENCH_HOTPATH.json``.
* ``scale`` — E-SCALE: the scenario-engine population experiment
  (churn storm + Sybil flood + eclipse + frame storm over an 8-broker
  ring), ``BENCH_SCALE.json``.
"""

from __future__ import annotations

import sys

from repro.bench import (
    baseline_comparison,
    fault_report,
    fed_report,
    format_fed,
    format_group,
    format_baselines,
    format_fault_report,
    format_group_scaling,
    format_hotpath,
    format_join_overhead,
    format_msg_overhead,
    format_msgfast,
    format_obs,
    format_policy_ablation,
    format_scale,
    group_report,
    group_scaling,
    hotpath_report,
    join_overhead,
    msg_overhead_curve,
    msgfast_report,
    obs_bench,
    policy_ablation,
    scale_report,
    write_bench_fault,
    write_bench_fed,
    write_bench_group,
    write_bench_hotpath,
    write_bench_msgfast,
    write_bench_obs,
    write_bench_scale,
)


def run_fault(quick: bool) -> int:
    data = fault_report(messages=30 if quick else 100)
    print(format_fault_report(data))
    out = write_bench_fault(data)
    print(f"  wrote {out}")
    return 0


def run_fed(quick: bool) -> int:
    data = fed_report(quick=quick)
    print(format_fed(data))
    out = write_bench_fed(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def run_msgfast(quick: bool) -> int:
    data = msgfast_report(quick=quick)
    print(format_msgfast(data))
    out = write_bench_msgfast(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def run_group(quick: bool) -> int:
    data = group_report(quick=quick)
    print(format_group(data))
    out = write_bench_group(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def run_scale(quick: bool) -> int:
    data = scale_report(quick=quick)
    print(format_scale(data))
    out = write_bench_scale(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def run_hotpath(quick: bool) -> int:
    data = hotpath_report(quick=quick)
    print(format_hotpath(data))
    out = write_bench_hotpath(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


#: ``--experiment`` name -> runner.  The README quickstart lists these
#: names; ``tests/bench/test_experiment_registry.py`` keeps the two in
#: sync (same drift-gate idea as the PROTOCOLS.md frame catalogue).
EXPERIMENTS = {
    "fault": run_fault,
    "fed": run_fed,
    "group": run_group,
    "hotpath": run_hotpath,
    "msgfast": run_msgfast,
    "scale": run_scale,
}


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    if "--experiment" in argv:
        at = argv.index("--experiment") + 1
        if at >= len(argv):
            known = ", ".join(sorted(EXPERIMENTS))
            print(f"--experiment needs a name; known: {known}",
                  file=sys.stderr)
            return 2
        which = argv[at]
        runner = EXPERIMENTS.get(which)
        if runner is None:
            known = ", ".join(sorted(EXPERIMENTS))
            print(f"unknown experiment {which!r}; known: {known}",
                  file=sys.stderr)
            return 2
        return runner(quick)
    print(format_join_overhead(join_overhead(repeats=2 if quick else 3)))
    print()
    sizes = (100, 1_000, 10_000, 100_000) if quick else (100, 1_000, 10_000, 100_000, 1_000_000)
    curve = msg_overhead_curve(sizes=sizes, repeats=2 if quick else 3)
    print(format_msg_overhead(curve))
    print()
    from repro.bench.figures import render_figure2

    print(render_figure2(curve))
    print()
    print(format_group_scaling(group_scaling(group_sizes=(2, 4, 8) if quick else (2, 4, 8, 16))))
    print()
    counts = (1, 5, 10) if quick else (1, 2, 5, 10, 50)
    print(format_baselines(baseline_comparison(message_counts=counts), size_bytes=1_000))
    print()
    print(format_policy_ablation(policy_ablation()))
    print()
    obs_data = obs_bench(repeats=3 if quick else 5)
    print(format_obs(obs_data))
    out = write_bench_obs(obs_data)
    print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
