"""``python -m repro.bench``: run every experiment and print the report.

``--experiment fault`` runs only E-FAULT (the fault-injection sweep and
broker-crash recovery scenario) and writes ``BENCH_FAULT.json``;
``--experiment msgfast`` runs only E-MSGFAST (the secure-messaging
fast-path sweeps) and writes ``BENCH_MSGFAST.json``, exiting nonzero if
any acceptance check fails; ``--experiment fed`` runs only E-FED (the
sharded-federation sweep) and writes ``BENCH_FED.json``, likewise
gating on its acceptance checks; ``--quick`` shrinks every experiment
for CI smoke runs.
"""

from __future__ import annotations

import sys

from repro.bench import (
    baseline_comparison,
    fault_report,
    fed_report,
    format_fed,
    format_baselines,
    format_fault_report,
    format_group_scaling,
    format_join_overhead,
    format_msg_overhead,
    format_msgfast,
    format_obs,
    format_policy_ablation,
    group_scaling,
    join_overhead,
    msg_overhead_curve,
    msgfast_report,
    obs_bench,
    policy_ablation,
    write_bench_fault,
    write_bench_fed,
    write_bench_msgfast,
    write_bench_obs,
)


def run_fault(quick: bool) -> int:
    data = fault_report(messages=30 if quick else 100)
    print(format_fault_report(data))
    out = write_bench_fault(data)
    print(f"  wrote {out}")
    return 0


def run_fed(quick: bool) -> int:
    data = fed_report(quick=quick)
    print(format_fed(data))
    out = write_bench_fed(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def run_msgfast(quick: bool) -> int:
    data = msgfast_report(quick=quick)
    print(format_msgfast(data))
    out = write_bench_msgfast(data)
    print(f"  wrote {out}")
    return 0 if data["checks"]["all_passed"] else 1


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    if "--experiment" in argv:
        which = argv[argv.index("--experiment") + 1]
        if which == "fault":
            return run_fault(quick)
        if which == "msgfast":
            return run_msgfast(quick)
        if which == "fed":
            return run_fed(quick)
        print(f"unknown experiment {which!r}; known: fault, fed, msgfast",
              file=sys.stderr)
        return 2
    print(format_join_overhead(join_overhead(repeats=2 if quick else 3)))
    print()
    sizes = (100, 1_000, 10_000, 100_000) if quick else (100, 1_000, 10_000, 100_000, 1_000_000)
    curve = msg_overhead_curve(sizes=sizes, repeats=2 if quick else 3)
    print(format_msg_overhead(curve))
    print()
    from repro.bench.figures import render_figure2

    print(render_figure2(curve))
    print()
    print(format_group_scaling(group_scaling(group_sizes=(2, 4, 8) if quick else (2, 4, 8, 16))))
    print()
    counts = (1, 5, 10) if quick else (1, 2, 5, 10, 50)
    print(format_baselines(baseline_comparison(message_counts=counts), size_bytes=1_000))
    print()
    print(format_policy_ablation(policy_ablation()))
    print()
    obs_data = obs_bench(repeats=3 if quick else 5)
    print(format_obs(obs_data))
    out = write_bench_obs(obs_data)
    print(f"  wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
