"""The paper's experiments (E1, E2) and the DESIGN.md ablations (A1-A4).

Every function returns plain data structures; ``repro.bench.report``
renders them as the tables/series the paper prints.  See DESIGN.md
section 4 for the experiment index and EXPERIMENTS.md for paper-vs-
measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.bench import fixtures
from repro.bench.baselines import CbjxEchoPair, TlsClientDriver, TlsEchoServer
from repro.bench.timing import mean_total, overhead_pct, repeat_timed, timed_call
from repro.core.policy import DEFAULT_POLICY, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.sim.latency import LAN_2009, LinkModel

#: the value reported in §5 for the secureConnection+secureLogin overhead
PAPER_JOIN_OVERHEAD_PCT = 81.76


# ===========================================================================
# E1 — join overhead (§5, "81.76%")
# ===========================================================================

@dataclass
class JoinOverheadResult:
    plain_s: float
    secure_s: float
    overhead_pct: float
    paper_overhead_pct: float = PAPER_JOIN_OVERHEAD_PCT
    link_name: str = "lan2009"
    cpu_scale: float = 1.0
    rsa_bits: int = 1024


def join_overhead(policy: SecurityPolicy = DEFAULT_POLICY,
                  link: LinkModel = LAN_2009, link_name: str = "lan2009",
                  repeats: int = 3, cpu_scale: float = 1.0) -> JoinOverheadResult:
    """E1: time to join the network, plain connect+login vs
    secureConnection+secureLogin.

    Every repetition builds a fresh world (joins are one-shot by nature);
    key generation is excluded via cached keys, matching the paper's setup
    where keys exist before the join is timed.
    """
    plain_times = []
    secure_times = []
    for r in range(repeats):
        net, broker, clients = fixtures.build_plain_world(
            n_clients=1, link=link, seed=b"e1-plain-%d" % r)
        client = clients[0]

        def plain_join():
            client.connect("broker:0")
            client.login("user0", "pw0")

        plain_times.append(timed_call(net, plain_join, cpu_scale,
                                      name="e1.plain_join"))

        snet, admin, sbroker, sclients = fixtures.build_secure_world(
            n_clients=1, link=link, policy=policy, seed=b"e1-sec-%d" % r)
        sclient = sclients[0]

        def secure_join():
            sclient.secure_connect("broker:0")
            sclient.secure_login("user0", "pw0")

        secure_times.append(timed_call(snet, secure_join, cpu_scale,
                                       name="e1.secure_join"))

    plain_s = mean_total(plain_times)
    secure_s = mean_total(secure_times)
    return JoinOverheadResult(
        plain_s=plain_s, secure_s=secure_s,
        overhead_pct=overhead_pct(secure_s, plain_s),
        link_name=link_name, cpu_scale=cpu_scale, rsa_bits=policy.rsa_bits)


# ===========================================================================
# E2 — Figure 2: secureMsgPeer overhead vs data length
# ===========================================================================

@dataclass
class MsgOverheadPoint:
    size_bytes: int
    plain_s: float
    secure_s: float
    overhead_pct: float


@dataclass
class MsgOverheadCurve:
    points: list[MsgOverheadPoint] = field(default_factory=list)
    link_name: str = "lan2009"
    cpu_scale: float = 1.0
    rsa_bits: int = 1024

    def monotone_decreasing_tail(self) -> bool:
        """Figure 2's qualitative claim: overhead falls as size grows."""
        pct = [p.overhead_pct for p in self.points]
        return all(b <= a * 1.10 for a, b in zip(pct, pct[1:])) and pct[-1] < pct[0]


DEFAULT_SIZES = (100, 1_000, 10_000, 100_000, 1_000_000)


def msg_overhead_curve(sizes: tuple[int, ...] = DEFAULT_SIZES,
                       policy: SecurityPolicy = DEFAULT_POLICY,
                       link: LinkModel = LAN_2009, link_name: str = "lan2009",
                       repeats: int = 3, cpu_scale: float = 1.0) -> MsgOverheadCurve:
    """E2: plain sendMsgPeer vs secureMsgPeer across message sizes.

    One warmed-up world per variant; the secure path is measured in its
    steady state (advertisements validated and cached), matching a running
    chat session — the scenario Figure 2 describes.
    """
    net, broker, clients = fixtures.build_plain_world(
        n_clients=2, link=link, seed=b"e2-plain")
    fixtures.join_plain(clients)
    alice, bob = clients

    snet, admin, sbroker, sclients = fixtures.build_secure_world(
        n_clients=2, link=link, policy=policy, seed=b"e2-sec", joined=True)
    salice, sbob = sclients

    curve = MsgOverheadCurve(link_name=link_name, cpu_scale=cpu_scale,
                             rsa_bits=policy.rsa_bits)
    for size in sizes:
        text = "x" * size
        plain = repeat_timed(
            net, lambda: alice.send_msg_peer(str(bob.peer_id), "bench", text),
            repeats=repeats, cpu_scale=cpu_scale, name=f"e2.plain_msg.{size}")
        secure = repeat_timed(
            snet, lambda: salice.secure_msg_peer(str(sbob.peer_id), "bench", text),
            repeats=repeats, cpu_scale=cpu_scale, name=f"e2.secure_msg.{size}")
        plain_s = mean_total(plain)
        secure_s = mean_total(secure)
        curve.points.append(MsgOverheadPoint(
            size_bytes=size, plain_s=plain_s, secure_s=secure_s,
            overhead_pct=overhead_pct(secure_s, plain_s)))
    return curve


# ===========================================================================
# A3 — secureMsgPeerGroup scaling with group size
# ===========================================================================

@dataclass
class GroupScalePoint:
    group_size: int
    plain_s: float
    secure_s: float
    overhead_pct: float


def group_scaling(group_sizes: tuple[int, ...] = (2, 4, 8, 16),
                  policy: SecurityPolicy = DEFAULT_POLICY,
                  link: LinkModel = LAN_2009, cpu_scale: float = 1.0,
                  text: str = "hello group") -> list[GroupScalePoint]:
    """A3: sendMsgPeerGroup vs secureMsgPeerGroup as members grow.

    Both are linear in group size by construction (iterated peer sends,
    §4.3.1); the interesting output is the per-member secure cost.
    """
    out = []
    for n in group_sizes:
        net, broker, clients = fixtures.build_plain_world(
            n_clients=n, link=link, seed=b"a3-plain-%d" % n)
        fixtures.join_plain(clients)
        sender = clients[0]
        plain = repeat_timed(
            net, lambda: sender.send_msg_peer_group("bench", text),
            repeats=2, cpu_scale=cpu_scale, name=f"a3.plain_group.{n}")

        snet, admin, sbroker, sclients = fixtures.build_secure_world(
            n_clients=n, link=link, policy=policy,
            seed=b"a3-sec-%d" % n, joined=True)
        ssender = sclients[0]
        secure = repeat_timed(
            snet, lambda: ssender.secure_msg_peer_group("bench", text),
            repeats=2, cpu_scale=cpu_scale, name=f"a3.secure_group.{n}")
        plain_s = mean_total(plain)
        secure_s = mean_total(secure)
        out.append(GroupScalePoint(
            group_size=n, plain_s=plain_s, secure_s=secure_s,
            overhead_pct=overhead_pct(secure_s, plain_s)))
    return out


# ===========================================================================
# A4 — stateless secure messaging vs TLS channel vs CBJX
# ===========================================================================

@dataclass
class BaselineComparisonPoint:
    n_messages: int
    stateless_s: float      # paper's secureMsgPeer, per conversation
    tls_s: float            # handshake + records
    cbjx_s: float           # per-message signed encapsulation


def baseline_comparison(message_counts: tuple[int, ...] = (1, 2, 5, 10, 50),
                        size_bytes: int = 1_000,
                        policy: SecurityPolicy = DEFAULT_POLICY,
                        link: LinkModel = LAN_2009,
                        cpu_scale: float = 1.0) -> list[BaselineComparisonPoint]:
    """A4: total cost of an N-message conversation under each mechanism.

    TLS pays a handshake once then cheap symmetric records; the stateless
    scheme pays asymmetric crypto per message; CBJX signs per message but
    does not encrypt.  The crossover N is the design trade-off §4.3 talks
    about.
    """
    text = "y" * size_bytes
    payload = text.encode()
    out = []
    for n in message_counts:
        # stateless secure primitives
        snet, admin, sbroker, sclients = fixtures.build_secure_world(
            n_clients=2, link=link, policy=policy,
            seed=b"a4-sec-%d" % n, joined=True)
        salice, sbob = sclients
        salice.secure_msg_peer(str(sbob.peer_id), "bench", "warmup")

        def stateless_run():
            for _ in range(n):
                salice.secure_msg_peer(str(sbob.peer_id), "bench", text)

        stateless = timed_call(snet, stateless_run, cpu_scale,
                               name=f"a4.stateless.{n}")

        # TLS channel (handshake included, echo halved to model one-way)
        tnet = fixtures.fresh_network(link)
        # OAEP-wrapping the 48-byte premaster needs >= 1024-bit moduli
        server_keys = fixtures.cached_keypair(max(1024, policy.rsa_bits),
                                              "tls-server")
        TlsEchoServer(tnet, "srv", server_keys, HmacDrbg(b"a4-tls-s-%d" % n))
        driver = TlsClientDriver(tnet, "cli", "srv", HmacDrbg(b"a4-tls-c-%d" % n))

        def tls_run():
            driver.handshake()
            for _ in range(n):
                driver.echo(payload)

        tls = timed_call(tnet, tls_run, cpu_scale, name=f"a4.tls.{n}")

        # CBJX datagrams
        cnet = fixtures.fresh_network(link)
        pair = CbjxEchoPair(
            cnet, "a", "b",
            fixtures.cached_keypair(policy.rsa_bits, "cbjx-a"),
            fixtures.cached_keypair(policy.rsa_bits, "cbjx-b"),
            HmacDrbg(b"a4-cbjx-%d" % n))

        def cbjx_run():
            for _ in range(n):
                pair.send_a_to_b(payload)

        cbjx = timed_call(cnet, cbjx_run, cpu_scale, name=f"a4.cbjx.{n}")

        out.append(BaselineComparisonPoint(
            n_messages=n,
            stateless_s=stateless.total_s,
            # echo measures a round trip; halve the record phase roughly
            tls_s=tls.total_s,
            cbjx_s=cbjx.total_s))
    return out


# ===========================================================================
# E-OBS — per-primitive distributions from the observability registry
# ===========================================================================

#: paper primitive name -> the Client Module method the decorator records
OBS_PRIMITIVES: dict[str, str] = {
    "secureConnection": "secure_connect",
    "secureLogin": "secure_login",
    "secureMsgPeer": "secure_msg_peer",
}


def obs_snapshot_report(registry: "obs.Registry",
                        meta: dict | None = None) -> dict:
    """Shape a registry snapshot as the ``BENCH_OBS.json`` document.

    Per-primitive latency (p50/p95) and byte/frame distributions for the
    three §4 primitives, every protocol-phase span histogram, and the raw
    counter/gauge maps.  Shared by :func:`obs_bench` and the pytest
    benchmark session hook.
    """
    snap = registry.snapshot()
    primitives = {}
    for paper_name, prim in OBS_PRIMITIVES.items():
        primitives[paper_name] = {
            "calls": snap["counters"].get(f"overlay.{prim}.calls", 0),
            "errors": snap["counters"].get(f"overlay.{prim}.errors", 0),
            "latency_ms": snap["histograms"].get(f"overlay.{prim}.latency_ms", {}),
            "bytes_sent": snap["histograms"].get(f"overlay.{prim}.bytes_sent", {}),
            "frames_sent": snap["histograms"].get(f"overlay.{prim}.frames_sent", {}),
        }
    return {
        "meta": meta or {},
        "primitives": primitives,
        "spans": {name: summary
                  for name, summary in snap["histograms"].items()
                  if name.startswith("span.")},
        "counters": snap["counters"],
        "gauges": snap["gauges"],
    }


def obs_bench(repeats: int = 5, policy: SecurityPolicy = DEFAULT_POLICY,
              link: LinkModel = LAN_2009, link_name: str = "lan2009",
              msg_size: int = 1_000) -> dict:
    """E-OBS: run the secure join + messaging workload under a fresh,
    enabled observability registry and report the captured distributions.

    Each repeat builds a fresh secure world and performs two full joins
    (secureConnection + secureLogin per client) plus ``repeats`` calls of
    secureMsgPeer; the swapped-in registry sees only this workload, so
    the percentiles are clean per-primitive distributions.
    """
    registry = obs.Registry(enabled=True)
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    obs.set_registry(registry)
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    text = "x" * msg_size
    try:
        for r in range(repeats):
            net, admin, broker, clients = fixtures.build_secure_world(
                n_clients=2, link=link, policy=policy,
                seed=b"e-obs-%d" % r, joined=True)
            c0, c1 = clients
            for _ in range(repeats):
                c0.secure_msg_peer(str(c1.peer_id), "bench", text)
    finally:
        obs.set_registry(saved[0])
        obs.set_tracer(saved[1])
        obs.set_events(saved[2])
    return obs_snapshot_report(registry, meta={
        "experiment": "obs_bench",
        "repeats": repeats,
        "rsa_bits": policy.rsa_bits,
        "link": link_name,
        "msg_size_bytes": msg_size,
    })


# ===========================================================================
# A2 — policy ablation on E1/E2
# ===========================================================================

@dataclass
class PolicyAblationRow:
    label: str
    rsa_bits: int
    suite: str
    join_secure_s: float
    msg_secure_s: float


def policy_ablation(policies: dict[str, SecurityPolicy] | None = None,
                    msg_size: int = 10_000,
                    link: LinkModel = LAN_2009,
                    cpu_scale: float = 1.0) -> list[PolicyAblationRow]:
    """A2: how key size / cipher suite choices move the secure costs."""
    if policies is None:
        from repro.crypto import envelope

        policies = {
            "rsa1024+chacha(oaep)": SecurityPolicy(rsa_bits=1024),
            "rsa1024+aes-cbc(v1.5)": SecurityPolicy(
                rsa_bits=1024, envelope_suite="aes128-cbc",
                envelope_wrap=envelope.WRAP_V15,
                signature_scheme="rsa-pkcs1v15-sha256"),
            "rsa2048+chacha(oaep)": SecurityPolicy(rsa_bits=2048),
        }
    rows = []
    for label, policy in policies.items():
        policy = policy.validate()
        net, admin, broker, clients = fixtures.build_secure_world(
            n_clients=2, link=link, policy=policy,
            seed=b"a2-" + label.encode())
        c0, c1 = clients

        def join():
            c0.secure_connect("broker:0")
            c0.secure_login("user0", "pw0")

        join_t = timed_call(net, join, cpu_scale)
        c1.secure_connect("broker:0")
        c1.secure_login("user1", "pw1")
        text = "z" * msg_size
        msg = repeat_timed(
            net, lambda: c0.secure_msg_peer(str(c1.peer_id), "bench", text),
            repeats=3, cpu_scale=cpu_scale)
        rows.append(PolicyAblationRow(
            label=label, rsa_bits=policy.rsa_bits,
            suite=policy.envelope_suite,
            join_secure_s=join_t.total_s,
            msg_secure_s=mean_total(msg)))
    return rows
