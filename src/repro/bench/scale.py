"""E-SCALE: the population-scale security experiment.

The paper argues the secure primitives hold up "in the context of a
real overlay" (§5) — brokers serving campus-sized populations while
under exactly the §2.3 threats.  E-SCALE stages that end to end with
the scenario engine: a federated ring of eight secure brokers, a
hundred-thousand-actor population admitted through cohort arrival
processes, then the canonical disruption mix — a churn storm, a Sybil
flood against node-id assignment, an eclipse attempt against the
federation ring and a malformed-frame storm from the wire fuzzer —
followed by a clean recovery window.

Reported per phase: goodput (probe success over real secure-messaging
primitives, frame deltas), the full reject taxonomy
(``wire.reject.*`` / ``fed.reject.*`` / ``fn.secure_login.*``) and the
post-disruption convergence time.  The acceptance checks encode the
security claims:

* every Sybil identity is rejected (CBID mismatch before any sid or
  signature work — the attack is cheap for the attacker and cheaper
  for the broker);
* the eclipse roster never enters any broker's ring
  (``fed.reject.unsigned``, captured id-space fraction exactly 0);
* the frame storm is fully absorbed at the wire boundary, classified
  under the expected reasons, before any handler runs;
* goodput returns to 100% after the disruption lifts.

``--gate FRESH [BASELINE]`` compares a fresh document against the
committed quick-profile baseline (count quantities only; latency and
convergence stay informational).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.msgfast import _restore_registry, _swap_registry
from repro.bench.paths import bench_out_path
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope, signing
from repro.crypto.drbg import HmacDrbg
from repro.scenario import (
    ActorPool,
    ChurnStorm,
    Cohort,
    EclipseAttack,
    FlashCrowd,
    FrameStorm,
    Phase,
    PoissonArrivals,
    Scenario,
    ScenarioEngine,
    SybilFlood,
)
from repro.sim.faults import FaultPlan, FrameLoss

#: full-profile shape (the headline experiment)
BROKERS = 8
POPULATION = 100_000
GROUPS = 400
CHURN = 2_000
SYBILS = 512
STORM_TICKS = 20

#: quick-profile shape (CI smoke + committed baseline)
POPULATION_QUICK = 2_000
GROUPS_QUICK = 40
CHURN_QUICK = 200
SYBILS_QUICK = 64
STORM_TICKS_QUICK = 8

#: fraction of the population joining through the real login exchange
WIRE_FRACTION = 0.002

BASELINE_PATH = "benchmarks/baselines/BENCH_SCALE.json"
TOLERANCE = 0.20

GROUP = "scale-probe"


def bench_policy() -> SecurityPolicy:
    """Small keys + v1.5: the gated quantities are counts, not moduli."""
    return SecurityPolicy(
        rsa_bits=512,
        envelope_wrap=envelope.WRAP_V15,
        signature_scheme=signing.SCHEME_V15,
    ).validate()


def _build_world(quick: bool):
    """The deployment + population + engine, straight from the DSL."""
    population = POPULATION_QUICK if quick else POPULATION
    builder = Scenario(seed=b"e-scale", policy=bench_policy())
    builder.with_user("probe-a", "pw", groups={GROUP})
    builder.with_user("probe-b", "pw", groups={GROUP})
    for i in range(BROKERS):
        builder.with_broker(f"broker:{i}")
    builder.with_secure_peer("probe-a").with_secure_peer("probe-b")
    scn = builder.build(join=True)

    pool = ActorPool(scn.network, scn.brokers.values(), scn.admin,
                     HmacDrbg(b"e-scale-pool"))
    n_groups = GROUPS_QUICK if quick else GROUPS
    groups = tuple(f"course-{i:03d}" for i in range(n_groups))
    steady = int(population * 0.95)
    pool.provision(Cohort("steady", steady, arrivals=PoissonArrivals(),
                          groups=groups, wire_fraction=WIRE_FRACTION))
    pool.provision(Cohort("flash", population - steady,
                          arrivals=FlashCrowd(at=0.5, width=0.1),
                          wire_fraction=WIRE_FRACTION))
    engine = ScenarioEngine(scn, pool=pool,
                            probe_pairs=[("probe-a", "probe-b", GROUP)],
                            seed=b"e-scale-engine")
    return scn, pool, engine


def _phases(quick: bool) -> tuple[list[Phase], dict]:
    """The canonical E-SCALE mix; also returns the adversaries by name."""
    steady = int((POPULATION_QUICK if quick else POPULATION) * 0.95)
    flash = (POPULATION_QUICK if quick else POPULATION) - steady
    adversaries = {
        "sybil": SybilFlood(identities=SYBILS_QUICK if quick else SYBILS,
                            per_step=16 if quick else 64),
        "eclipse": EclipseAttack(rogues=BROKERS, per_step=2),
        "storm": FrameStorm(per_step=32 if quick else 128),
    }
    ticks = STORM_TICKS_QUICK if quick else STORM_TICKS
    phases = [
        Phase("ramp", duration_s=60.0, admissions={"steady": steady},
              probes=10),
        Phase("flash-crowd", duration_s=20.0, admissions={"flash": flash},
              probes=10),
        Phase("brownout", duration_s=20.0,
              churn=ChurnStorm(count=CHURN_QUICK if quick else CHURN,
                               downtime_s=2.0),
              faults=FaultPlan(FrameLoss(rate=0.05)),
              probes=10),
        Phase("siege", duration_s=20.0,
              adversaries=tuple(adversaries.values()),
              ticks=ticks, probes=10),
        Phase("recovery", duration_s=20.0, probes=10),
    ]
    return phases, adversaries


def _wire_reject_total(phase_report: dict) -> int:
    return sum(phase_report["rejects"]["wire"].values())


def _checks(report: dict, adversaries: dict, engine: ScenarioEngine,
            population: int) -> dict:
    by_name = {p["name"]: p for p in report["phases"]}
    siege = by_name["siege"]
    sybil = adversaries["sybil"].summary()
    storm = adversaries["storm"].summary()
    eclipse = adversaries["eclipse"].summary()
    secure_rejects = sum(siege["rejects"]["secure_login"].values())
    checks = {
        "sybil_none_accepted": sybil["accepted"] == 0,
        "sybil_taxonomy_accounts_all":
            secure_rejects >= sybil["attempts"],
        "eclipse_no_link_accepted": eclipse["link_ok"] == 0,
        "eclipse_zero_capture":
            adversaries["eclipse"].captured_fraction(engine.ctx) == 0.0,
        "eclipse_rejected_unsigned":
            siege["rejects"]["federation"].get("fed.reject.unsigned", 0) > 0,
        "storm_absorbed_at_boundary":
            _wire_reject_total(siege) >= storm["frames_sent"],
        "population_admitted":
            report["active_sessions"] >= int(population * 0.95),
        "goodput_recovers":
            by_name["recovery"]["goodput"]["probe_ratio"] == 1.0,
        "siege_converged": siege["convergence_s"] is not None,
    }
    checks["all_passed"] = all(checks.values())
    return checks


def scale_report(quick: bool = False) -> dict:
    """The complete E-SCALE document."""
    population = POPULATION_QUICK if quick else POPULATION
    registry, saved = _swap_registry()
    started = time.perf_counter()
    try:
        scn, pool, engine = _build_world(quick)
        phases, adversaries = _phases(quick)
        run = engine.run(phases)
        checks = _checks(run, adversaries, engine, population)
    finally:
        _restore_registry(saved)
    return {
        "experiment": "E-SCALE",
        "quick": quick,
        "rsa_bits": bench_policy().rsa_bits,
        "brokers": BROKERS,
        "population": population,
        "wire_fraction": WIRE_FRACTION,
        "phases": run["phases"],
        "population_stats": run["population"],
        "active_sessions": run["active_sessions"],
        "checks": checks,
        "wall_s": round(time.perf_counter() - started, 3),
    }


def format_scale(data: dict) -> str:
    lines = [
        f"E-SCALE: {data['population']:,} clients / {data['brokers']} "
        f"secure brokers (rsa-{data['rsa_bits']}"
        f"{', quick' if data['quick'] else ''})",
        "",
        f"  {'phase':<12} {'joins':>7} {'leaves':>7} {'probes':>7} "
        f"{'good%':>6} {'rejects':>8} {'conv(s)':>8}",
    ]
    for phase in data["phases"]:
        rejects = sum(sum(layer.values())
                      for layer in phase["rejects"].values())
        good = phase["goodput"]["probe_ratio"]
        conv = phase["convergence_s"]
        lines.append(
            f"  {phase['name']:<12} {phase['population']['joins']:>7} "
            f"{phase['population']['leaves']:>7} "
            f"{phase['goodput']['probe_attempts']:>7} "
            f"{good * 100 if good is not None else 0:>6.1f} "
            f"{rejects:>8} "
            f"{conv if conv is not None else float('nan'):>8.3f}")
    lines.append("")
    siege = next(p for p in data["phases"] if p["name"] == "siege")
    for name, summary in sorted(siege["adversaries"].items()):
        lines.append(f"  {name}: {json.dumps(summary, sort_keys=True)}")
    lines.append("")
    lines.append(f"  active sessions: {data['active_sessions']:,}   "
                 f"wall: {data['wall_s']}s")
    status = "pass" if data["checks"]["all_passed"] else "FAIL"
    failing = [k for k, v in data["checks"].items()
               if k != "all_passed" and not v]
    lines.append(f"  checks: {status}"
                 + (f" ({', '.join(failing)})" if failing else ""))
    return "\n".join(lines)


def write_bench_scale(data: dict, path: str | Path | None = None) -> Path:
    """Persist the E-SCALE document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_SCALE.json")
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# -- regression gate ---------------------------------------------------------

#: per-phase count quantities gated against the baseline (ceilings: more
#: frames for the same scripted load is a cost regression)
_GATED_PHASE_QUANTITIES = ("frames_sent",)


def check_scale_regression(fresh: dict, baseline: dict,
                           tolerance: float = TOLERANCE) -> list[str]:
    """Problems (empty = pass) comparing fresh numbers to the baseline.

    Counts only: the acceptance checks must hold, the population shape
    must match, per-phase frame costs must not grow past tolerance and
    the siege-phase reject totals must not shrink below it (the
    taxonomy still catching everything it used to).  Wall time and
    convergence stay informational.
    """
    problems: list[str] = []
    if not fresh.get("checks", {}).get("all_passed"):
        failing = [k for k, v in fresh.get("checks", {}).items()
                   if k != "all_passed" and not v]
        problems.append(f"fresh run fails acceptance checks: "
                        f"{', '.join(failing) or 'missing checks section'}")
    for key in ("brokers", "population"):
        if fresh.get(key) != baseline.get(key):
            problems.append(f"{key} changed: fresh {fresh.get(key)} "
                            f"!= baseline {baseline.get(key)}")
    base_phases = {p["name"]: p for p in baseline.get("phases", ())}
    fresh_phases = {p["name"]: p for p in fresh.get("phases", ())}
    if not base_phases:
        problems.append("baseline document has no phases section")
    for name, base in sorted(base_phases.items()):
        phase = fresh_phases.get(name)
        if phase is None:
            problems.append(f"phase {name!r}: missing from fresh run")
            continue
        for quantity in _GATED_PHASE_QUANTITIES:
            ceiling = base["goodput"][quantity] * (1.0 + tolerance)
            if phase["goodput"][quantity] > ceiling:
                problems.append(
                    f"phase {name!r}: {quantity} regressed "
                    f"{phase['goodput'][quantity]} > {ceiling:.0f} "
                    f"(baseline {base['goodput'][quantity]})")
        base_rejects = sum(sum(layer.values())
                           for layer in base["rejects"].values())
        rejects = sum(sum(layer.values())
                      for layer in phase["rejects"].values())
        floor = base_rejects * (1.0 - tolerance)
        if name == "siege" and rejects < floor:
            problems.append(
                f"phase {name!r}: reject taxonomy shrank "
                f"{rejects} < {floor:.0f} (baseline {base_rejects})")
    return problems


def gate(fresh_path: str, baseline_path: str = BASELINE_PATH,
         tolerance: float = TOLERANCE) -> int:
    try:
        fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"scale gate: cannot load inputs: {exc}")
        return 2
    problems = check_scale_regression(fresh, baseline, tolerance)
    for problem in problems:
        print(f"scale gate: FAIL: {problem}")
    if not problems:
        print("scale gate: pass")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scale",
        description="E-SCALE population-scale security regression gate")
    parser.add_argument("--gate", nargs="+", metavar="JSON", required=True,
                        help="compare FRESH [BASELINE] scale documents; "
                             f"baseline defaults to {BASELINE_PATH}")
    args = parser.parse_args(argv)
    baseline = args.gate[1] if len(args.gate) > 1 else BASELINE_PATH
    return gate(args.gate[0], baseline)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
