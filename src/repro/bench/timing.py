"""Measuring protocol operations in simulated time.

The model (see :mod:`repro.sim.clock`): an operation's virtual duration is

    T = wall_cpu * cpu_scale + network_time

where ``wall_cpu`` is the *measured* real time of the synchronous call
(all crypto on both sides executes in-process during the call) and
``network_time`` is the modeled link transit accumulated by the simulated
network during the call.  ``cpu_scale`` lets experiments impersonate
slower hosts (the paper used a 1.2 GHz Pentium M).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class OpTiming:
    """One measured operation."""

    wall_cpu_s: float
    network_s: float
    cpu_scale: float

    @property
    def total_s(self) -> float:
        return self.wall_cpu_s * self.cpu_scale + self.network_s


def timed_call(network: SimNetwork, fn: Callable[[], object],
               cpu_scale: float = 1.0, name: str | None = None) -> OpTiming:
    """Run ``fn`` and split its cost into CPU and modeled network time.

    Passing ``name`` additionally records the virtual total as a
    ``bench.<name>.total_ms`` histogram in the observability registry, so
    experiment samples land in ``BENCH_OBS.json`` alongside the
    per-primitive metrics.
    """
    net0 = network.clock.network_time
    t0 = time.perf_counter()
    fn()
    wall = time.perf_counter() - t0
    timing = OpTiming(
        wall_cpu_s=wall,
        network_s=network.clock.network_time - net0,
        cpu_scale=cpu_scale,
    )
    if name is not None:
        obs.get_registry().observe(f"bench.{name}.total_ms",
                                   timing.total_s * 1e3)
    return timing


def repeat_timed(network: SimNetwork, fn: Callable[[], object],
                 repeats: int, cpu_scale: float = 1.0,
                 warmup: int = 1, name: str | None = None) -> list[OpTiming]:
    """Warm up (JIT-ish caches, advertisement validation) then measure."""
    for _ in range(warmup):
        fn()
    return [timed_call(network, fn, cpu_scale, name=name)
            for _ in range(repeats)]


def mean_total(timings: list[OpTiming]) -> float:
    return sum(t.total_s for t in timings) / len(timings) if timings else 0.0


def overhead_pct(secure_s: float, plain_s: float) -> float:
    """The paper's metric: extra cost of the secure variant, in percent."""
    if plain_s <= 0:
        raise ValueError("plain baseline duration must be positive")
    return (secure_s - plain_s) / plain_s * 100.0
