"""Shared benchmark fixtures: cached keys and standard topologies.

RSA key generation dominates setup time (seconds per 1024-bit key), so
the harness generates each (bits, label) key exactly once per process
from a deterministic seed and reuses it across experiments.  This only
caches *setup* material — everything measured (signing, sealing, message
flow) runs live.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.admin import Administrator
from repro.core.keystore import Keystore
from repro.core.policy import DEFAULT_POLICY, SecurityPolicy
from repro.core.secure_broker import SecureBroker
from repro.core.secure_client import SecureClientPeer
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import KeyPair, generate_keypair
from repro.overlay.broker import Broker
from repro.overlay.client import ClientPeer
from repro.overlay.database import UserDatabase
from repro.sim.latency import LAN_2009, LinkModel
from repro.sim.network import SimNetwork


@lru_cache(maxsize=None)
def cached_keypair(bits: int, label: str) -> KeyPair:
    """A deterministic key pair, generated once per process."""
    return generate_keypair(bits, drbg=HmacDrbg(f"bench-key|{bits}|{label}".encode()))


def fresh_network(link: LinkModel = LAN_2009) -> SimNetwork:
    return SimNetwork(link=link)


def make_client_keystore(bits: int, label: str) -> Keystore:
    """A keystore around a cached key (fresh trust state each call)."""
    return Keystore(cached_keypair(bits, label))


def build_plain_world(n_clients: int = 2, link: LinkModel = LAN_2009,
                      seed: bytes = b"bench-plain"):
    """One broker + n plain clients, users provisioned, nobody joined yet."""
    net = fresh_network(link)
    root = HmacDrbg(seed)
    database = UserDatabase(root.fork(b"db"))
    broker = Broker(net, "broker:0", database, root.fork(b"broker"), name="B0")
    clients = []
    for i in range(n_clients):
        database.register_user(f"user{i}", f"pw{i}", {"bench"})
        clients.append(ClientPeer(net, f"peer:{i}", root.fork(b"cl%d" % i),
                                  name=f"user{i}-app"))
    return net, broker, clients


def build_secure_world(n_clients: int = 2, link: LinkModel = LAN_2009,
                       policy: SecurityPolicy = DEFAULT_POLICY,
                       seed: bytes = b"bench-secure", joined: bool = False):
    """One secure broker + n secure clients (cached keys), optionally joined."""
    net = fresh_network(link)
    root = HmacDrbg(seed)
    admin = Administrator(root.fork(b"admin"), bits=policy.rsa_bits,
                          keys=cached_keypair(policy.rsa_bits, "admin"))
    broker = SecureBroker.create(
        net, "broker:0", admin, root.fork(b"broker"), name="B0",
        policy=policy, keys=cached_keypair(policy.rsa_bits, "broker"))
    clients = []
    for i in range(n_clients):
        admin.register_user(f"user{i}", f"pw{i}", {"bench"})
        clients.append(SecureClientPeer(
            net, f"peer:{i}", root.fork(b"cl%d" % i), admin.credential,
            name=f"user{i}-app", policy=policy,
            keystore=make_client_keystore(policy.rsa_bits, f"client{i}")))
    if joined:
        for i, client in enumerate(clients):
            client.secure_connect("broker:0")
            client.secure_login(f"user{i}", f"pw{i}")
    return net, admin, broker, clients


def build_federated_secure_world(n_brokers: int, n_clients: int = 2,
                                 link: LinkModel = LAN_2009,
                                 policy: SecurityPolicy = DEFAULT_POLICY,
                                 seed: bytes = b"bench-fed-secure",
                                 joined: bool = True):
    """B linked secure brokers under one admin + N clients round-robin.

    Returns ``(net, admin, brokers, clients)``; client ``i`` homes on
    broker ``i % n_brokers`` and is logged in when ``joined``.
    """
    net = fresh_network(link)
    root = HmacDrbg(seed + b"|%d" % n_brokers)
    admin = Administrator(root.fork(b"admin"), bits=policy.rsa_bits,
                          keys=cached_keypair(policy.rsa_bits, "admin"))
    brokers = [SecureBroker.create(
        net, f"broker:{i}", admin, root.fork(b"br%d" % i), name=f"B{i}",
        policy=policy, keys=cached_keypair(policy.rsa_bits, f"broker{i}"))
        for i in range(n_brokers)]
    for other in brokers[1:]:
        brokers[0].link_broker(other)
    clients = []
    for i in range(n_clients):
        admin.register_user(f"user{i}", f"pw{i}", {"bench"})
        client = SecureClientPeer(
            net, f"peer:{i}", root.fork(b"cl%d" % i), admin.credential,
            name=f"user{i}-app", policy=policy,
            keystore=make_client_keystore(policy.rsa_bits, f"client{i}"))
        if joined:
            client.secure_connect(brokers[i % n_brokers].address)
            client.secure_login(f"user{i}", f"pw{i}")
        clients.append(client)
    return net, admin, brokers, clients


def join_plain(clients, usernames=None) -> None:
    for i, client in enumerate(clients):
        client.connect("broker:0")
        client.login(f"user{i}", f"pw{i}")
