"""E-FAULT: primitive robustness under injected faults.

Two parts, both deterministic under the sim RNG:

* **loss sweep** — plain ``send_msg_peer`` and ``secure_msg_peer`` under
  frame-loss rates, with retries off (``NO_RETRY`` / the secure
  default) and on (the ``messenger`` policy).  The expected shape:
  without retries the delivery rate tracks ``1 - loss``; with a
  4-attempt policy the per-message failure probability drops to
  ``loss**4`` (0.01% at 10% loss), so the measured rate sits at ~100%.
* **crash recovery** — a :class:`~repro.sim.faults.BrokerCrash` takes
  the broker down mid-session and wipes its RAM (sessions *and* the
  one-shot sid store) on restart.  The client's next broker-backed
  primitive rides the retry policy through the outage, hits the
  restarted broker's "no matching authenticated session", and
  re-establishes transparently: secureConnection (fresh sid) +
  secureLogin, then the original request is re-sent and succeeds.

``python -m repro.bench --experiment fault`` prints the report and
writes ``BENCH_FAULT.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.bench.paths import bench_out_path
from repro.bench.fixtures import build_plain_world, build_secure_world, join_plain
from repro.overlay.policy import NO_RETRY, RetryPolicy
from repro.sim.faults import BrokerCrash, FaultPlan, FrameLoss

#: the sweep's frame-loss rates
LOSS_RATES = (0.0, 0.05, 0.10, 0.20)

#: the retry policy the "retries on" cells use (the messenger default)
SWEEP_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.05)


@dataclass
class LossCell:
    """One (variant, loss, retries) cell of the sweep."""

    variant: str          # 'plain' | 'secure'
    loss: float
    retries: bool
    sent: int
    delivered: int
    success_rate: float
    retries_recorded: int


def _sweep_variant(variant: str, messages: int) -> list[LossCell]:
    """Run every (loss, retries) cell for one primitive variant."""
    if variant == "plain":
        net, _broker, clients = build_plain_world(
            n_clients=2, seed=b"bench-fault-plain")
        join_plain(clients)
        sender, receiver = clients
        retries_metric = "overlay.send_msg_peer.retries"

        def send(retry):
            result = sender.send_msg_peer(
                str(receiver.peer_id), "bench", "fault-sweep probe",
                retry=retry)
            return result.ok
    else:
        net, _admin, _broker, clients = build_secure_world(
            n_clients=2, seed=b"bench-fault-secure", joined=True)
        sender, receiver = clients
        retries_metric = "overlay.secure_msg_peer.retries"

        def send(retry):
            return sender.secure_msg_peer(
                str(receiver.peer_id), "bench", "fault-sweep probe",
                retry=retry)

    # Warm the pipe-advertisement caches so measured sends are pure
    # peer-to-peer datagrams (no broker round-trips inside a cell).
    send(None if variant == "secure" else NO_RETRY)

    registry = obs.get_registry()
    cells: list[LossCell] = []
    for loss in LOSS_RATES:
        for retries in (False, True):
            retry = SWEEP_RETRY if retries else (
                NO_RETRY if variant == "plain" else None)
            plan = FaultPlan(FrameLoss(loss))
            injector = plan.install(
                net, seed=f"fault|{variant}|{loss}|{retries}")
            before = registry.count(retries_metric)
            delivered = sum(1 for _ in range(messages) if send(retry))
            injector.uninstall()
            cells.append(LossCell(
                variant=variant, loss=loss, retries=retries,
                sent=messages, delivered=delivered,
                success_rate=delivered / messages,
                retries_recorded=registry.count(retries_metric) - before))
    return cells


def fault_loss_sweep(messages: int = 100) -> list[LossCell]:
    """The full loss sweep: both variants, retries off and on."""
    return _sweep_variant("plain", messages) + _sweep_variant("secure", messages)


def crash_recovery_scenario() -> dict:
    """Broker crash + restart mid-session; the client recovers on its own.

    Returns a JSON-ready dict recording the degradation events, the
    retry count, and proof that the recovered session runs on a *fresh*
    sid (the pre-crash sid store was wiped, so its count restarts).
    """
    net, _admin, broker, clients = build_secure_world(
        n_clients=2, seed=b"bench-fault-crash", joined=True)
    alice = clients[0]

    degraded: list[str] = []
    retries: list[int] = []
    sub_degraded = obs.on("on_degraded", lambda **kw: degraded.append(kw["reason"]))
    sub_retry = obs.on("on_retry", lambda **kw: retries.append(kw["attempt"]))
    sids_before = broker.sids.issued_total
    sessions_before = len(broker.connected)

    start = net.clock.now
    plan = FaultPlan(BrokerCrash("broker:0", at=start, restart_at=start + 0.25,
                                 on_restart=broker.restart))
    injector = plan.install(net, seed=b"bench-crash")
    try:
        members = alice.secure_create_group("post-crash-room")
        recovered = "post-crash-room" in alice.groups and bool(members)
    finally:
        injector.uninstall()
        obs.get_events().off("on_degraded", sub_degraded)
        obs.get_events().off("on_retry", sub_retry)

    return {
        "recovered": recovered,
        "outage_s": 0.25,
        "retries_during_outage": len(retries),
        "degradation_events": degraded,
        "sessions_before_crash": sessions_before,
        "sessions_after_recovery": len(broker.connected),
        "fresh_sids_issued_for_recovery": broker.sids.issued_total - sids_before,
        "broker_restarts": broker.metrics.count("fn.restarts"),
    }


def fault_report(messages: int = 100) -> dict:
    """The complete E-FAULT document."""
    return {
        "experiment": "E-FAULT",
        "messages_per_cell": messages,
        "retry_policy": {
            "max_attempts": SWEEP_RETRY.max_attempts,
            "base_delay_s": SWEEP_RETRY.base_delay_s,
            "multiplier": SWEEP_RETRY.multiplier,
            "jitter": SWEEP_RETRY.jitter,
        },
        "loss_sweep": [asdict(c) for c in fault_loss_sweep(messages)],
        "crash_recovery": crash_recovery_scenario(),
    }


def format_fault_report(data: dict) -> str:
    lines = [
        "E-FAULT: messenger delivery under frame loss",
        f"  {'variant':>8}  {'loss':>6}  {'retries':>8}  "
        f"{'delivered':>12}  {'rate':>7}  {'re-sends':>8}",
    ]
    for cell in data["loss_sweep"]:
        lines.append(
            f"  {cell['variant']:>8}  {cell['loss']:>6.0%}  "
            f"{'on' if cell['retries'] else 'off':>8}  "
            f"{cell['delivered']:>5}/{cell['sent']:<6}  "
            f"{cell['success_rate']:>7.1%}  {cell['retries_recorded']:>8}")
    crash = data["crash_recovery"]
    lines += [
        "",
        "E-FAULT: broker crash + restart mid-session",
        f"  recovered transparently : {crash['recovered']}",
        f"  retries during outage   : {crash['retries_during_outage']}",
        f"  fresh sids for recovery : {crash['fresh_sids_issued_for_recovery']}",
        f"  degradation events      : {len(crash['degradation_events'])}",
    ]
    for reason in crash["degradation_events"]:
        lines.append(f"    - {reason}")
    return "\n".join(lines)


def write_bench_fault(data: dict, path: str | Path | None = None) -> Path:
    """Persist the E-FAULT document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_FAULT.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out
