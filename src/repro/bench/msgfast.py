"""E-MSGFAST: cost of the secure-messaging fast paths.

Measures the tentpole optimizations against the paper-faithful stateless
baseline (both fast paths off — exactly what ``ERA_2009_POLICY`` ships):

* **group-size sweep** — ``secure_msg_peer_group`` to N members.  The
  baseline pays N signs + N wraps per message (and N unwraps + N
  verifies across the receivers); with ``enable_seal_many`` the payload
  is signed once and sealed once under a shared CEK (1 sign + N wraps),
  and with ``enable_resumption`` every message after the first rides
  pair-wise sessions with **zero RSA operations**.
* **message-rate sweep** — a two-peer conversation at increasing message
  counts, showing per-message cost amortizing to the symmetric-only
  steady state.
* **wire sweep** — transport-level bytes-on-wire and frames-per-wire-unit
  under the link-layer send scheduler (:mod:`repro.net.linkq`): burst vs
  trickle load across legacy framing, adaptive batching, and batching
  with negotiated zlib compression.  Everything here is measured on the
  virtual-time simulator, so the numbers are deterministic and the
  ``--gate`` regression check (see below) compares them across machines
  without noise tolerance games.

RSA operation counts are read from the observability registry
(``crypto.rsa.private_op`` / ``public_op`` / ``verify_op``) under a
swapped-in fresh registry, so the numbers cover exactly the measured
sends — world setup, joins and advertisement exchange are excluded.

``python -m repro.bench --experiment msgfast`` prints the report, writes
``BENCH_MSGFAST.json`` and exits nonzero if any acceptance check fails
(CI runs the ``--quick`` variant and relies on that exit code).
``python -m repro.bench.msgfast --gate FRESH [BASELINE]`` compares a
fresh document against the committed
``benchmarks/baselines/BENCH_MSGFAST.json`` on the deterministic wire
quantities and fails CI on a >20% regression.
"""

from __future__ import annotations

import argparse
import json
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.bench.paths import bench_out_path
from repro.bench import fixtures
from repro.bench.timing import timed_call
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope, signing
from repro.net import linkq
from repro.net.sim import SimTransport
from repro.sim.network import SimNetwork

#: group sizes of the fan-out sweep (recipients per message)
GROUP_SIZES = (1, 2, 4, 8, 16, 32, 64)
GROUP_SIZES_QUICK = (1, 4, 16)

#: message counts of the two-peer rate sweep
RATE_COUNTS = (1, 2, 4, 8, 16, 32)
RATE_COUNTS_QUICK = (1, 4, 8)

#: the group size the acceptance checks are evaluated at
CHECK_GROUP_SIZE = 16

#: messages per wire-sweep cell (same in quick mode: virtual time is free)
WIRE_MESSAGES = 64
WIRE_MODES = ("legacy", "batched", "batched+zlib")
WIRE_LOADS = ("burst", "trickle")

#: --gate inputs: committed baseline and tolerance on the wire quantities
WIRE_BASELINE_PATH = "benchmarks/baselines/BENCH_MSGFAST.json"
WIRE_TOLERANCE = 0.20

#: RSA-op counters snapshotted around every measured send loop
_RSA_COUNTERS = ("crypto.rsa.private_op", "crypto.rsa.public_op",
                 "crypto.rsa.verify_op")


def bench_policy(fast: bool) -> SecurityPolicy:
    """Small keys + v1.5 wrap: RSA *counts* are what the experiment
    compares, and they are independent of the modulus size."""
    return SecurityPolicy(
        rsa_bits=512,
        envelope_wrap=envelope.WRAP_V15,
        signature_scheme=signing.SCHEME_V15,
        enable_seal_many=fast,
        enable_resumption=fast,
    ).validate()


@dataclass
class SweepCell:
    """One (size-or-count, fast on/off) cell of a sweep."""

    fast: bool
    group_size: int
    messages: int
    delivered: int
    rsa_private_ops: int
    rsa_public_ops: int
    rsa_verify_ops: int
    resumed_frames: int
    mean_ms_per_msg: float

    @property
    def rsa_ops(self) -> int:
        return self.rsa_private_ops + self.rsa_public_ops


def _swap_registry() -> tuple[obs.Registry, tuple]:
    registry = obs.Registry(enabled=True)
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    obs.set_registry(registry)
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    return registry, saved


def _restore_registry(saved: tuple) -> None:
    obs.set_registry(saved[0])
    obs.set_tracer(saved[1])
    obs.set_events(saved[2])


def _measure(net, registry: obs.Registry, send, messages: int) -> dict:
    """Run ``messages`` sends, returning counter deltas + mean cost."""
    before = {name: registry.count(name) for name in _RSA_COUNTERS}
    resumed_before = registry.count("crypto.resume.seal")
    total_s = 0.0
    delivered = 0
    for _ in range(messages):
        result = {}

        def one_send():
            result["n"] = send()

        timing = timed_call(net, one_send)
        total_s += timing.total_s
        delivered += int(result["n"])
    return {
        "delivered": delivered,
        "rsa_private_ops": registry.count("crypto.rsa.private_op")
        - before["crypto.rsa.private_op"],
        "rsa_public_ops": registry.count("crypto.rsa.public_op")
        - before["crypto.rsa.public_op"],
        "rsa_verify_ops": registry.count("crypto.rsa.verify_op")
        - before["crypto.rsa.verify_op"],
        "resumed_frames": registry.count("crypto.resume.seal") - resumed_before,
        "mean_ms_per_msg": total_s / messages * 1e3 if messages else 0.0,
    }


def group_sweep(sizes=GROUP_SIZES, messages: int = 3) -> list[SweepCell]:
    """``secure_msg_peer_group`` across group sizes, fast on vs off."""
    cells: list[SweepCell] = []
    for fast in (False, True):
        policy = bench_policy(fast)
        for size in sizes:
            registry, saved = _swap_registry()
            try:
                net, _admin, _broker, clients = fixtures.build_secure_world(
                    n_clients=size + 1, policy=policy,
                    seed=b"e-msgfast-group", joined=True)
                sender = clients[0]
                stats = _measure(
                    net, registry,
                    lambda: sender.secure_msg_peer_group(
                        "bench", "fast-path probe"),
                    messages)
            finally:
                _restore_registry(saved)
            cells.append(SweepCell(fast=fast, group_size=size,
                                   messages=messages, **stats))
    return cells


def rate_sweep(counts=RATE_COUNTS) -> list[SweepCell]:
    """Two-peer conversation at increasing message counts."""
    cells: list[SweepCell] = []
    for fast in (False, True):
        policy = bench_policy(fast)
        for count in counts:
            registry, saved = _swap_registry()
            try:
                net, _admin, _broker, clients = fixtures.build_secure_world(
                    n_clients=2, policy=policy,
                    seed=b"e-msgfast-rate", joined=True)
                sender, receiver = clients
                stats = _measure(
                    net, registry,
                    lambda: sender.secure_msg_peer(
                        str(receiver.peer_id), "bench", "rate probe"),
                    count)
            finally:
                _restore_registry(saved)
            cells.append(SweepCell(fast=fast, group_size=1,
                                   messages=count, **stats))
    return cells


def steady_state_probe(messages: int = 8) -> dict:
    """RSA ops per message once a pair-wise session is established.

    The acceptance criterion: after the first (establishing) envelope,
    every resumed send costs **zero** RSA operations end to end.
    """
    registry, saved = _swap_registry()
    try:
        net, _admin, _broker, clients = fixtures.build_secure_world(
            n_clients=2, policy=bench_policy(True),
            seed=b"e-msgfast-steady", joined=True)
        sender, receiver = clients
        # Establish: first send mints the session (1 sign + 1 wrap + ...).
        sender.secure_msg_peer(str(receiver.peer_id), "bench", "establish")
        before = {name: registry.count(name) for name in _RSA_COUNTERS}
        delivered = sum(
            1 for _ in range(messages)
            if sender.secure_msg_peer(str(receiver.peer_id), "bench", "steady"))
        deltas = {name: registry.count(name) - before[name]
                  for name in _RSA_COUNTERS}
    finally:
        _restore_registry(saved)
    return {
        "resumed_messages": messages,
        "delivered": delivered,
        "rsa_private_ops": deltas["crypto.rsa.private_op"],
        "rsa_public_ops": deltas["crypto.rsa.public_op"],
        "rsa_verify_ops": deltas["crypto.rsa.verify_op"],
    }


@dataclass
class WireCell:
    """One (mode, load) cell of the wire sweep."""

    mode: str            # "legacy" | "batched" | "batched+zlib"
    load: str            # "burst" | "trickle"
    messages: int
    delivered: int
    intact: bool         # payload sequence survived byte-for-byte, in order
    wire_units: int      # simulated deliveries (frames the link model saw)
    bytes_on_wire: int
    frames_per_unit: float
    bytes_per_msg: float
    virtual_ms: float
    msgs_per_sec: float  # virtual-time rate; deterministic across machines


def _wire_payloads(messages: int) -> list[bytes]:
    """Distinct, compressible payloads shaped like small overlay frames."""
    filler = b" payload-filler" * 8
    return [b"wire-sweep message %04d%s" % (i, filler)
            for i in range(messages)]


def _wire_cell(mode: str, load: str,
               messages: int = WIRE_MESSAGES) -> WireCell:
    """Drive one cell through a fresh simulator and read the wire stats."""
    net = SimNetwork()
    received: list[bytes] = []
    rx = SimTransport(net)
    rx.register("rx", lambda frame: received.append(frame.payload) or None)
    tx = SimTransport(net)
    policy = linkq.LinkPolicy()
    tx.configure_links(policy)
    if mode == "batched+zlib":
        tx.set_link_compression("tx", "rx", 6)
    payloads = _wire_payloads(messages)
    units0 = net.stats.frames_sent
    bytes0 = net.stats.bytes_sent
    t0 = net.clock.now
    # "legacy" exercises the off-switch: scheduler installed, batching
    # flag down — the wire must look exactly like the pre-scheduler code.
    ctx = (linkq.flags(frame_batching=False) if mode == "legacy"
           else nullcontext())
    with ctx:
        if load == "burst":
            with tx.corked():
                for payload in payloads:
                    tx.send("tx", "rx", payload)
        else:
            for payload in payloads:
                tx.send("tx", "rx", payload)
                net.clock.advance(policy.idle_flush_s * 2)
    wire_units = net.stats.frames_sent - units0
    bytes_on_wire = net.stats.bytes_sent - bytes0
    virtual_s = net.clock.now - t0
    return WireCell(
        mode=mode, load=load, messages=messages,
        delivered=len(received), intact=received == payloads,
        wire_units=wire_units, bytes_on_wire=bytes_on_wire,
        frames_per_unit=messages / wire_units if wire_units else 0.0,
        bytes_per_msg=bytes_on_wire / messages if messages else 0.0,
        virtual_ms=virtual_s * 1e3,
        msgs_per_sec=messages / virtual_s if virtual_s > 0 else 0.0)


def wire_sweep(messages: int = WIRE_MESSAGES) -> list[WireCell]:
    """Bytes-on-wire and frames-per-wire-unit, every (mode, load) pair."""
    cells: list[WireCell] = []
    for mode in WIRE_MODES:
        for load in WIRE_LOADS:
            _registry, saved = _swap_registry()
            try:
                cells.append(_wire_cell(mode, load, messages=messages))
            finally:
                _restore_registry(saved)
    return cells


def _wire_checks(cells: list[WireCell]) -> dict:
    """Acceptance gates over the wire sweep (merged into ``checks``)."""
    by_key = {(c.mode, c.load): c for c in cells}
    legacy = by_key[("legacy", "burst")]
    batched = by_key[("batched", "burst")]
    zlib_cell = by_key[("batched+zlib", "burst")]
    reduction = (legacy.wire_units / batched.wire_units
                 if batched.wire_units else float("inf"))
    legacy_trickle = by_key[("legacy", "trickle")]
    batched_trickle = by_key[("batched", "trickle")]
    return {
        "wire_burst_frames_per_unit": batched.frames_per_unit,
        "wire_burst_batching_at_least_4": batched.frames_per_unit >= 4.0,
        "wire_unit_reduction": reduction,
        "wire_unit_reduction_at_least_2x": reduction >= 2.0,
        "wire_compression_shrinks_bytes":
            zlib_cell.bytes_on_wire < batched.bytes_on_wire,
        # Single-frame flushes reuse the legacy framing byte-for-byte, so
        # trickle traffic is identical whether the scheduler is on or off.
        "wire_trickle_byte_identical":
            batched_trickle.bytes_on_wire == legacy_trickle.bytes_on_wire
            and batched_trickle.wire_units == legacy_trickle.wire_units,
        "wire_all_delivered": all(
            c.intact and c.delivered == c.messages for c in cells),
    }


def _checks(group_cells: list[SweepCell], steady: dict,
            check_size: int = CHECK_GROUP_SIZE) -> dict:
    """The acceptance gates (CI fails the build on any False)."""
    by_key = {(c.fast, c.group_size): c for c in group_cells}
    base = by_key.get((False, check_size))
    fast = by_key.get((True, check_size))
    if base is None or fast is None:
        raise ValueError(f"sweep lacks group size {check_size}")
    reduction = (base.rsa_ops / fast.rsa_ops) if fast.rsa_ops else float("inf")
    steady_rsa = (steady["rsa_private_ops"] + steady["rsa_public_ops"]
                  + steady["rsa_verify_ops"])
    checks = {
        "fast_cheaper_private_at_%d" % check_size:
            fast.rsa_private_ops < base.rsa_private_ops,
        "fast_cheaper_public_at_%d" % check_size:
            fast.rsa_public_ops < base.rsa_public_ops,
        "rsa_reduction_at_%d" % check_size: reduction,
        "rsa_reduction_at_least_3x": reduction >= 3.0,
        "steady_state_rsa_ops": steady_rsa,
        "steady_state_zero_rsa": steady_rsa == 0,
        "all_delivered": all(
            c.delivered == c.messages * c.group_size for c in group_cells),
    }
    checks["all_passed"] = all(
        value for value in checks.values() if isinstance(value, bool))
    return checks


def msgfast_report(quick: bool = False) -> dict:
    """The complete E-MSGFAST document."""
    sizes = GROUP_SIZES_QUICK if quick else GROUP_SIZES
    counts = RATE_COUNTS_QUICK if quick else RATE_COUNTS
    # 3 messages per cell: one establishing + two resumed sends is the
    # smallest run where the amortized RSA saving is visible.
    messages = 3
    group_cells = group_sweep(sizes=sizes, messages=messages)
    rate_cells = rate_sweep(counts=counts)
    steady = steady_state_probe(messages=4 if quick else 8)
    # The wire sweep runs at full size even in quick mode: it is pure
    # virtual time, so 64 messages cost milliseconds — and the gate
    # needs identical parameters in CI and baseline runs.
    wire_cells = wire_sweep()
    checks = _checks(group_cells, steady)
    checks.update(_wire_checks(wire_cells))
    checks["all_passed"] = all(
        value for value in checks.values() if isinstance(value, bool))
    return {
        "experiment": "E-MSGFAST",
        "quick": quick,
        "rsa_bits": bench_policy(True).rsa_bits,
        "messages_per_group_cell": messages,
        "group_sweep": [asdict(c) for c in group_cells],
        "rate_sweep": [asdict(c) for c in rate_cells],
        "wire_sweep": [asdict(c) for c in wire_cells],
        "steady_state": steady,
        "checks": checks,
    }


def format_msgfast(data: dict) -> str:
    lines = [
        "E-MSGFAST: secureMsgPeerGroup, fast paths on vs off "
        f"({data['messages_per_group_cell']} msgs/cell, "
        f"rsa-{data['rsa_bits']})",
        f"  {'N':>4}  {'mode':>8}  {'RSA priv':>9}  {'RSA pub':>8}  "
        f"{'RSA vrfy':>9}  {'resumed':>8}  {'ms/msg':>8}",
    ]
    for cell in data["group_sweep"]:
        lines.append(
            f"  {cell['group_size']:>4}  "
            f"{'fast' if cell['fast'] else 'baseline':>8}  "
            f"{cell['rsa_private_ops']:>9}  {cell['rsa_public_ops']:>8}  "
            f"{cell['rsa_verify_ops']:>9}  {cell['resumed_frames']:>8}  "
            f"{cell['mean_ms_per_msg']:>8.2f}")
    lines += [
        "",
        "E-MSGFAST: two-peer rate sweep (RSA ops for the whole run)",
        f"  {'msgs':>5}  {'mode':>8}  {'RSA priv':>9}  {'RSA pub':>8}  "
        f"{'resumed':>8}  {'ms/msg':>8}",
    ]
    for cell in data["rate_sweep"]:
        lines.append(
            f"  {cell['messages']:>5}  "
            f"{'fast' if cell['fast'] else 'baseline':>8}  "
            f"{cell['rsa_private_ops']:>9}  {cell['rsa_public_ops']:>8}  "
            f"{cell['resumed_frames']:>8}  {cell['mean_ms_per_msg']:>8.2f}")
    lines += [
        "",
        f"E-MSGFAST: wire sweep ({WIRE_MESSAGES} msgs/cell, link scheduler)",
        f"  {'mode':>12}  {'load':>8}  {'units':>6}  {'frames/u':>9}  "
        f"{'bytes':>8}  {'B/msg':>8}",
    ]
    for cell in data.get("wire_sweep", ()):
        lines.append(
            f"  {cell['mode']:>12}  {cell['load']:>8}  "
            f"{cell['wire_units']:>6}  {cell['frames_per_unit']:>9.1f}  "
            f"{cell['bytes_on_wire']:>8}  {cell['bytes_per_msg']:>8.1f}")
    steady = data["steady_state"]
    checks = data["checks"]
    lines += [
        "",
        f"  steady state: {steady['resumed_messages']} resumed sends -> "
        f"{steady['rsa_private_ops']} private / {steady['rsa_public_ops']} "
        f"public / {steady['rsa_verify_ops']} verify RSA ops",
        "",
        "E-MSGFAST acceptance checks:",
    ]
    for key, value in sorted(checks.items()):
        if key == "all_passed":
            continue
        shown = f"{value:.2f}x" if isinstance(value, float) else value
        lines.append(f"  {key:<34} : {shown}")
    lines.append(f"  {'all_passed':<34} : {checks['all_passed']}")
    return "\n".join(lines)


def write_bench_msgfast(data: dict,
                        path: str | Path | None = None) -> Path:
    """Persist the E-MSGFAST document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_MSGFAST.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# -- CI regression gate ----------------------------------------------------


def check_wire_regression(fresh: dict, baseline: dict,
                          tolerance: float = WIRE_TOLERANCE) -> list[str]:
    """Problems (empty = pass) comparing fresh wire numbers to baseline.

    Only virtual-time quantities are gated — bytes per message, frames
    per wire unit and the deterministic msgs/sec — so the comparison is
    machine-independent.  Wall-clock numbers elsewhere in the document
    stay informational.
    """
    problems: list[str] = []
    fresh_cells = {(c["mode"], c["load"]): c
                   for c in fresh.get("wire_sweep", ())}
    base_cells = {(c["mode"], c["load"]): c
                  for c in baseline.get("wire_sweep", ())}
    if not base_cells:
        return ["baseline document has no wire_sweep section"]
    for key, base in sorted(base_cells.items()):
        cell = fresh_cells.get(key)
        label = "/".join(key)
        if cell is None:
            problems.append(f"{label}: missing from fresh run")
            continue
        byte_ceiling = base["bytes_per_msg"] * (1.0 + tolerance)
        if cell["bytes_per_msg"] > byte_ceiling:
            problems.append(
                f"{label}: bytes/msg regressed "
                f"{cell['bytes_per_msg']:.1f} > {byte_ceiling:.1f} "
                f"(baseline {base['bytes_per_msg']:.1f})")
        unit_floor = base["frames_per_unit"] * (1.0 - tolerance)
        if cell["frames_per_unit"] < unit_floor:
            problems.append(
                f"{label}: frames/wire-unit regressed "
                f"{cell['frames_per_unit']:.2f} < {unit_floor:.2f} "
                f"(baseline {base['frames_per_unit']:.2f})")
        rate_floor = base["msgs_per_sec"] * (1.0 - tolerance)
        if cell["msgs_per_sec"] < rate_floor:
            problems.append(
                f"{label}: virtual msgs/sec regressed "
                f"{cell['msgs_per_sec']:.1f} < {rate_floor:.1f} "
                f"(baseline {base['msgs_per_sec']:.1f})")
    if not fresh["checks"]["all_passed"]:
        failed = [k for k, v in fresh["checks"].items()
                  if isinstance(v, bool) and not v]
        problems.append(f"fresh run failed its own checks: {failed}")
    return problems


def gate(fresh_path: str, baseline_path: str = WIRE_BASELINE_PATH,
         tolerance: float = WIRE_TOLERANCE) -> int:
    try:
        fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"msgfast gate: cannot load inputs: {exc}")
        return 2
    problems = check_wire_regression(fresh, baseline, tolerance)
    fresh_cells = {(c["mode"], c["load"]): c
                   for c in fresh.get("wire_sweep", ())}
    burst = fresh_cells.get(("batched", "burst"))
    if burst is not None:
        print(f"msgfast gate: burst batching "
              f"{burst['frames_per_unit']:.1f} frames/wire-unit, "
              f"{burst['bytes_per_msg']:.1f} bytes/msg")
    for problem in problems:
        print(f"msgfast gate: FAIL: {problem}")
    if not problems:
        print("msgfast gate: pass")
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.msgfast",
        description="E-MSGFAST wire-throughput regression gate")
    parser.add_argument("--gate", nargs="+", metavar="JSON", required=True,
                        help="compare FRESH [BASELINE] msgfast documents; "
                             f"baseline defaults to {WIRE_BASELINE_PATH}")
    args = parser.parse_args(argv)
    baseline = args.gate[1] if len(args.gate) > 1 else WIRE_BASELINE_PATH
    return gate(args.gate[0], baseline)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
