"""E-MSGFAST: cost of the secure-messaging fast paths.

Measures the tentpole optimizations against the paper-faithful stateless
baseline (both fast paths off — exactly what ``ERA_2009_POLICY`` ships):

* **group-size sweep** — ``secure_msg_peer_group`` to N members.  The
  baseline pays N signs + N wraps per message (and N unwraps + N
  verifies across the receivers); with ``enable_seal_many`` the payload
  is signed once and sealed once under a shared CEK (1 sign + N wraps),
  and with ``enable_resumption`` every message after the first rides
  pair-wise sessions with **zero RSA operations**.
* **message-rate sweep** — a two-peer conversation at increasing message
  counts, showing per-message cost amortizing to the symmetric-only
  steady state.

RSA operation counts are read from the observability registry
(``crypto.rsa.private_op`` / ``public_op`` / ``verify_op``) under a
swapped-in fresh registry, so the numbers cover exactly the measured
sends — world setup, joins and advertisement exchange are excluded.

``python -m repro.bench --experiment msgfast`` prints the report, writes
``BENCH_MSGFAST.json`` and exits nonzero if any acceptance check fails
(CI runs the ``--quick`` variant and relies on that exit code).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.bench import fixtures
from repro.bench.timing import timed_call
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope, signing

#: group sizes of the fan-out sweep (recipients per message)
GROUP_SIZES = (1, 2, 4, 8, 16, 32, 64)
GROUP_SIZES_QUICK = (1, 4, 16)

#: message counts of the two-peer rate sweep
RATE_COUNTS = (1, 2, 4, 8, 16, 32)
RATE_COUNTS_QUICK = (1, 4, 8)

#: the group size the acceptance checks are evaluated at
CHECK_GROUP_SIZE = 16

#: RSA-op counters snapshotted around every measured send loop
_RSA_COUNTERS = ("crypto.rsa.private_op", "crypto.rsa.public_op",
                 "crypto.rsa.verify_op")


def bench_policy(fast: bool) -> SecurityPolicy:
    """Small keys + v1.5 wrap: RSA *counts* are what the experiment
    compares, and they are independent of the modulus size."""
    return SecurityPolicy(
        rsa_bits=512,
        envelope_wrap=envelope.WRAP_V15,
        signature_scheme=signing.SCHEME_V15,
        enable_seal_many=fast,
        enable_resumption=fast,
    ).validate()


@dataclass
class SweepCell:
    """One (size-or-count, fast on/off) cell of a sweep."""

    fast: bool
    group_size: int
    messages: int
    delivered: int
    rsa_private_ops: int
    rsa_public_ops: int
    rsa_verify_ops: int
    resumed_frames: int
    mean_ms_per_msg: float

    @property
    def rsa_ops(self) -> int:
        return self.rsa_private_ops + self.rsa_public_ops


def _swap_registry() -> tuple[obs.Registry, tuple]:
    registry = obs.Registry(enabled=True)
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    obs.set_registry(registry)
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    return registry, saved


def _restore_registry(saved: tuple) -> None:
    obs.set_registry(saved[0])
    obs.set_tracer(saved[1])
    obs.set_events(saved[2])


def _measure(net, registry: obs.Registry, send, messages: int) -> dict:
    """Run ``messages`` sends, returning counter deltas + mean cost."""
    before = {name: registry.count(name) for name in _RSA_COUNTERS}
    resumed_before = registry.count("crypto.resume.seal")
    total_s = 0.0
    delivered = 0
    for _ in range(messages):
        result = {}

        def one_send():
            result["n"] = send()

        timing = timed_call(net, one_send)
        total_s += timing.total_s
        delivered += int(result["n"])
    return {
        "delivered": delivered,
        "rsa_private_ops": registry.count("crypto.rsa.private_op")
        - before["crypto.rsa.private_op"],
        "rsa_public_ops": registry.count("crypto.rsa.public_op")
        - before["crypto.rsa.public_op"],
        "rsa_verify_ops": registry.count("crypto.rsa.verify_op")
        - before["crypto.rsa.verify_op"],
        "resumed_frames": registry.count("crypto.resume.seal") - resumed_before,
        "mean_ms_per_msg": total_s / messages * 1e3 if messages else 0.0,
    }


def group_sweep(sizes=GROUP_SIZES, messages: int = 3) -> list[SweepCell]:
    """``secure_msg_peer_group`` across group sizes, fast on vs off."""
    cells: list[SweepCell] = []
    for fast in (False, True):
        policy = bench_policy(fast)
        for size in sizes:
            registry, saved = _swap_registry()
            try:
                net, _admin, _broker, clients = fixtures.build_secure_world(
                    n_clients=size + 1, policy=policy,
                    seed=b"e-msgfast-group", joined=True)
                sender = clients[0]
                stats = _measure(
                    net, registry,
                    lambda: sender.secure_msg_peer_group(
                        "bench", "fast-path probe"),
                    messages)
            finally:
                _restore_registry(saved)
            cells.append(SweepCell(fast=fast, group_size=size,
                                   messages=messages, **stats))
    return cells


def rate_sweep(counts=RATE_COUNTS) -> list[SweepCell]:
    """Two-peer conversation at increasing message counts."""
    cells: list[SweepCell] = []
    for fast in (False, True):
        policy = bench_policy(fast)
        for count in counts:
            registry, saved = _swap_registry()
            try:
                net, _admin, _broker, clients = fixtures.build_secure_world(
                    n_clients=2, policy=policy,
                    seed=b"e-msgfast-rate", joined=True)
                sender, receiver = clients
                stats = _measure(
                    net, registry,
                    lambda: sender.secure_msg_peer(
                        str(receiver.peer_id), "bench", "rate probe"),
                    count)
            finally:
                _restore_registry(saved)
            cells.append(SweepCell(fast=fast, group_size=1,
                                   messages=count, **stats))
    return cells


def steady_state_probe(messages: int = 8) -> dict:
    """RSA ops per message once a pair-wise session is established.

    The acceptance criterion: after the first (establishing) envelope,
    every resumed send costs **zero** RSA operations end to end.
    """
    registry, saved = _swap_registry()
    try:
        net, _admin, _broker, clients = fixtures.build_secure_world(
            n_clients=2, policy=bench_policy(True),
            seed=b"e-msgfast-steady", joined=True)
        sender, receiver = clients
        # Establish: first send mints the session (1 sign + 1 wrap + ...).
        sender.secure_msg_peer(str(receiver.peer_id), "bench", "establish")
        before = {name: registry.count(name) for name in _RSA_COUNTERS}
        delivered = sum(
            1 for _ in range(messages)
            if sender.secure_msg_peer(str(receiver.peer_id), "bench", "steady"))
        deltas = {name: registry.count(name) - before[name]
                  for name in _RSA_COUNTERS}
    finally:
        _restore_registry(saved)
    return {
        "resumed_messages": messages,
        "delivered": delivered,
        "rsa_private_ops": deltas["crypto.rsa.private_op"],
        "rsa_public_ops": deltas["crypto.rsa.public_op"],
        "rsa_verify_ops": deltas["crypto.rsa.verify_op"],
    }


def _checks(group_cells: list[SweepCell], steady: dict,
            check_size: int = CHECK_GROUP_SIZE) -> dict:
    """The acceptance gates (CI fails the build on any False)."""
    by_key = {(c.fast, c.group_size): c for c in group_cells}
    base = by_key.get((False, check_size))
    fast = by_key.get((True, check_size))
    if base is None or fast is None:
        raise ValueError(f"sweep lacks group size {check_size}")
    reduction = (base.rsa_ops / fast.rsa_ops) if fast.rsa_ops else float("inf")
    steady_rsa = (steady["rsa_private_ops"] + steady["rsa_public_ops"]
                  + steady["rsa_verify_ops"])
    checks = {
        "fast_cheaper_private_at_%d" % check_size:
            fast.rsa_private_ops < base.rsa_private_ops,
        "fast_cheaper_public_at_%d" % check_size:
            fast.rsa_public_ops < base.rsa_public_ops,
        "rsa_reduction_at_%d" % check_size: reduction,
        "rsa_reduction_at_least_3x": reduction >= 3.0,
        "steady_state_rsa_ops": steady_rsa,
        "steady_state_zero_rsa": steady_rsa == 0,
        "all_delivered": all(
            c.delivered == c.messages * c.group_size for c in group_cells),
    }
    checks["all_passed"] = all(
        value for value in checks.values() if isinstance(value, bool))
    return checks


def msgfast_report(quick: bool = False) -> dict:
    """The complete E-MSGFAST document."""
    sizes = GROUP_SIZES_QUICK if quick else GROUP_SIZES
    counts = RATE_COUNTS_QUICK if quick else RATE_COUNTS
    # 3 messages per cell: one establishing + two resumed sends is the
    # smallest run where the amortized RSA saving is visible.
    messages = 3
    group_cells = group_sweep(sizes=sizes, messages=messages)
    rate_cells = rate_sweep(counts=counts)
    steady = steady_state_probe(messages=4 if quick else 8)
    return {
        "experiment": "E-MSGFAST",
        "quick": quick,
        "rsa_bits": bench_policy(True).rsa_bits,
        "messages_per_group_cell": messages,
        "group_sweep": [asdict(c) for c in group_cells],
        "rate_sweep": [asdict(c) for c in rate_cells],
        "steady_state": steady,
        "checks": _checks(group_cells, steady),
    }


def format_msgfast(data: dict) -> str:
    lines = [
        "E-MSGFAST: secureMsgPeerGroup, fast paths on vs off "
        f"({data['messages_per_group_cell']} msgs/cell, "
        f"rsa-{data['rsa_bits']})",
        f"  {'N':>4}  {'mode':>8}  {'RSA priv':>9}  {'RSA pub':>8}  "
        f"{'RSA vrfy':>9}  {'resumed':>8}  {'ms/msg':>8}",
    ]
    for cell in data["group_sweep"]:
        lines.append(
            f"  {cell['group_size']:>4}  "
            f"{'fast' if cell['fast'] else 'baseline':>8}  "
            f"{cell['rsa_private_ops']:>9}  {cell['rsa_public_ops']:>8}  "
            f"{cell['rsa_verify_ops']:>9}  {cell['resumed_frames']:>8}  "
            f"{cell['mean_ms_per_msg']:>8.2f}")
    lines += [
        "",
        "E-MSGFAST: two-peer rate sweep (RSA ops for the whole run)",
        f"  {'msgs':>5}  {'mode':>8}  {'RSA priv':>9}  {'RSA pub':>8}  "
        f"{'resumed':>8}  {'ms/msg':>8}",
    ]
    for cell in data["rate_sweep"]:
        lines.append(
            f"  {cell['messages']:>5}  "
            f"{'fast' if cell['fast'] else 'baseline':>8}  "
            f"{cell['rsa_private_ops']:>9}  {cell['rsa_public_ops']:>8}  "
            f"{cell['resumed_frames']:>8}  {cell['mean_ms_per_msg']:>8.2f}")
    steady = data["steady_state"]
    checks = data["checks"]
    lines += [
        "",
        f"  steady state: {steady['resumed_messages']} resumed sends -> "
        f"{steady['rsa_private_ops']} private / {steady['rsa_public_ops']} "
        f"public / {steady['rsa_verify_ops']} verify RSA ops",
        "",
        "E-MSGFAST acceptance checks:",
    ]
    for key, value in sorted(checks.items()):
        if key == "all_passed":
            continue
        shown = f"{value:.2f}x" if isinstance(value, float) else value
        lines.append(f"  {key:<34} : {shown}")
    lines.append(f"  {'all_passed':<34} : {checks['all_passed']}")
    return "\n".join(lines)


def write_bench_msgfast(data: dict,
                        path: str | Path = "BENCH_MSGFAST.json") -> Path:
    """Persist the E-MSGFAST document as machine-readable JSON."""
    out = Path(path)
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out
