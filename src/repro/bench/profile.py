"""E-HOTPATH: profile the steady-state message path, gate the speedup.

Five PRs stacked per-message layers onto the secure-messaging path —
codec, wire boundary, observability, federation routing, seal/resume
crypto.  This experiment decomposes that path into **stage timings**
(each optimization measured against the legacy implementation it
replaced, toggled live through :mod:`repro.perf`), measures the
**end-to-end steady state** (resumed secure sends per second, all
optimizations off vs on, in the same process) and prices the **layer
ladder** (plain → +wire → +obs → +secure → +resumed).

``python -m repro.bench --experiment hotpath`` prints the report, writes
``BENCH_HOTPATH.json`` and exits nonzero if an acceptance check fails.
Two extra CLI verbs back the CI gates (see ``python -m
repro.bench.profile --help``):

* ``--gate FRESH [BASELINE]`` — regression gate.  Compares a fresh
  ``BENCH_HOTPATH.json`` against the committed baseline and fails when
  the **normalized throughput** (optimized/legacy speedup, which is
  machine-independent — absolute msgs/sec is not) drops by more than
  :data:`REGRESSION_TOLERANCE`.
* ``--check-docs [DOC]`` — drift gate.  The layer-cost table embedded
  in ``docs/PERFORMANCE.md`` must match the one rendered from the
  committed baseline JSON byte-for-byte (same pattern as
  ``python -m repro.wire --check-docs``).

``--cprofile [N]`` runs N optimized steady-state sends under
:mod:`cProfile` and prints the hottest functions, which is how the
optimization targets in this module were found in the first place.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs, perf
from repro.bench import fixtures
from repro.bench.paths import bench_out_path
from repro.crypto import chacha20, envelope, resume
from repro.crypto.drbg import HmacDrbg
from repro.jxta.messages import Message
from repro.overlay.federation import HashRing
from repro.wire import catalogue

#: acceptance floor on the end-to-end steady-state speedup (off → on)
HOTPATH_SPEEDUP_TARGET = 2.0

#: --gate tolerance: fail when normalized throughput drops this much
REGRESSION_TOLERANCE = 0.20

#: where CI keeps the committed reference run
BASELINE_PATH = "benchmarks/baselines/BENCH_HOTPATH.json"

#: the document carrying the generated layer-cost table
PERFORMANCE_DOC = "docs/PERFORMANCE.md"

BEGIN_MARK = "<!-- BEGIN GENERATED LAYER COST TABLE -->"
END_MARK = "<!-- END GENERATED LAYER COST TABLE -->"

#: payload used by every stage and end-to-end probe (a chat-sized frame)
_PAYLOAD_TEXT = "hot-path probe " * 4


# -- micro timing ----------------------------------------------------------


def _us_per_op(fn, repeats: int, warmup: int = 3) -> float:
    """Mean microseconds per call of ``fn`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats * 1e6


def _stage(name: str, flag: str, legacy_fn, optimized_fn,
           repeats: int) -> dict:
    """One stage cell: legacy vs optimized implementation, µs/op each.

    ``flag`` names the :mod:`repro.perf` switch the optimized variant
    rides on (purely informational in the report).
    """
    legacy_us = _us_per_op(legacy_fn, repeats)
    optimized_us = _us_per_op(optimized_fn, repeats)
    return {
        "stage": name,
        "flag": flag,
        "legacy_us": round(legacy_us, 3),
        "optimized_us": round(optimized_us, 3),
        "speedup": round(legacy_us / optimized_us, 3)
        if optimized_us else float("inf"),
    }


def _chat_message() -> Message:
    chat = Message("chat")
    chat.add_text("from_peer", "urn:jxta:peer-bench")
    chat.add_text("from_user", "bench")
    chat.add_text("group", "bench")
    chat.add_text("text", _PAYLOAD_TEXT)
    return chat


def stage_report(repeats: int = 2000) -> list[dict]:
    """Per-stage breakdown of the message path, legacy vs optimized.

    Every row toggles exactly one :mod:`repro.perf` switch (or calls the
    kept reference implementation directly), so the deltas compose into
    the end-to-end speedup the steady-state probe measures.
    """
    stages: list[dict] = []

    # codec: serialize cost on the resend/relay path (to_wire memoized)
    chat = _chat_message()
    wire_bytes = chat.to_wire()

    def encode_legacy():
        with perf.flags(wire_cache=False):
            msg = _chat_message()
            msg.to_wire()
            msg.to_wire()  # the relay/retry re-serialization

    def encode_optimized():
        msg = _chat_message()
        msg.to_wire()
        msg.to_wire()  # free: cached buffer

    stages.append(_stage("codec encode x2 (send + relay)", "wire_cache",
                         encode_legacy, encode_optimized, repeats // 4))

    # codec: parse + re-serialize, the broker's store-and-forward shape
    def reencode_legacy():
        with perf.flags(wire_cache=False):
            Message.from_wire(wire_bytes).to_wire()

    def reencode_optimized():
        Message.from_wire(wire_bytes).to_wire()

    stages.append(_stage("codec decode + re-encode (forward)", "wire_cache",
                         reencode_legacy, reencode_optimized, repeats // 4))

    # wire boundary: interpretive FrameSpec.decode vs the compiled closure
    spec = catalogue.get("chat")
    sample = spec.sample_message()
    compiled = spec.compiled()
    stages.append(_stage("wire boundary decode", "compiled_decoders",
                         lambda: spec.decode(sample),
                         lambda: compiled(sample), repeats))

    # federation: consistent-hash owner lookup, memoized vs reference
    ring = HashRing()
    for i in range(5):
        ring.add(f"broker:{i}")
    keys = [f"urn:jxta:peer-{i}" for i in range(64)]
    counter = {"i": 0}

    def ring_legacy():
        counter["i"] += 1
        ring.owner_uncached(keys[counter["i"] % len(keys)])

    def ring_optimized():
        counter["i"] += 1
        ring.owner(keys[counter["i"] % len(keys)])

    stages.append(_stage("ring owner lookup", "ring_memo",
                         ring_legacy, ring_optimized, repeats))

    # obs: counter increment, string-keyed registry vs interned instrument
    registry = obs.Registry(enabled=True)
    saved = obs.get_registry()
    obs.set_registry(registry)
    try:
        interned = obs.InternedCounter("bench.hotpath.incr")
        stages.append(_stage(
            "obs counter increment", "interned_metrics",
            lambda: registry.incr("bench.hotpath.incr"),
            lambda: interned.incr(), repeats * 4))
    finally:
        obs.set_registry(saved)

    # crypto: the ChaCha20 keystream behind every sealed frame (1 KiB)
    key, nonce = b"k" * 32, b"n" * 12

    def chacha_legacy():
        with perf.flags(chacha_vector=False):
            chacha20.keystream(key, 1, nonce, 16, use_numpy=True)

    stages.append(_stage(
        "chacha20 keystream (1 KiB)", "chacha_vector",
        chacha_legacy,
        lambda: chacha20.keystream(key, 1, nonce, 16), repeats // 4))

    # crypto: one resumed frame, seal + open (zero RSA by construction)
    payload = _PAYLOAD_TEXT.encode("utf-8") * 16
    seed = b"s" * envelope.RESUME_SEED_LEN
    tx = resume.derive_session(seed, "chacha20poly1305", 0.0)
    rx = resume.derive_session(seed, "chacha20poly1305", 0.0)

    def resumed_roundtrip():
        env = resume.seal_resumed(tx, payload, aad=b"bench")
        resume.open_resumed(rx, env, aad=b"bench")

    def resumed_legacy():
        with perf.flags(chacha_vector=False):
            resumed_roundtrip()

    stages.append(_stage("resume seal + open (1 KiB)", "chacha_vector",
                         resumed_legacy, resumed_roundtrip, repeats // 8))

    # crypto: the establishing envelope (RSA wrap dominates; the flag
    # only reaches the symmetric body, so this row bounds what any
    # symmetric-side work can save on session establishment)
    keys_rsa = fixtures.cached_keypair(512, "hotpath-env")
    drbg = HmacDrbg(b"hotpath-envelope")

    def envelope_roundtrip():
        env = envelope.seal(keys_rsa.public, payload, drbg=drbg,
                            wrap=envelope.WRAP_V15)
        envelope.open_(keys_rsa.private, env)

    def envelope_legacy():
        with perf.flags(chacha_vector=False):
            envelope_roundtrip()

    stages.append(_stage("envelope seal + open (establish)", "chacha_vector",
                         envelope_legacy, envelope_roundtrip,
                         max(repeats // 50, 10)))
    return stages


# -- end-to-end steady state ----------------------------------------------


def _swap_registry() -> tuple[obs.Registry, tuple]:
    registry = obs.Registry(enabled=True)
    saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
    obs.set_registry(registry)
    obs.set_tracer(obs.Tracer(registry=registry))
    obs.set_events(obs.ProtocolEvents(registry=registry))
    return registry, saved


def _restore_registry(saved: tuple) -> None:
    obs.set_registry(saved[0])
    obs.set_tracer(saved[1])
    obs.set_events(saved[2])


def _measure_sends(send, messages: int) -> dict:
    """Wall-clock a send loop; throughput is real CPU seconds, not
    simulated time (the simulated network adds no wall cost)."""
    delivered = 0
    t0 = time.perf_counter()
    for _ in range(messages):
        if send():
            delivered += 1
    wall_s = time.perf_counter() - t0
    return {
        "messages": messages,
        "delivered": delivered,
        "wall_s": round(wall_s, 6),
        "ms_per_msg": round(wall_s / messages * 1e3, 4) if messages else 0.0,
        "msgs_per_sec": round(messages / wall_s, 2) if wall_s else 0.0,
    }


def _steady_world(seed: bytes):
    """A joined two-client secure world with a minted resume session."""
    from repro.bench.msgfast import bench_policy

    net, _admin, _broker, clients = fixtures.build_secure_world(
        n_clients=2, policy=bench_policy(True), seed=seed, joined=True)
    sender, receiver = clients
    # establish: the first send mints the pair-wise session (RSA here,
    # never again) and warms every cache the flags will consult
    sender.secure_msg_peer(str(receiver.peer_id), "bench", "establish")
    return net, sender, receiver


def steady_state_ab(messages: int = 150) -> dict:
    """The headline A/B: resumed secure sends, all flags off vs on.

    Each mode gets its own world (same seed) so the legacy run cannot
    ride caches the optimized warm-up filled.  ``speedup`` is the
    normalized throughput the regression gate tracks.
    """
    modes = {}
    for label, enabled in (("legacy", False), ("optimized", True)):
        registry, saved = _swap_registry()
        try:
            with perf.flags(all=enabled):
                _net, sender, receiver = _steady_world(b"e-hotpath-steady")
                stats = _measure_sends(
                    lambda: sender.secure_msg_peer(
                        str(receiver.peer_id), "bench", _PAYLOAD_TEXT),
                    messages)
            stats["resumed_frames"] = registry.count("crypto.resume.seal")
            modes[label] = stats
        finally:
            _restore_registry(saved)
    legacy, optimized = modes["legacy"], modes["optimized"]
    return {
        "legacy": legacy,
        "optimized": optimized,
        "speedup": round(
            optimized["msgs_per_sec"] / legacy["msgs_per_sec"], 3)
        if legacy["msgs_per_sec"] else float("inf"),
    }


# -- the layer ladder ------------------------------------------------------


def _plain_pair(seed: bytes, wire: bool):
    """A joined plain world; optionally with the wire boundary removed."""
    net, broker, clients = fixtures.build_plain_world(
        n_clients=2, seed=seed)
    fixtures.join_plain(clients)
    if not wire:
        for endpoint in (broker.control.endpoint, clients[0].control.endpoint,
                         clients[1].control.endpoint):
            endpoint._wire = None
    sender, receiver = clients
    sender.send_msg_peer(str(receiver.peer_id), "bench", "warm")
    return net, sender, receiver


def layer_ladder(messages: int = 60) -> list[dict]:
    """Price each stacked layer: plain → +wire → +obs → +secure → +resumed.

    Every row runs with the optimizations on (the shipped
    configuration); the secure rows use the bench policy (512-bit RSA,
    so the *structure* of the cost is representative, the RSA constants
    are small).  Rows carry ``x_vs_plain``: how many plain messages one
    message at this layer costs.
    """
    from repro.bench.msgfast import bench_policy

    rows: list[dict] = []

    def _run(layer: str, build, obs_enabled: bool) -> None:
        registry = obs.Registry(enabled=obs_enabled)
        saved = (obs.get_registry(), obs.get_tracer(), obs.get_events())
        obs.set_registry(registry)
        obs.set_tracer(obs.Tracer(registry=registry))
        obs.set_events(obs.ProtocolEvents(registry=registry))
        try:
            send = build()
            stats = _measure_sends(send, messages)
        finally:
            _restore_registry(saved)
        rows.append({"layer": layer, **stats})

    def plain_send(wire: bool):
        _net, sender, receiver = _plain_pair(b"e-hotpath-ladder", wire=wire)
        return lambda: sender.send_msg_peer(
            str(receiver.peer_id), "bench", _PAYLOAD_TEXT).ok

    def secure_send(fast: bool):
        net, _admin, _broker, clients = fixtures.build_secure_world(
            n_clients=2, policy=bench_policy(fast),
            seed=b"e-hotpath-ladder-sec", joined=True)
        sender, receiver = clients
        sender.secure_msg_peer(str(receiver.peer_id), "bench", "warm")
        return lambda: sender.secure_msg_peer(
            str(receiver.peer_id), "bench", _PAYLOAD_TEXT)

    _run("plain", lambda: plain_send(wire=False), obs_enabled=False)
    _run("+wire", lambda: plain_send(wire=True), obs_enabled=False)
    _run("+obs", lambda: plain_send(wire=True), obs_enabled=True)
    _run("+secure (stateless)", lambda: secure_send(fast=False),
         obs_enabled=True)
    _run("+secure resumed", lambda: secure_send(fast=True), obs_enabled=True)

    plain_ms = rows[0]["ms_per_msg"] or 1e-9
    for row in rows:
        row["x_vs_plain"] = round(row["ms_per_msg"] / plain_ms, 2)
    return rows


# -- the experiment document ----------------------------------------------


def _checks(steady: dict, ladder: list[dict]) -> dict:
    delivered_ok = all(
        row["delivered"] == row["messages"] for row in ladder)
    steady_ok = (steady["legacy"]["delivered"]
                 == steady["legacy"]["messages"]
                 and steady["optimized"]["delivered"]
                 == steady["optimized"]["messages"])
    checks = {
        "steady_state_speedup": steady["speedup"],
        "speedup_at_least_%.0fx" % HOTPATH_SPEEDUP_TARGET:
            steady["speedup"] >= HOTPATH_SPEEDUP_TARGET,
        "all_delivered": delivered_ok and steady_ok,
    }
    checks["all_passed"] = all(
        value for value in checks.values() if isinstance(value, bool))
    return checks


def hotpath_report(quick: bool = False) -> dict:
    """The complete E-HOTPATH document (stages + A/B + ladder + checks)."""
    stages = stage_report(repeats=400 if quick else 2000)
    steady = steady_state_ab(messages=60 if quick else 150)
    ladder = layer_ladder(messages=25 if quick else 60)
    return {
        "experiment": "E-HOTPATH",
        "quick": quick,
        "flags": perf.FLAGS.to_dict(),
        "speedup_target": HOTPATH_SPEEDUP_TARGET,
        "stages": stages,
        "steady_state": steady,
        "layers": ladder,
        "checks": _checks(steady, ladder),
    }


def format_hotpath(data: dict) -> str:
    lines = [
        "E-HOTPATH: stage timings, legacy vs optimized (µs/op)",
        f"  {'stage':<34}  {'flag':<20}  {'legacy':>9}  "
        f"{'optimized':>9}  {'speedup':>8}",
    ]
    for row in data["stages"]:
        lines.append(
            f"  {row['stage']:<34}  {row['flag']:<20}  "
            f"{row['legacy_us']:>9.1f}  {row['optimized_us']:>9.1f}  "
            f"{row['speedup']:>7.2f}x")
    steady = data["steady_state"]
    lines += [
        "",
        "E-HOTPATH: steady-state resumed secure messaging (end to end)",
        f"  legacy    : {steady['legacy']['msgs_per_sec']:>8.1f} msgs/sec "
        f"({steady['legacy']['ms_per_msg']:.2f} ms/msg)",
        f"  optimized : {steady['optimized']['msgs_per_sec']:>8.1f} msgs/sec "
        f"({steady['optimized']['ms_per_msg']:.2f} ms/msg)",
        f"  speedup   : {steady['speedup']:.2f}x "
        f"(target >= {data['speedup_target']:.1f}x)",
        "",
        "E-HOTPATH: the layer ladder (optimizations on)",
        f"  {'layer':<22}  {'msgs/sec':>9}  {'ms/msg':>8}  {'x plain':>8}",
    ]
    for row in data["layers"]:
        lines.append(
            f"  {row['layer']:<22}  {row['msgs_per_sec']:>9.1f}  "
            f"{row['ms_per_msg']:>8.2f}  {row['x_vs_plain']:>7.2f}x")
    checks = data["checks"]
    lines += ["", "E-HOTPATH acceptance checks:"]
    for key, value in sorted(checks.items()):
        if key == "all_passed":
            continue
        shown = f"{value:.2f}x" if isinstance(value, float) else value
        lines.append(f"  {key:<34} : {shown}")
    lines.append(f"  {'all_passed':<34} : {checks['all_passed']}")
    return "\n".join(lines)


def write_bench_hotpath(data: dict,
                        path: str | Path | None = None) -> Path:
    """Persist the E-HOTPATH document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_HOTPATH.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# -- CI regression gate ----------------------------------------------------


def check_regression(fresh: dict, baseline: dict,
                     tolerance: float = REGRESSION_TOLERANCE) -> list[str]:
    """Problems (empty = pass) comparing a fresh run to the baseline.

    The gated quantity is the **normalized throughput** — the
    optimized/legacy speedup measured in one process — because absolute
    msgs/sec tracks the host machine, not the code.  Absolute throughput
    is still reported for eyeballs.
    """
    problems: list[str] = []
    fresh_speedup = fresh["steady_state"]["speedup"]
    base_speedup = baseline["steady_state"]["speedup"]
    floor = base_speedup * (1.0 - tolerance)
    if fresh_speedup < floor:
        problems.append(
            f"normalized throughput regressed: speedup {fresh_speedup:.2f}x "
            f"< {floor:.2f}x ({(1 - tolerance) * 100:.0f}% of the baseline "
            f"{base_speedup:.2f}x)")
    if not fresh["checks"]["all_passed"]:
        failed = [k for k, v in fresh["checks"].items()
                  if isinstance(v, bool) and not v]
        problems.append(f"fresh run failed its own checks: {failed}")
    return problems


def gate(fresh_path: str, baseline_path: str = BASELINE_PATH,
         tolerance: float = REGRESSION_TOLERANCE) -> int:
    try:
        fresh = json.loads(Path(fresh_path).read_text(encoding="utf-8"))
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"hotpath gate: cannot load inputs: {exc}")
        return 2
    problems = check_regression(fresh, baseline, tolerance)
    fresh_tp = fresh["steady_state"]["optimized"]["msgs_per_sec"]
    base_tp = baseline["steady_state"]["optimized"]["msgs_per_sec"]
    print(f"hotpath gate: fresh speedup "
          f"{fresh['steady_state']['speedup']:.2f}x vs baseline "
          f"{baseline['steady_state']['speedup']:.2f}x "
          f"(absolute: {fresh_tp:.0f} vs {base_tp:.0f} msgs/sec, "
          "informational)")
    for problem in problems:
        print(f"hotpath gate: FAIL: {problem}")
    if not problems:
        print("hotpath gate: pass")
    return 1 if problems else 0


# -- the generated layer-cost table (docs drift gate) ----------------------


def render_layer_table(data: dict) -> str:
    """The markdown layer-cost table for ``docs/PERFORMANCE.md``.

    Rendered from a bench document (CI renders from the **committed
    baseline**, so the check is deterministic across machines).
    """
    steady = data["steady_state"]
    lines = [
        "| layer | msgs/sec | ms/msg | x vs plain |",
        "|---|---:|---:|---:|",
    ]
    for row in data["layers"]:
        lines.append(
            f"| {row['layer']} | {row['msgs_per_sec']:.1f} | "
            f"{row['ms_per_msg']:.2f} | {row['x_vs_plain']:.2f}x |")
    lines += [
        "",
        f"Steady-state resumed path, optimizations off → on: "
        f"{steady['legacy']['msgs_per_sec']:.1f} → "
        f"{steady['optimized']['msgs_per_sec']:.1f} msgs/sec "
        f"(**{steady['speedup']:.2f}x**, gate ≥ "
        f"{data['speedup_target']:.1f}x).",
    ]
    return "\n".join(lines) + "\n"


def embedded_section(doc_text: str) -> str | None:
    """The generated table embedded in a document, or ``None``."""
    try:
        start = doc_text.index(BEGIN_MARK) + len(BEGIN_MARK)
        end = doc_text.index(END_MARK, start)
    except ValueError:
        return None
    return doc_text[start:end].strip("\n") + "\n"


def check_docs(doc_path: str = PERFORMANCE_DOC,
               baseline_path: str = BASELINE_PATH) -> int:
    try:
        doc = Path(doc_path).read_text(encoding="utf-8")
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"drift check: cannot load inputs: {exc}")
        return 2
    embedded = embedded_section(doc)
    if embedded is None:
        print(f"drift check: {doc_path} has no "
              f"{BEGIN_MARK!r}...{END_MARK!r} section")
        return 2
    expected = render_layer_table(baseline)
    if embedded != expected:
        print(f"drift check: {doc_path} layer table is out of date — "
              "regenerate with `python -m repro.bench.profile "
              f"--update-docs` after refreshing {baseline_path}")
        return 1
    print(f"drift check: {doc_path} layer table matches {baseline_path}")
    return 0


def update_docs(doc_path: str = PERFORMANCE_DOC,
                baseline_path: str = BASELINE_PATH) -> int:
    doc = Path(doc_path).read_text(encoding="utf-8")
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    try:
        start = doc.index(BEGIN_MARK) + len(BEGIN_MARK)
        end = doc.index(END_MARK, start)
    except ValueError:
        print(f"update-docs: {doc_path} lacks the marker section")
        return 2
    updated = (doc[:start] + "\n" + render_layer_table(baseline) + doc[end:])
    Path(doc_path).write_text(updated, encoding="utf-8")
    print(f"update-docs: rewrote the layer table in {doc_path}")
    return 0


# -- cProfile attachment ---------------------------------------------------


def run_cprofile(messages: int = 300, top: int = 20) -> int:
    """Profile ``messages`` optimized steady-state sends with cProfile."""
    import cProfile
    import pstats

    registry, saved = _swap_registry()
    try:
        _net, sender, receiver = _steady_world(b"e-hotpath-cprofile")
        peer = str(receiver.peer_id)
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(messages):
            sender.secure_msg_peer(peer, "bench", _PAYLOAD_TEXT)
        profiler.disable()
    finally:
        _restore_registry(saved)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="E-HOTPATH gates: regression, docs drift, cProfile")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--gate", nargs="+", metavar="JSON",
                       help="compare FRESH [BASELINE] hotpath documents; "
                            f"baseline defaults to {BASELINE_PATH}")
    group.add_argument("--check-docs", nargs="?", const=PERFORMANCE_DOC,
                       metavar="DOC",
                       help="verify the generated layer table in DOC "
                            f"against {BASELINE_PATH}")
    group.add_argument("--update-docs", nargs="?", const=PERFORMANCE_DOC,
                       metavar="DOC",
                       help="rewrite the generated layer table in DOC "
                            f"from {BASELINE_PATH}")
    group.add_argument("--dump-table", action="store_true",
                       help=f"print the layer table from {BASELINE_PATH}")
    group.add_argument("--cprofile", nargs="?", const=300, type=int,
                       metavar="N",
                       help="profile N optimized steady-state sends")
    args = parser.parse_args(argv)
    if args.gate:
        baseline = args.gate[1] if len(args.gate) > 1 else BASELINE_PATH
        return gate(args.gate[0], baseline)
    if args.check_docs:
        return check_docs(args.check_docs)
    if args.update_docs:
        return update_docs(args.update_docs)
    if args.dump_table:
        baseline = json.loads(
            Path(BASELINE_PATH).read_text(encoding="utf-8"))
        print(render_layer_table(baseline), end="")
        return 0
    if args.cprofile:
        return run_cprofile(args.cprofile)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
