"""Benchmark harness reproducing the paper's evaluation (section 5).

* **E1** — join overhead (the 81.76% number): :func:`join_overhead`
* **E2** — Figure 2, secureMsgPeer overhead vs data length:
  :func:`msg_overhead_curve`
* **A1-A4** — the DESIGN.md ablations.

``python -m repro.bench`` (or ``examples/overhead_study.py``) prints the
full report; ``benchmarks/`` wraps the same functions in pytest-benchmark
targets.
"""

from repro.bench.faults import (
    LOSS_RATES,
    crash_recovery_scenario,
    fault_loss_sweep,
    fault_report,
    format_fault_report,
    write_bench_fault,
)
from repro.bench.federation import (
    BROKER_COUNTS,
    fed_cell,
    fed_report,
    format_fed,
    secure_reject_probe,
    write_bench_fed,
)
from repro.bench.msgfast import (
    GROUP_SIZES,
    RATE_COUNTS,
    format_msgfast,
    msgfast_report,
    write_bench_msgfast,
)
from repro.bench.profile import (
    HOTPATH_SPEEDUP_TARGET,
    REGRESSION_TOLERANCE,
    format_hotpath,
    hotpath_report,
    layer_ladder,
    render_layer_table,
    stage_report,
    steady_state_ab,
    write_bench_hotpath,
)
from repro.bench.group import (
    format_group,
    group_report,
    write_bench_group,
)
from repro.bench.scale import (
    check_scale_regression,
    format_scale,
    scale_report,
    write_bench_scale,
)
from repro.bench.experiments import (
    OBS_PRIMITIVES,
    PAPER_JOIN_OVERHEAD_PCT,
    baseline_comparison,
    group_scaling,
    join_overhead,
    msg_overhead_curve,
    obs_bench,
    obs_snapshot_report,
    policy_ablation,
)
from repro.bench.report import (
    format_baselines,
    format_group_scaling,
    format_join_overhead,
    format_msg_overhead,
    format_obs,
    format_policy_ablation,
    write_bench_obs,
)

__all__ = [
    "BROKER_COUNTS",
    "fed_cell",
    "fed_report",
    "format_fed",
    "secure_reject_probe",
    "write_bench_fed",
    "GROUP_SIZES",
    "HOTPATH_SPEEDUP_TARGET",
    "LOSS_RATES",
    "RATE_COUNTS",
    "REGRESSION_TOLERANCE",
    "format_hotpath",
    "hotpath_report",
    "layer_ladder",
    "render_layer_table",
    "stage_report",
    "steady_state_ab",
    "write_bench_hotpath",
    "format_msgfast",
    "msgfast_report",
    "write_bench_msgfast",
    "format_group",
    "group_report",
    "write_bench_group",
    "check_scale_regression",
    "format_scale",
    "scale_report",
    "write_bench_scale",
    "OBS_PRIMITIVES",
    "PAPER_JOIN_OVERHEAD_PCT",
    "crash_recovery_scenario",
    "fault_loss_sweep",
    "fault_report",
    "format_fault_report",
    "write_bench_fault",
    "join_overhead",
    "msg_overhead_curve",
    "group_scaling",
    "baseline_comparison",
    "obs_bench",
    "obs_snapshot_report",
    "policy_ablation",
    "format_join_overhead",
    "format_msg_overhead",
    "format_group_scaling",
    "format_baselines",
    "format_obs",
    "format_policy_ablation",
    "write_bench_obs",
]
