"""E-FED: sharded broker federation under load, faults, and rogues.

Four questions, one document (``BENCH_FED.json``):

* **Shard balance** — with B federated brokers, how evenly does the
  consistent-hash ring spread the resource index?  Each broker's owned
  share is reported as a ratio against the ideal ``total / B``; the
  4-broker cell must keep every ratio inside ``SHARE_RATIO_BAND``.
  (With 128 virtual nodes per broker and a few dozen shard keys the
  spread is deterministic but not exact — the band documents the
  imbalance tolerance the deployment accepts.)
* **Redirect cost** — keyed lookups must resolve in at most one
  ``fed_redirect`` hop, and the owner cache must keep the steady-state
  redirect rate below one per lookup.
* **Delta sync** — linking a new broker into a populated cluster must
  move only the entries the newcomer now owns (no full-index copy), and
  an unlink → relink cycle must resend nothing.
* **Convergence** — a publish accepted on the degraded local path
  during a network partition must reach its shard owner within a few
  anti-entropy sweeps after the partition heals.

A separate probe checks the hardening story: unsigned ``index_sync``
frames die in the secure stack and non-member frames die in the plain
stack, both with counted ``fed.reject.*`` metrics.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.bench.paths import bench_out_path
from repro.bench.fixtures import build_secure_world, fresh_network
from repro.bench.msgfast import _restore_registry, _swap_registry, bench_policy
from repro.crypto.drbg import HmacDrbg
from repro.jxta.advertisements import FileAdvertisement
from repro.jxta.messages import Message
from repro.overlay.broker import Broker
from repro.overlay.client import ClientPeer
from repro.overlay.database import UserDatabase
from repro.overlay.presence import FederationSweeper
from repro.sim.faults import FaultPlan, Partition
from repro.sim.scheduler import Scheduler

BROKER_COUNTS = (2, 4, 8)
BROKER_COUNTS_QUICK = (2, 4)
N_CLIENTS = 48
SWEEP_INTERVAL = 15.0
# Accepted per-broker share ratio against the ideal total/B split.
SHARE_RATIO_BAND = (0.25, 2.0)


@dataclass
class FedCell:
    """One broker-count cell of the federation sweep."""

    n_brokers: int
    n_clients: int
    total_entries: int
    shares: dict[str, int]
    min_share_ratio: float
    max_share_ratio: float
    lookups: int
    redirects: int
    redirect_rate: float
    max_redirects_per_lookup: int
    link_entries_sent: int
    relink_entries_sent: int
    heal_convergence_s: float | None


def _build_cluster(n_brokers: int, n_clients: int):
    """B linked brokers, N logged-in clients spread round-robin."""
    net = fresh_network()
    root = HmacDrbg(b"bench-fed|%d" % n_brokers)
    database = UserDatabase(root.fork(b"db"))
    brokers = [Broker(net, f"broker:{i}", database, root.fork(b"br%d" % i),
                      name=f"B{i}") for i in range(n_brokers)]
    for other in brokers[1:]:
        brokers[0].link_broker(other)
    clients = []
    for i in range(n_clients):
        database.register_user(f"user{i}", f"pw{i}", {"bench"})
        client = ClientPeer(net, f"peer:{i}", root.fork(b"cl%d" % i),
                            name=f"user{i}-app")
        client.connect(brokers[i % n_brokers].address)
        client.login(f"user{i}", f"pw{i}")
        client.publish_file("bench", f"file-{i}.txt", b"x" * 32)
        clients.append(client)
    return net, root, brokers, clients


def _share_spread(brokers) -> tuple[dict[str, int], float, float]:
    shares = {b.address: len(b.control.cache) for b in brokers}
    expected = sum(shares.values()) / len(brokers)
    ratios = [n / expected for n in shares.values()]
    return shares, min(ratios), max(ratios)


def _redirect_probe(registry, clients) -> tuple[int, int, int]:
    """Client 0 resolves every other peer's file by shard key."""
    reader, lookups, redirects, worst = clients[0], 0, 0, 0
    for other in clients[1:]:
        before = registry.count("fed.redirects")
        reader.search_advertisements(adv_type="FileAdvertisement",
                                     peer_id=str(other.peer_id))
        hops = registry.count("fed.redirects") - before
        lookups += 1
        redirects += hops
        worst = max(worst, hops)
    return lookups, redirects, worst


def _link_probe(registry, net, root, brokers, database) -> tuple[int, int]:
    """Entries shipped when a fresh broker joins, and again on relink."""
    joiner = Broker(net, f"broker:{len(brokers)}", database,
                    root.fork(b"joiner"), name="BJ")
    before = registry.count("fed.sync.entries_sent")
    brokers[0].link_broker(joiner)
    link_sent = registry.count("fed.sync.entries_sent") - before
    brokers[0].unlink_broker(joiner)
    mid = registry.count("fed.sync.entries_sent")
    brokers[0].link_broker(joiner)
    relink_sent = registry.count("fed.sync.entries_sent") - mid
    brokers.append(joiner)
    return link_sent, relink_sent


def _heal_probe(net, brokers, clients) -> float | None:
    """Partition the cluster, publish on the degraded path, time the heal."""
    clock = net.clock
    scheduler = Scheduler(clock)
    for broker in brokers:
        FederationSweeper(broker, scheduler, interval=SWEEP_INTERVAL)
    home = brokers[0].address
    publisher = next(
        (c for c in clients if c.broker_address == home
         and brokers[0].federation.owner_of(str(c.peer_id)) != home), None)
    if publisher is None:  # every broker:0 client self-owns its shard
        return 0.0
    start, heal = clock.now + 10.0, clock.now + 90.0
    FaultPlan(Partition(
        [home] + [c.address for c in clients],
        [b.address for b in brokers[1:]],
        start=start, heal_at=heal)).install(net)
    clock.advance(start + 10.0 - clock.now)
    publisher.publish_file("bench", "wartime.txt", b"w")
    deadline = heal + 20 * SWEEP_INTERVAL
    t = max(heal, clock.now)
    while t <= deadline:
        scheduler.run_until(t)
        owner_addr = brokers[0].federation.owner_of(str(publisher.peer_id))
        owner = next(b for b in brokers if b.address == owner_addr)
        held = owner.control.cache.find("FileAdvertisement",
                                        peer_id=str(publisher.peer_id))
        if any(e.parsed.file_name == "wartime.txt" for e in held):
            return round(t - heal, 3)
        t += SWEEP_INTERVAL / 3.0
    return None


def fed_cell(n_brokers: int, n_clients: int = N_CLIENTS) -> FedCell:
    registry, saved = _swap_registry()
    try:
        net, root, brokers, clients = _build_cluster(n_brokers, n_clients)
        shares, lo, hi = _share_spread(brokers)
        total = sum(shares.values())
        lookups, redirects, worst = _redirect_probe(registry, clients)
        link_sent, relink_sent = _link_probe(
            registry, net, root, brokers, brokers[0].database)
        heal = _heal_probe(net, brokers, clients)
        return FedCell(
            n_brokers=n_brokers, n_clients=n_clients, total_entries=total,
            shares=shares, min_share_ratio=round(lo, 3),
            max_share_ratio=round(hi, 3), lookups=lookups,
            redirects=redirects,
            redirect_rate=round(redirects / lookups, 3) if lookups else 0.0,
            max_redirects_per_lookup=worst, link_entries_sent=link_sent,
            relink_entries_sent=relink_sent, heal_convergence_s=heal)
    finally:
        _restore_registry(saved)


def secure_reject_probe() -> dict:
    """Unsigned frames die in the secure stack, foreign ones in the plain."""
    registry, saved = _swap_registry()
    try:
        net, admin, broker, clients = build_secure_world(
            n_clients=1, policy=bench_policy(True), joined=True)
        client = clients[0]
        adv = FileAdvertisement(peer_id=client.peer_id, file_name="evil",
                                size=1, sha256_hex="00", group="bench")
        rogue = Message("index_sync")
        rogue.add_xml("adv", adv.to_element())
        client.control.endpoint.send("broker:0", rogue)
        unsigned = registry.count("fed.reject.unsigned")
        forged_present = bool([
            e for e in broker.control.cache.find("FileAdvertisement")
            if e.parsed.file_name == "evil"])
    finally:
        _restore_registry(saved)

    registry, saved = _swap_registry()
    try:
        net = fresh_network()
        root = HmacDrbg(b"bench-fed-foreign")
        database = UserDatabase(root.fork(b"db"))
        plain = Broker(net, "broker:0", database, root.fork(b"br"), name="B0")
        database.register_user("user0", "pw0", {"bench"})
        walkin = ClientPeer(net, "peer:0", root.fork(b"cl"), name="user0-app")
        walkin.connect("broker:0")
        walkin.login("user0", "pw0")
        fake = FileAdvertisement(peer_id=walkin.peer_id, file_name="evil",
                                 size=1, sha256_hex="00", group="bench")
        rogue = Message("index_sync")
        rogue.add_xml("adv", fake.to_element())
        walkin.control.endpoint.send("broker:0", rogue)
        foreign = registry.count("fed.reject.foreign_index_sync")
        foreign_present = bool([
            e for e in plain.control.cache.find("FileAdvertisement")
            if e.parsed.file_name == "evil"])
    finally:
        _restore_registry(saved)
    return {
        "unsigned_rejections": unsigned,
        "foreign_rejections": foreign,
        "forged_adv_indexed": forged_present or foreign_present,
    }


def _checks(cells: list[FedCell], rejects: dict) -> dict:
    four = next((c for c in cells if c.n_brokers == 4), None)
    lo, hi = SHARE_RATIO_BAND
    checks = {
        "shard_balance_4_brokers": bool(
            four and lo <= four.min_share_ratio
            and four.max_share_ratio <= hi),
        "lookups_at_most_one_redirect": all(
            c.max_redirects_per_lookup <= 1 for c in cells),
        "link_is_delta_sync": all(
            0 < c.link_entries_sent < c.total_entries for c in cells),
        "relink_resends_nothing": all(
            c.relink_entries_sent == 0 for c in cells),
        "partitions_converge": all(
            c.heal_convergence_s is not None for c in cells),
        "unsigned_index_sync_rejected": rejects["unsigned_rejections"] >= 1,
        "foreign_index_sync_rejected": rejects["foreign_rejections"] >= 1,
        "forged_adv_never_indexed": not rejects["forged_adv_indexed"],
    }
    checks["all_passed"] = all(checks.values())
    return checks


def fed_report(quick: bool = False) -> dict:
    """The complete E-FED document."""
    counts = BROKER_COUNTS_QUICK if quick else BROKER_COUNTS
    cells = [fed_cell(n) for n in counts]
    rejects = secure_reject_probe()
    return {
        "experiment": "E-FED",
        "quick": quick,
        "n_clients": N_CLIENTS,
        "sweep_interval_s": SWEEP_INTERVAL,
        "share_ratio_band": list(SHARE_RATIO_BAND),
        "cells": [asdict(c) for c in cells],
        "rejects": rejects,
        "checks": _checks(cells, rejects),
    }


def format_fed(data: dict) -> str:
    lines = [
        f"E-FED: sharded federation, {data['n_clients']} clients, "
        f"anti-entropy every {data['sweep_interval_s']:.0f}s",
        f"  {'B':>3}  {'entries':>7}  {'share lo':>8}  {'share hi':>8}  "
        f"{'redir/qry':>9}  {'max hops':>8}  {'link tx':>7}  "
        f"{'relink tx':>9}  {'heal s':>7}",
    ]
    for cell in data["cells"]:
        heal = cell["heal_convergence_s"]
        lines.append(
            f"  {cell['n_brokers']:>3}  {cell['total_entries']:>7}  "
            f"{cell['min_share_ratio']:>8.2f}  {cell['max_share_ratio']:>8.2f}  "
            f"{cell['redirect_rate']:>9.2f}  "
            f"{cell['max_redirects_per_lookup']:>8}  "
            f"{cell['link_entries_sent']:>7}  "
            f"{cell['relink_entries_sent']:>9}  "
            f"{'stuck' if heal is None else f'{heal:>7.1f}'}")
    rejects = data["rejects"]
    checks = data["checks"]
    lines += [
        "",
        f"  rogue frames: {rejects['unsigned_rejections']} unsigned + "
        f"{rejects['foreign_rejections']} foreign rejected, forged adv "
        f"indexed: {rejects['forged_adv_indexed']}",
        "",
        "E-FED acceptance checks:",
    ]
    for key, value in sorted(checks.items()):
        if key != "all_passed":
            lines.append(f"  {key:<34} : {value}")
    lines.append(f"  {'all_passed':<34} : {checks['all_passed']}")
    return "\n".join(lines)


def write_bench_fed(data: dict, path: str | Path | None = None) -> Path:
    """Persist the E-FED document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_FED.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out
