"""Rendering experiment results as the rows/series the paper reports."""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.experiments import (
    BaselineComparisonPoint,
    GroupScalePoint,
    JoinOverheadResult,
    MsgOverheadCurve,
    PolicyAblationRow,
)
from repro.bench.paths import bench_out_path


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f} ms"


def format_join_overhead(result: JoinOverheadResult) -> str:
    """E1 — the §5 sentence, ours vs the paper's 81.76%."""
    lines = [
        "E1: network join overhead (connect+login vs secureConnection+secureLogin)",
        f"  link={result.link_name}  rsa={result.rsa_bits}  cpu_scale={result.cpu_scale}",
        f"  plain join : {_ms(result.plain_s)}",
        f"  secure join: {_ms(result.secure_s)}",
        f"  overhead   : {result.overhead_pct:8.2f} %   (paper: {result.paper_overhead_pct:.2f} %)",
    ]
    return "\n".join(lines)


def format_msg_overhead(curve: MsgOverheadCurve) -> str:
    """E2 — Figure 2 as a text series."""
    lines = [
        "E2 (Figure 2): secureMsgPeer overhead vs data length",
        f"  link={curve.link_name}  rsa={curve.rsa_bits}  cpu_scale={curve.cpu_scale}",
        f"  {'size (B)':>10}  {'plain':>12}  {'secure':>12}  {'overhead %':>11}",
    ]
    for p in curve.points:
        lines.append(
            f"  {p.size_bytes:>10}  {_ms(p.plain_s)}  {_ms(p.secure_s)}"
            f"  {p.overhead_pct:>10.1f}%")
    shape = "falls with size (matches Figure 2)" if curve.monotone_decreasing_tail() \
        else "NOT falling monotonically — investigate"
    lines.append(f"  shape: overhead {shape}")
    return "\n".join(lines)


def format_group_scaling(points: list[GroupScalePoint]) -> str:
    lines = [
        "A3: group messaging scaling (sendMsgPeerGroup vs secure variant)",
        f"  {'members':>8}  {'plain':>12}  {'secure':>12}  {'overhead %':>11}",
    ]
    for p in points:
        lines.append(
            f"  {p.group_size:>8}  {_ms(p.plain_s)}  {_ms(p.secure_s)}"
            f"  {p.overhead_pct:>10.1f}%")
    return "\n".join(lines)


def format_baselines(points: list[BaselineComparisonPoint],
                     size_bytes: int) -> str:
    lines = [
        f"A4: N-message conversation cost ({size_bytes} B payloads)",
        f"  {'N':>5}  {'stateless':>12}  {'TLS(ch.)':>12}  {'CBJX':>12}  winner",
    ]
    for p in points:
        best = min(("stateless", p.stateless_s), ("tls", p.tls_s),
                   ("cbjx*", p.cbjx_s), key=lambda kv: kv[1])[0]
        lines.append(
            f"  {p.n_messages:>5}  {_ms(p.stateless_s)}  {_ms(p.tls_s)}"
            f"  {_ms(p.cbjx_s)}  {best}")
    lines.append("  (*CBJX provides no confidentiality — cheaper but weaker)")
    return "\n".join(lines)


def format_obs(data: dict) -> str:
    """E-OBS — the observability registry's view of the secure workload."""
    meta = data.get("meta", {})
    lines = [
        "E-OBS: per-primitive distributions (repro.obs registry)",
        f"  rsa={meta.get('rsa_bits', '?')}  link={meta.get('link', '?')}"
        f"  repeats={meta.get('repeats', '?')}"
        f"  msg_size={meta.get('msg_size_bytes', '?')} B",
        f"  {'primitive':>16}  {'calls':>6}  {'p50 ms':>9}  {'p95 ms':>9}"
        f"  {'p50 bytes':>10}  {'p95 bytes':>10}",
    ]
    for name, p in data.get("primitives", {}).items():
        lat = p.get("latency_ms") or {}
        by = p.get("bytes_sent") or {}
        lines.append(
            f"  {name:>16}  {p.get('calls', 0):>6}"
            f"  {lat.get('p50', 0.0):>9.3f}  {lat.get('p95', 0.0):>9.3f}"
            f"  {by.get('p50', 0.0):>10.0f}  {by.get('p95', 0.0):>10.0f}")
    spans = data.get("spans", {})
    if spans:
        lines.append(f"  {'span':>32}  {'count':>6}  {'p50 ms':>9}  {'p95 ms':>9}")
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f"  {name:>32}  {s.get('count', 0):>6}"
                f"  {s.get('p50', 0.0):>9.3f}  {s.get('p95', 0.0):>9.3f}")
    return "\n".join(lines)


def write_bench_obs(data: dict, path: str | Path | None = None) -> Path:
    """Persist the E-OBS document as machine-readable JSON."""
    out = Path(path) if path is not None else bench_out_path("BENCH_OBS.json")
    out.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def format_policy_ablation(rows: list[PolicyAblationRow]) -> str:
    lines = [
        "A2: policy ablation (key size / suite)",
        f"  {'policy':>24}  {'secure join':>14}  {'secure msg':>14}",
    ]
    for r in rows:
        lines.append(
            f"  {r.label:>24}  {_ms(r.join_secure_s)}  {_ms(r.msg_secure_s)}")
    return "\n".join(lines)
