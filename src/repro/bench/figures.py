"""Terminal rendering of the paper's Figure 2.

A log-x scatter of overhead%% vs message size, drawn with unicode block
characters — enough to eyeball the falling curve the paper plots, with
the exact numbers in the accompanying table from
:func:`repro.bench.report.format_msg_overhead`.
"""

from __future__ import annotations

import math

from repro.bench.experiments import MsgOverheadCurve

_HEIGHT = 12
_BAR = "█"


def render_figure2(curve: MsgOverheadCurve, height: int = _HEIGHT) -> str:
    """Bar chart: one column per measured size, height ∝ overhead %."""
    if not curve.points:
        return "(no data)"
    values = [p.overhead_pct for p in curve.points]
    top = max(values)
    if top <= 0:
        return "(all overheads non-positive)"
    col_width = 9
    rows: list[str] = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        cells = []
        for value in values:
            cells.append((_BAR * 3).center(col_width) if value >= threshold
                         else " " * col_width)
        label = f"{threshold:8.0f}% |" if level in (height, 1) or level % 3 == 0 \
            else " " * 9 + " |"
        rows.append(label + "".join(cells))
    axis = " " * 9 + " +" + "-" * (col_width * len(values))
    labels = " " * 11 + "".join(
        _format_size(p.size_bytes).center(col_width) for p in curve.points)
    header = ("secureMsgPeer overhead vs data length "
              f"(link={curve.link_name}, RSA-{curve.rsa_bits})")
    return "\n".join([header, *rows, axis, labels])


def _format_size(n: int) -> str:
    if n >= 1_000_000:
        return f"{n // 1_000_000}MB"
    if n >= 1_000:
        return f"{n // 1_000}kB"
    return f"{n}B"
