"""Composable scenario engine: populations, faults and adversaries.

One DSL assembles everything the experiments used to wire by hand:

* :class:`Scenario` / :class:`BuiltScenario` — the deterministic
  deployment substrate (network, admin, brokers, peers), unchanged from
  the original one-call builder;
* :mod:`repro.scenario.population` — cohorts with arrival processes
  (ramp, Poisson, flash crowd, diurnal), Zipf group assignment and
  lightweight scripted actors so six-figure populations over a
  federated broker ring stay tractable in one process;
* :mod:`repro.scenario.adversaries` — population-scale attacks
  (Sybil flood, eclipse, malformed-frame storm) on top of the
  :mod:`repro.attacks` transport-contract primitives;
* :mod:`repro.scenario.engine` — phases composing load, a
  :class:`~repro.sim.faults.FaultPlan` and adversaries, reported
  phase-by-phase through :mod:`repro.obs` (goodput, reject taxonomy,
  post-disruption convergence).

>>> from repro.scenario import Scenario
>>> scn = (Scenario(seed=b"pkg-doc")
...        .with_user("alice", "pw", groups={"lab"})
...        .with_broker("broker:0")
...        .with_secure_peer("alice")
...        .build(join=True))
>>> sorted(scn.brokers)
['broker:0']
"""

from repro.scenario.adversaries import (
    Adversary,
    EclipseAttack,
    FrameStorm,
    SybilFlood,
)
from repro.scenario.builder import BuiltScenario, Scenario
from repro.scenario.engine import Phase, ScenarioEngine
from repro.scenario.population import (
    ActorPool,
    ArrivalProcess,
    ChurnStorm,
    Cohort,
    DiurnalCurve,
    FlashCrowd,
    PoissonArrivals,
    ScriptedActor,
    UniformRamp,
    zipf_group_sizes,
)

__all__ = [
    "Scenario",
    "BuiltScenario",
    "ArrivalProcess",
    "UniformRamp",
    "PoissonArrivals",
    "FlashCrowd",
    "DiurnalCurve",
    "zipf_group_sizes",
    "Cohort",
    "ScriptedActor",
    "ChurnStorm",
    "ActorPool",
    "Adversary",
    "SybilFlood",
    "EclipseAttack",
    "FrameStorm",
    "Phase",
    "ScenarioEngine",
]
