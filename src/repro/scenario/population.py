"""Population models: cohorts, arrival processes and scripted actors.

The paper's deployment (§5) is a campus overlay where thousands of
client peers join, chat and churn against a handful of brokers.  This
module scales that population model far past what full client stacks
can simulate in one process: a cohort describes *how many* peers arrive
and *when* (ramp, Poisson, flash crowd, diurnal curve), and each member
is a :class:`ScriptedActor` — a username, a key-less peer identity and
a registered network address, nothing more.

Two admission paths, mixed per cohort by ``wire_fraction``:

* **wire** — a real ``login_req``/``logout_req`` round trip through the
  transport, exercising the broker's full authentication, group fan-out
  and federation presence path;
* **bulk** — :meth:`repro.overlay.broker.Broker.bulk_admit`, which
  installs identical session/group/index state but models a join whose
  gossip already converged.  This is what keeps 100k actors across an
  8-broker ring tractable: state is real, per-member broadcast storms
  are not replayed.

Everything draws from forked :class:`~repro.crypto.drbg.HmacDrbg`
streams, so a population is a pure function of the scenario seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.errors import NetworkError, ReproError
from repro.jxta.advertisements import PeerAdvertisement
from repro.jxta.ids import parse_id
from repro.jxta.messages import Message

__all__ = [
    "ArrivalProcess",
    "UniformRamp",
    "PoissonArrivals",
    "FlashCrowd",
    "DiurnalCurve",
    "zipf_group_sizes",
    "Cohort",
    "ScriptedActor",
    "ChurnStorm",
    "ActorPool",
]


# -- arrival processes -------------------------------------------------------


class ArrivalProcess:
    """When a cohort's members show up inside a phase.

    ``offsets`` returns ``n`` sorted arrival times in ``[0, duration)``
    seconds from the phase start, deterministic from the DRBG stream.
    """

    def offsets(self, n: int, duration: float, rng: HmacDrbg) -> list[float]:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformRamp(ArrivalProcess):
    """Evenly paced arrivals — the steady enrollment baseline."""

    def offsets(self, n: int, duration: float, rng: HmacDrbg) -> list[float]:
        if n <= 0:
            return []
        return [duration * (i + 0.5) / n for i in range(n)]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals; ``rate_per_s`` defaults to ``n / duration``.

    Draws exponential inter-arrival gaps; arrivals past the phase end
    are clamped to it (they still happen, in a terminal burst), so the
    cohort size is exact.
    """

    rate_per_s: float | None = None

    def offsets(self, n: int, duration: float, rng: HmacDrbg) -> list[float]:
        if n <= 0:
            return []
        rate = self.rate_per_s if self.rate_per_s else n / max(duration, 1e-9)
        t, out = 0.0, []
        for _ in range(n):
            t += -math.log(1.0 - rng.uniform()) / rate
            out.append(min(t, duration))
        return out


@dataclass(frozen=True)
class FlashCrowd(ArrivalProcess):
    """Everyone piles in around one instant (``at`` as a phase fraction).

    Models the paper's lecture-start spike: a burst of width
    ``width`` × duration centred on ``at`` × duration.
    """

    at: float = 0.5
    width: float = 0.05

    def offsets(self, n: int, duration: float, rng: HmacDrbg) -> list[float]:
        centre = self.at * duration
        spread = max(self.width * duration, 1e-9)
        out = [min(max(centre + (rng.uniform() - 0.5) * spread, 0.0),
                   duration) for _ in range(n)]
        return sorted(out)


@dataclass(frozen=True)
class DiurnalCurve(ArrivalProcess):
    """Arrival density following ``peaks`` sinusoidal busy periods.

    Rejection-samples against ``(1 - cos(2π·peaks·t/T)) / 2`` — two
    uniform draws per accepted arrival in expectation, deterministic
    from the stream.
    """

    peaks: int = 1

    def offsets(self, n: int, duration: float, rng: HmacDrbg) -> list[float]:
        out: list[float] = []
        while len(out) < n:
            t = rng.uniform() * duration
            density = (1.0 - math.cos(2.0 * math.pi * self.peaks * t
                                      / max(duration, 1e-9))) / 2.0
            if rng.uniform() < density:
                out.append(t)
        return sorted(out)


# -- group assignment --------------------------------------------------------


def zipf_group_sizes(members: int, n_groups: int, exponent: float = 1.1,
                     cap: int | None = 256) -> list[int]:
    """Group sizes following a Zipf law over group rank.

    Real overlay groups are heavy-tailed: a few large course groups,
    a long tail of tiny project ones.  ``cap`` bounds the largest group
    so join/leave fan-out stays sub-quadratic at population scale.
    Returns ``n_groups`` sizes summing to at most ``members`` (each
    membership slot is used at most once — actors join one group here).
    """
    if n_groups <= 0 or members <= 0:
        return []
    weights = [1.0 / (rank ** exponent) for rank in range(1, n_groups + 1)]
    total = sum(weights)
    sizes = [int(members * w / total) for w in weights]
    if cap is not None:
        sizes = [min(s, cap) for s in sizes]
    return sizes


# -- cohorts and actors ------------------------------------------------------


@dataclass(frozen=True)
class Cohort:
    """One homogeneous slice of the population.

    ``wire_fraction`` of members join through the real login wire
    exchange; the rest are bulk-admitted.  ``groups`` names the group
    pool this cohort draws memberships from, ``group_exponent``/
    ``group_cap`` shape the Zipf assignment (members beyond the summed
    group sizes stay groupless, like most real peers).
    """

    name: str
    size: int
    arrivals: ArrivalProcess = UniformRamp()
    groups: tuple[str, ...] = ()
    wire_fraction: float = 0.0
    group_exponent: float = 1.1
    group_cap: int | None = 256
    password: str = "pw"


@dataclass
class ScriptedActor:
    """The lightweight stand-in for one client peer."""

    username: str
    password: str
    address: str
    peer_id: str
    home: str                 # broker address the session targets
    cohort: str
    wire: bool = False        # joins/leaves via the real login exchange
    joined: bool = False


@dataclass(frozen=True)
class ChurnStorm:
    """A burst of leave/rejoin cycles inside one phase.

    ``count`` actors (drawn from the joined population) drop within the
    first ``leave_window`` fraction of the phase and, when ``rejoin``
    is set, come back ``downtime_s`` later.  Wire actors churn through
    real ``logout_req``/``login_req`` exchanges.
    """

    count: int
    rejoin: bool = True
    downtime_s: float = 2.0
    leave_window: float = 0.6


class ActorPool:
    """Provision, join and churn scripted actors against live brokers.

    The pool registers one shared sink handler per actor address (so
    broker pushes — ``peer_joined``, ``info_push`` — are deliverable),
    owns the per-actor join bookkeeping, and exposes the joined set for
    churn sampling.  Works against any backend with the
    ``register``/``request`` surface (the simulator at population
    scale; a transport for small wire-parity tests).
    """

    def __init__(self, backend, brokers, admin, rng: HmacDrbg) -> None:
        self.backend = backend
        self.brokers = list(brokers)
        self.admin = admin
        self.rng = rng
        self.actors: list[ScriptedActor] = []
        self.by_cohort: dict[str, list[ScriptedActor]] = {}
        self.cohorts: dict[str, Cohort] = {}
        self.stats = {"wire_joins": 0, "bulk_joins": 0, "wire_leaves": 0,
                      "bulk_leaves": 0, "join_failures": 0}
        self._serial = 0

    # -- provisioning ------------------------------------------------------

    def provision(self, cohort: Cohort) -> list[ScriptedActor]:
        """Register ``cohort.size`` users and build their actors.

        Deterministic: usernames, peer ids, home brokers and group
        memberships derive from the pool's DRBG stream and the running
        serial, never from iteration order of any set.
        """
        rng = self.rng.fork(b"cohort|" + cohort.name.encode())
        group_plan: list[str] = []
        for name, size in zip(cohort.groups,
                              zipf_group_sizes(cohort.size, len(cohort.groups),
                                               cohort.group_exponent,
                                               cohort.group_cap)):
            group_plan.extend([name] * size)
        members: list[ScriptedActor] = []
        for i in range(cohort.size):
            serial = self._serial
            self._serial += 1
            username = f"{cohort.name}-{serial:06d}"
            address = f"actor:{cohort.name}:{serial}"
            peer_id = f"urn:jxta:uuid-{serial:032x}"
            groups = {group_plan[i]} if i < len(group_plan) else set()
            self.admin.register_user(username, cohort.password, groups)
            home = self.brokers[serial % len(self.brokers)]
            actor = ScriptedActor(
                username=username, password=cohort.password, address=address,
                peer_id=peer_id, home=home.address, cohort=cohort.name,
                wire=rng.uniform() < cohort.wire_fraction)
            self.backend.register(address, _actor_sink)
            members.append(actor)
        self.actors.extend(members)
        self.by_cohort.setdefault(cohort.name, []).extend(members)
        self.cohorts[cohort.name] = cohort
        return members

    # -- join / leave ------------------------------------------------------

    def join(self, actor: ScriptedActor) -> bool:
        if actor.joined:
            return True
        broker = self._home(actor)
        if actor.wire:
            ok = self._wire_join(actor, broker)
            self.stats["wire_joins" if ok else "join_failures"] += 1
        else:
            broker.bulk_admit(actor.peer_id, actor.username, actor.address)
            self.stats["bulk_joins"] += 1
            ok = True
        actor.joined = ok
        return ok

    def leave(self, actor: ScriptedActor) -> bool:
        if not actor.joined:
            return False
        broker = self._home(actor)
        if actor.wire:
            try:
                self.backend.request(actor.address, broker.address,
                                     Message("logout_req").to_wire())
            except NetworkError:
                pass
            self.stats["wire_leaves"] += 1
        else:
            broker.bulk_evict(actor.address)
            self.stats["bulk_leaves"] += 1
        actor.joined = False
        return True

    def joined_actors(self) -> list[ScriptedActor]:
        return [a for a in self.actors if a.joined]

    def pending_actors(self, cohort: str | None = None) -> list[ScriptedActor]:
        pool = self.by_cohort.get(cohort, []) if cohort else self.actors
        return [a for a in pool if not a.joined]

    def active_count(self) -> int:
        return sum(len(b.connected) for b in self.brokers)

    # -- internals ---------------------------------------------------------

    def _home(self, actor: ScriptedActor):
        for broker in self.brokers:
            if broker.address == actor.home:
                return broker
        raise ReproError(f"actor {actor.username!r} has unknown home "
                         f"{actor.home!r}")

    def _wire_join(self, actor: ScriptedActor, broker) -> bool:
        adv = PeerAdvertisement(peer_id=parse_id(actor.peer_id, "peer"),
                                name=actor.username, address=actor.address)
        req = Message("login_req")
        req.add_text("username", actor.username)
        req.add_text("password", actor.password)
        req.add_xml("peer_adv", adv.to_element())
        try:
            raw = self.backend.request(actor.address, broker.address,
                                       req.to_wire())
            return Message.from_wire(raw).msg_type == "login_ok"
        except ReproError:
            return False


def _actor_sink(frame) -> None:
    """Shared receive handler: scripted actors accept pushes silently."""
    return None
