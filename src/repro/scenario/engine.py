"""The phase runner: load + faults + adversaries → per-phase reports.

A :class:`Phase` declares what happens during one slice of virtual
time — cohort admissions following their arrival processes, a
:class:`~repro.sim.faults.FaultPlan` installed for the duration, a
churn storm, adversaries stepped on a regular cadence, and goodput
probes (real secure-client operations) interleaved through all of it.
:class:`ScenarioEngine` merges those into one time-ordered event list,
executes it on the scenario's virtual clock, and reports per phase:

* **goodput** — probe success ratio plus the network frame deltas;
* **reject taxonomy** — every ``wire.reject.*``, ``fed.reject.*``,
  ``fn.login*``/``fn.secure_login.*`` and ``faults.*`` counter that
  moved during the phase, grouped by layer;
* **population** — joins/leaves split by wire vs bulk admission;
* **convergence** — virtual seconds after the disruption lifts until a
  probe round fully succeeds again.

Reports are plain dicts (JSON-ready) so benches commit them as
baselines; all randomness forks the engine DRBG, so a run is a pure
function of (scenario seed, engine seed, phase list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.crypto.drbg import HmacDrbg
from repro.errors import ReproError
from repro.scenario.adversaries import Adversary
from repro.scenario.builder import BuiltScenario
from repro.scenario.population import ActorPool, ChurnStorm
from repro.sim.faults import FaultPlan

__all__ = ["Phase", "EngineContext", "ScenarioEngine"]

#: counter prefixes folded into the reject taxonomy, by layer
_TAXONOMY = {
    "wire": ("wire.reject.",),
    "federation": ("fed.reject.",),
    "login": ("fn.login.rejected",),
    "secure_login": ("fn.secure_login.cbid_mismatch",
                     "fn.secure_login.malformed",
                     "fn.secure_login.replayed",
                     "fn.secure_login.rejected"),
    "faults": ("faults.",),
}


@dataclass(frozen=True)
class Phase:
    """One declarative slice of scenario time."""

    name: str
    duration_s: float = 10.0
    #: cohort name → how many pending members to admit this phase
    admissions: Mapping[str, int] = field(default_factory=dict)
    churn: ChurnStorm | None = None
    faults: FaultPlan | None = None
    adversaries: Sequence[Adversary] = ()
    #: probe rounds spread across the phase (goodput sampling)
    probes: int = 10
    #: adversary step cadence
    ticks: int = 10


@dataclass
class EngineContext:
    """What adversaries and probes see of the running scenario."""

    network: object
    transport: object          # register/send/request surface
    brokers: dict
    admin: object
    policy: object
    rng: HmacDrbg
    clock: object


class ScenarioEngine:
    """Run phases against a built scenario and collect the reports.

    ``probe_pairs`` names (sender, recipient, group) triples over
    ``scenario.peers``; each probe is a real message-send primitive
    (secure or plain, matching the peer type), so goodput reflects what
    an end user experiences through faults and attacks.
    """

    def __init__(self, scenario: BuiltScenario, pool: ActorPool | None = None,
                 probe_pairs: Sequence[tuple[str, str, str]] = (),
                 seed: bytes = b"engine",
                 convergence_step_s: float = 0.5,
                 convergence_max_rounds: int = 40) -> None:
        self.scenario = scenario
        self.pool = pool
        self.probe_pairs = list(probe_pairs)
        self.rng = HmacDrbg(seed, personalization=b"scenario-engine")
        self.convergence_step_s = convergence_step_s
        self.convergence_max_rounds = convergence_max_rounds
        self._probe_stats = {"attempts": 0, "ok": 0}
        self.ctx = EngineContext(
            network=scenario.network, transport=scenario.network,
            brokers=scenario.brokers, admin=scenario.admin,
            policy=getattr(scenario, "policy", None), rng=self.rng,
            clock=scenario.clock)

    # -- public API --------------------------------------------------------

    def run(self, phases: Sequence[Phase]) -> dict:
        reports = [self._run_phase(p) for p in phases]
        return {"phases": reports,
                "population": dict(self.pool.stats) if self.pool else {},
                "active_sessions": (self.pool.active_count()
                                    if self.pool else None)}

    # -- phase execution ---------------------------------------------------

    def _run_phase(self, phase: Phase) -> dict:
        clock = self.scenario.clock
        t0 = clock.now
        before = self._counters()
        probes_before = dict(self._probe_stats)
        rng = self.rng.fork(b"phase|" + phase.name.encode())

        injector = None
        if phase.faults is not None:
            injector = phase.faults.install(self.scenario.network,
                                            seed=b"faults|"
                                            + phase.name.encode())
        for adv in phase.adversaries:
            adv.attach(self.ctx)

        events = self._schedule(phase, rng)
        joins = leaves = 0
        for offset, _, kind, payload in events:
            target = t0 + offset
            if target > clock.now:
                clock.advance(target - clock.now)
            self.scenario.scheduler.run_until(clock.now)
            if kind == "join":
                joins += bool(self.pool.join(payload))
            elif kind == "leave":
                leaves += bool(self.pool.leave(payload))
            elif kind == "adv":
                payload.step(self.ctx)
            elif kind == "probe":
                self._probe_round()
        if t0 + phase.duration_s > clock.now:
            clock.advance(t0 + phase.duration_s - clock.now)
        self.scenario.scheduler.run_until(clock.now)

        for adv in phase.adversaries:
            adv.detach(self.ctx)
        if injector is not None:
            injector.uninstall()

        convergence = None
        if (phase.faults is not None or phase.adversaries) and self.probe_pairs:
            convergence = self._measure_convergence()

        delta = self._delta(before, self._counters())
        attempts = self._probe_stats["attempts"] - probes_before["attempts"]
        ok = self._probe_stats["ok"] - probes_before["ok"]
        report = {
            "name": phase.name,
            "duration_s": phase.duration_s,
            "population": {
                "joins": joins, "leaves": leaves,
                "active": self.pool.active_count() if self.pool else None},
            "goodput": {
                "probe_attempts": attempts, "probe_ok": ok,
                "probe_ratio": (ok / attempts) if attempts else None,
                "frames_sent": delta.get("net.frames_sent", 0),
                "frames_delivered": delta.get("net.frames_delivered", 0),
                "frames_dropped": delta.get("net.frames_dropped", 0)},
            "rejects": self._taxonomy(delta),
            "adversaries": {adv.name: adv.summary()
                            for adv in phase.adversaries},
            "convergence_s": convergence,
        }
        return report

    def _schedule(self, phase: Phase,
                  rng: HmacDrbg) -> list[tuple[float, int, str, object]]:
        """Merge admissions, churn, adversary ticks and probes by time."""
        events: list[tuple[float, int, str, object]] = []
        serial = 0

        def add(offset: float, kind: str, payload) -> None:
            nonlocal serial
            events.append((offset, serial, kind, payload))
            serial += 1

        duration = phase.duration_s
        for cohort_name, count in phase.admissions.items():
            if self.pool is None:
                raise ReproError("phase admits actors but the engine has "
                                 "no ActorPool")
            pending = self.pool.pending_actors(cohort_name)[:count]
            arrivals = self._arrivals_for(cohort_name)
            for actor, offset in zip(
                    pending, arrivals.offsets(len(pending), duration,
                                              rng.fork(b"admit|"
                                                       + cohort_name.encode()))):
                add(offset, "join", actor)
        if phase.churn is not None:
            if self.pool is None:
                raise ReproError("phase declares churn but the engine has "
                                 "no ActorPool")
            churn_rng = rng.fork(b"churn")
            joined = self.pool.joined_actors()
            window = duration * phase.churn.leave_window
            for _ in range(min(phase.churn.count, len(joined))):
                actor = joined.pop(churn_rng.rand_below(len(joined)))
                at = churn_rng.uniform() * window
                add(at, "leave", actor)
                if phase.churn.rejoin:
                    add(min(at + phase.churn.downtime_s, duration), "join",
                        actor)
        for adv in phase.adversaries:
            for i in range(phase.ticks):
                add(duration * (i + 0.5) / phase.ticks, "adv", adv)
        for i in range(phase.probes):
            add(duration * (i + 0.5) / phase.probes, "probe", None)
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    def _arrivals_for(self, cohort_name: str):
        if self.pool is None:
            raise ReproError("no ActorPool attached")
        cohort = self.pool.cohorts.get(cohort_name)
        if cohort is None:
            raise ReproError(f"unknown cohort {cohort_name!r}")
        return cohort.arrivals

    # -- probes and convergence -------------------------------------------

    def _probe_round(self) -> bool:
        """One probe per configured pair; True if every probe succeeded."""
        all_ok = bool(self.probe_pairs)
        for sender, recipient, group in self.probe_pairs:
            self._probe_stats["attempts"] += 1
            if self._probe_once(sender, recipient, group):
                self._probe_stats["ok"] += 1
            else:
                all_ok = False
        return all_ok

    def _probe_once(self, sender: str, recipient: str, group: str) -> bool:
        peers = self.scenario.peers
        src, dst = peers[sender], peers[recipient]
        try:
            if hasattr(src, "secure_msg_peer"):
                return bool(src.secure_msg_peer(str(dst.peer_id), group,
                                                "probe"))
            return bool(src.send_msg_peer(str(dst.peer_id), group,
                                          "probe").ok)
        except ReproError:
            return False

    def _measure_convergence(self) -> float | None:
        """Virtual seconds until a full probe round succeeds again."""
        clock = self.scenario.clock
        start = clock.now
        for _ in range(self.convergence_max_rounds):
            if self._probe_round():
                return clock.now - start
            clock.advance(self.convergence_step_s)
            self.scenario.scheduler.run_until(clock.now)
        return None

    # -- metric bookkeeping ------------------------------------------------

    def _counters(self) -> dict[str, int]:
        """Global obs counters plus per-broker Metrics, summed by name.

        Broker function counters (``fn.*``) live in each endpoint's
        local :class:`~repro.sim.metrics.Metrics`; the phase report
        wants the fleet-wide taxonomy, so both sources fold together.
        """
        registry = obs.get_registry()
        out = {name: registry.count(name)
               for name in registry.metric_names()}
        for broker in self.scenario.brokers.values():
            for name, count in broker.metrics.counters.items():
                out[name] = out.get(name, 0) + count
        return out

    @staticmethod
    def _delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        return {name: count - before.get(name, 0)
                for name, count in after.items()
                if count - before.get(name, 0)}

    @staticmethod
    def _taxonomy(delta: dict[str, int]) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for layer, prefixes in _TAXONOMY.items():
            hits = {name: count for name, count in delta.items()
                    if any(name.startswith(p) for p in prefixes)}
            out[layer] = dict(sorted(hits.items()))
        return out
