"""Population-scale adversaries for the scenario engine.

The :mod:`repro.attacks` modules model the paper's §2.3 threats one
connection at a time; these classes run the same threat models at
population scale, as engine-steppable actors on the
:class:`~repro.net.base.Transport` contract:

* :class:`SybilFlood` — a storm of forged identities against node-id
  assignment and login.  Against the secure stack every identity dies
  on the CBID check (``fn.secure_login.cbid_mismatch``) — and cheaply
  for the attacker too: the CBID is checked *before* the signature, so
  one signed document re-sealed per forged ``PeerId`` suffices, no sid
  and no per-identity signing.  Against the plain stack one stolen
  credential mints as many sessions as the attacker has addresses (the
  vulnerability, demonstrated).
* :class:`EclipseAttack` — route capture against the federation ring: a
  rogue roster pushed over ``fed_link_req``/``fed_members``.  The plain
  federation merges anything (``authorize`` is identity-free) and the
  rogues capture their share of the id space; the secure federation
  rejects the unsigned frames (``fed.reject.unsigned``) and the ring
  stays clean.  Capture is measured with
  :meth:`EclipseAttack.captured_fraction` by sampling ring ownership.
* :class:`FrameStorm` — replays the :mod:`repro.wire.fuzz` mutation
  corpus (the same one the wire tests use) against broker endpoints,
  checking the ``wire.reject.*`` taxonomy absorbs every frame before
  any handler runs.

An adversary's lifecycle is ``attach(ctx)`` → ``step(ctx)``×N →
``detach(ctx)`` → ``summary()``; the context is the engine's
:class:`~repro.scenario.engine.EngineContext`.
"""

from __future__ import annotations

from collections import Counter

from repro.core import secure_login as sl
from repro.core.keystore import Keystore
from repro.errors import NetworkError, ReproError
from repro.jxta.advertisements import PeerAdvertisement
from repro.jxta.ids import parse_id
from repro.jxta.messages import Message
from repro.xmllib import Element
from repro.wire import REGISTRY
from repro.wire.fuzz import mutations

__all__ = ["Adversary", "SybilFlood", "EclipseAttack", "FrameStorm"]


class Adversary:
    """Base lifecycle for an engine-driven attacker."""

    name = "adversary"

    def attach(self, ctx) -> None:
        """Acquire targets and build attack material (called once/phase)."""

    def step(self, ctx) -> None:
        """Emit one burst of attack traffic (called per engine tick)."""

    def detach(self, ctx) -> None:
        """Release any installed hooks."""

    def summary(self) -> dict:
        """What happened, for the phase report."""
        return {}


class SybilFlood(Adversary):
    """Forged-identity storm against node-id assignment and login."""

    name = "sybil_flood"

    def __init__(self, identities: int = 64, per_step: int = 16,
                 attacker_address: str = "attacker:sybil",
                 stolen_user: str | None = None,
                 stolen_password: str | None = None,
                 malformed_every: int = 5, rsa_bits: int = 512) -> None:
        self.identities = identities
        self.per_step = per_step
        self.attacker_address = attacker_address
        self.stolen_user = stolen_user
        self.stolen_password = stolen_password
        self.malformed_every = malformed_every
        self.rsa_bits = rsa_bits
        self.attempts = 0
        self.accepted = 0
        self.responses: Counter = Counter()
        self._requests: list[Message] = []

    def attach(self, ctx) -> None:
        self.target = next(iter(ctx.brokers.values()))
        rng = ctx.rng.fork(b"sybil")
        self._requests = []
        if hasattr(self.target, "keystore"):
            self._build_secure_storm(ctx, rng)
        else:
            self._build_plain_storm(rng)

    def _build_secure_storm(self, ctx, rng) -> None:
        # One keypair + one signed document for the whole storm; the
        # broker checks CBID-vs-key before the signature, so forging the
        # PeerId only costs the attacker one public-key seal per sybil.
        keys = Keystore.generate(self.rsa_bits, rng.fork(b"keys")).keys
        broker_pub = self.target.keystore.keys.public
        policy = ctx.policy
        doc = sl.build_login_document(
            self.stolen_user or "sybil", self.stolen_password or "hunter2",
            keys, peer_name="sybil", peer_address=self.attacker_address,
            scheme=policy.signature_scheme, drbg=rng.fork(b"sign"))
        true_id = doc.find("PeerId").text
        for i in range(self.identities):
            if self.malformed_every and i % self.malformed_every == 0:
                junk = Message(sl.LOGIN_REQ)
                junk.add_json("envelope", {"v": 1, "junk": i})
                self._requests.append(junk)
                continue
            forged = self._clone_with_peer_id(doc, true_id[:-8] + f"{i:08x}")
            self._requests.append(sl.seal_login_request(
                forged, sid=f"{i:032x}", broker_key=broker_pub,
                suite=policy.envelope_suite, wrap=policy.envelope_wrap,
                drbg=rng.fork(b"seal|%d" % i)))

    def _build_plain_storm(self, rng) -> None:
        # Plain stack: one sniffed credential, N forged advertisements.
        for i in range(self.identities):
            adv = PeerAdvertisement(
                peer_id=parse_id(f"urn:jxta:uuid-{0xFACE:016x}{i:016x}",
                                 "peer"),
                name=f"sybil-{i}", address=f"{self.attacker_address}:{i}")
            req = Message("login_req")
            req.add_text("username", self.stolen_user or "sybil")
            req.add_text("password", self.stolen_password or "hunter2")
            req.add_xml("peer_adv", adv.to_element())
            self._requests.append(req)

    @staticmethod
    def _clone_with_peer_id(doc: Element, peer_id: str) -> Element:
        clone = doc.deep_copy()
        clone.find("PeerId").text = peer_id
        return clone

    def step(self, ctx) -> None:
        burst, self._requests = (self._requests[:self.per_step],
                                 self._requests[self.per_step:])
        for req in burst:
            self.attempts += 1
            try:
                raw = ctx.transport.request(self.attacker_address,
                                            self.target.address, req.to_wire())
                msg_type = Message.from_wire(raw).msg_type
            except ReproError:
                msg_type = "no_response"
            self.responses[msg_type] += 1
            if msg_type in ("login_ok", sl.LOGIN_OK):
                self.accepted += 1

    def summary(self) -> dict:
        return {"attempts": self.attempts, "accepted": self.accepted,
                "rejected": self.attempts - self.accepted,
                "responses": dict(self.responses)}


class EclipseAttack(Adversary):
    """Route capture: poison the federation ring with rogue brokers."""

    name = "eclipse"

    def __init__(self, rogues: int = 8, per_step: int = 2,
                 prefix: str = "eclipse:rogue", samples: int = 64) -> None:
        self.rogues = rogues
        self.per_step = per_step
        self.prefix = prefix
        self.samples = samples
        self.link_attempts = 0
        self.link_ok = 0
        self._targets: list = []
        self._cursor = 0

    def rogue_addresses(self) -> list[str]:
        return [f"{self.prefix}:{i}" for i in range(self.rogues)]

    def attach(self, ctx) -> None:
        self._targets = list(ctx.brokers.values())
        # Rogues must be reachable: the victim's link handler gossips and
        # syncs back at whatever roster it accepted.
        for address in self.rogue_addresses():
            try:
                ctx.transport.register(address, lambda frame: None)
            except NetworkError:
                pass  # already attached in an earlier phase

    def _poison_roster(self) -> list[dict]:
        return [{"address": addr, "broker_id": f"urn:jxta:uuid-{i:032x}",
                 "name": f"rogue-{i}"}
                for i, addr in enumerate(self.rogue_addresses())]

    def step(self, ctx) -> None:
        for _ in range(self.per_step):
            target = self._targets[self._cursor % len(self._targets)]
            rogue = self.rogue_addresses()[self._cursor % self.rogues]
            self._cursor += 1
            req = Message("fed_link_req")
            req.add_json("members", self._poison_roster())
            self.link_attempts += 1
            try:
                raw = ctx.transport.request(rogue, target.address,
                                            req.to_wire())
                if raw is not None and \
                        Message.from_wire(raw).msg_type == "fed_link_ok":
                    self.link_ok += 1
            except ReproError:
                continue

    def captured_fraction(self, ctx) -> float:
        """Share of the id space the rogues own, averaged over brokers."""
        rogues = set(self.rogue_addresses())
        captured = total = 0
        for broker in ctx.brokers.values():
            for i in range(self.samples):
                owner = broker.federation.owner_of(f"probe-{i:04d}")
                total += 1
                if owner in rogues:
                    captured += 1
        return captured / total if total else 0.0

    def summary(self) -> dict:
        return {"link_attempts": self.link_attempts, "link_ok": self.link_ok,
                "rogues": self.rogues}


class FrameStorm(Adversary):
    """Malformed-frame storm from the wire mutation fuzzer."""

    name = "frame_storm"

    def __init__(self, per_step: int = 32,
                 attacker_address: str = "attacker:storm",
                 msg_types: tuple[str, ...] | None = None) -> None:
        self.per_step = per_step
        self.attacker_address = attacker_address
        self.msg_types = msg_types
        self.frames_sent = 0
        self.labels: Counter = Counter()
        self._corpus: list[tuple[str, str, bytes]] = []
        self._cursor = 0
        self._targets: list[str] = []

    def attach(self, ctx) -> None:
        self._targets = [b.address for b in ctx.brokers.values()]
        first = next(iter(ctx.brokers.values()))
        handled = set(self.msg_types
                      or first.control.endpoint.handled_types())
        self._corpus = []
        for spec in REGISTRY.values():
            if spec.msg_type not in handled:
                continue
            for label, malformed, reason in mutations(spec):
                self._corpus.append((f"{spec.msg_type}.{label}", reason,
                                     malformed.to_wire()))
        self._cursor = 0

    def step(self, ctx) -> None:
        if not self._corpus:
            return
        for _ in range(self.per_step):
            label, reason, payload = self._corpus[self._cursor
                                                  % len(self._corpus)]
            target = self._targets[self._cursor % len(self._targets)]
            self._cursor += 1
            ctx.transport.send(self.attacker_address, target, payload)
            self.frames_sent += 1
            self.labels[reason] += 1

    def summary(self) -> dict:
        return {"frames_sent": self.frames_sent,
                "by_expected_reason": dict(self.labels),
                "corpus_size": len(self._corpus)}
