"""One-call deployment builder: the repository's "hello, network" API.

Everything the examples, tests and benchmarks assemble by hand — network,
administrator, brokers, peers, users — behind a single declarative
builder.  Deterministic from the seed.

>>> from repro.scenario import Scenario
>>> scn = (Scenario(seed=b"demo")
...        .with_user("alice", "pw", groups={"lab"})
...        .with_user("bob", "pw", groups={"lab"})
...        .with_broker("broker:0")
...        .with_secure_peer("alice")
...        .with_secure_peer("bob")
...        .build(join=True))
>>> scn.peers["alice"].secure_msg_peer(str(scn.peers["bob"].peer_id),
...                                    "lab", "hi")
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Administrator, SecureBroker, SecureClientPeer
from repro.core.policy import DEFAULT_POLICY, SecurityPolicy
from repro.crypto.drbg import HmacDrbg
from repro.errors import ReproError
from repro.overlay import Broker, ClientPeer
from repro.sim import Scheduler, SimNetwork, VirtualClock
from repro.sim.latency import LAN_2009, LinkModel


@dataclass
class BuiltScenario:
    """The live objects a built scenario exposes."""

    network: SimNetwork
    scheduler: Scheduler
    admin: Administrator
    brokers: dict[str, Broker]
    peers: dict[str, ClientPeer]
    passwords: dict[str, str] = field(default_factory=dict)
    #: the security policy the deployment was built under (scenario
    #: adversaries forge material against the same parameters)
    policy: SecurityPolicy = DEFAULT_POLICY

    @property
    def clock(self) -> VirtualClock:
        return self.network.clock

    def broker(self) -> Broker:
        """The first (often only) broker."""
        return next(iter(self.brokers.values()))

    def join(self, username: str) -> list[str]:
        """Join one peer through the appropriate primitive set."""
        peer = self.peers[username]
        broker_address = self.broker().address
        if isinstance(peer, SecureClientPeer):
            peer.secure_connect(broker_address)
            return peer.secure_login(username, self.passwords[username])
        peer.connect(broker_address)
        return peer.login(username, self.passwords[username])

    def join_all(self) -> None:
        for username in self.peers:
            self.join(username)


class Scenario:
    """Declarative builder; every ``with_*`` returns self for chaining."""

    def __init__(self, seed: bytes | str = b"repro-scenario",
                 policy: SecurityPolicy = DEFAULT_POLICY,
                 link: LinkModel = LAN_2009,
                 admin_bits: int | None = None) -> None:
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._root = HmacDrbg(seed, personalization=b"scenario")
        self.policy = policy.validate()
        self.link = link
        self._admin_bits = admin_bits if admin_bits is not None else self.policy.rsa_bits
        self._users: list[tuple[str, str, set[str]]] = []
        self._brokers: list[tuple[str, str, bool]] = []  # (address, name, secure)
        self._peers: list[tuple[str, bool]] = []         # (username, secure)

    # -- declaration ---------------------------------------------------------

    def with_user(self, username: str, password: str,
                  groups: set[str] | None = None) -> "Scenario":
        self._users.append((username, password, set(groups or ())))
        return self

    def with_broker(self, address: str, name: str = "",
                    secure: bool = True) -> "Scenario":
        self._brokers.append((address, name or address, secure))
        return self

    def with_secure_peer(self, username: str) -> "Scenario":
        self._peers.append((username, True))
        return self

    def with_plain_peer(self, username: str) -> "Scenario":
        self._peers.append((username, False))
        return self

    # -- construction ------------------------------------------------------------

    def build(self, join: bool = False) -> BuiltScenario:
        if not self._brokers:
            self._brokers.append(("broker:0", "broker-0", True))
        declared_users = {u for u, _, _ in self._users}
        for username, _ in self._peers:
            if username not in declared_users:
                raise ReproError(
                    f"peer {username!r} has no matching with_user() declaration")

        network = SimNetwork(clock=VirtualClock(), link=self.link)
        scheduler = Scheduler(network.clock)
        admin = Administrator(self._root.fork(b"admin"), bits=self._admin_bits)
        passwords: dict[str, str] = {}
        for username, password, groups in self._users:
            admin.register_user(username, password, groups)
            passwords[username] = password

        brokers: dict[str, Broker] = {}
        secure_brokers_exist = False
        for address, name, secure in self._brokers:
            drbg = self._root.fork(b"broker|" + address.encode())
            if secure:
                brokers[address] = SecureBroker.create(
                    network, address, admin, drbg, name=name,
                    policy=self.policy)
                secure_brokers_exist = True
            else:
                brokers[address] = Broker(network, address, admin.database,
                                          drbg, name=name)
        # link every broker pair (global index, §2.1)
        broker_list = list(brokers.values())
        for i, a in enumerate(broker_list):
            for b in broker_list[i + 1:]:
                a.link_broker(b)

        peers: dict[str, ClientPeer] = {}
        for username, secure in self._peers:
            drbg = self._root.fork(b"peer|" + username.encode())
            address = f"peer:{username}"
            if secure:
                if not secure_brokers_exist:
                    raise ReproError(
                        "secure peers need at least one secure broker")
                peers[username] = SecureClientPeer(
                    network, address, drbg, admin.credential,
                    name=f"{username}-app", policy=self.policy)
            else:
                peers[username] = ClientPeer(network, address, drbg,
                                             name=f"{username}-app")

        scenario = BuiltScenario(
            network=network, scheduler=scheduler, admin=admin,
            brokers=brokers, peers=peers, passwords=passwords,
            policy=self.policy)
        if join:
            scenario.join_all()
        return scenario
