"""Session identifiers and replay protection for secureLogin (§4.2.2).

The broker generates a "sufficiently long random session identifier" in
secureConnection and *consumes it exactly once* during secureLogin:

    "Br checks if sid is currently stored.  If that is not the case,
    login is aborted.  Otherwise, Br no longer stores sid and the login
    process continues."

Replaying a captured login blob therefore fails — the sid inside it is
gone.  Sids also expire so the store cannot grow without bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.errors import ReplayError
from repro.sim.clock import VirtualClock

SID_BYTES = 32
DEFAULT_SID_LIFETIME = 300.0  # virtual seconds to complete a login


@dataclass
class _PendingSid:
    sid: str
    issued_at: float
    expires_at: float
    client_address: str


class SidStore:
    """Broker-side store of outstanding session identifiers."""

    def __init__(self, clock: VirtualClock, drbg: HmacDrbg,
                 lifetime: float = DEFAULT_SID_LIFETIME) -> None:
        self._clock = clock
        self._drbg = drbg
        self.lifetime = lifetime
        self._pending: dict[str, _PendingSid] = {}
        self.issued_total = 0
        self.replays_blocked = 0

    def issue(self, client_address: str) -> str:
        """Mint a fresh sid for a connecting client."""
        sid = self._drbg.generate(SID_BYTES).hex()
        now = self._clock.now
        self._pending[sid] = _PendingSid(
            sid=sid, issued_at=now, expires_at=now + self.lifetime,
            client_address=client_address)
        self.issued_total += 1
        return sid

    def consume(self, sid: str) -> None:
        """Use up a sid; raises :class:`ReplayError` if absent or expired."""
        entry = self._pending.pop(sid, None)
        if entry is None:
            self.replays_blocked += 1
            raise ReplayError("session identifier unknown or already used")
        if self._clock.now > entry.expires_at:
            self.replays_blocked += 1
            raise ReplayError("session identifier expired")

    def reset(self) -> None:
        """Forget every outstanding sid (broker crash: RAM state is gone).

        Replay protection is *preserved* by forgetting: a sid issued
        before the crash can never be consumed after it, so a captured
        pre-crash sid replayed against the restarted broker is rejected
        exactly like any unknown sid.
        """
        self._pending.clear()

    def sweep(self) -> int:
        """Drop expired sids; returns how many were removed."""
        now = self._clock.now
        stale = [k for k, v in self._pending.items() if now > v.expires_at]
        for k in stale:
            del self._pending[k]
        return len(stale)

    @property
    def outstanding(self) -> int:
        return len(self._pending)
