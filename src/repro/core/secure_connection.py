"""secureConnection (§4.2.1): challenge/response broker authentication.

Wire shape (faithful to the paper's steps 3 and 5)::

    Cl -> Br : { chall }
    Cl <- Br : { sid, S_SK_Br(chall), Cred_Br^Adm }

The client concludes the broker is legitimate iff (a) the returned
credential chain validates against the administrator anchor, and (b) the
challenge signature verifies under the credential's public key.  This
module holds the message codecs and the client-side verification logic;
the broker half lives in :class:`repro.core.secure_broker.SecureBroker`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, wire
from repro.core.credentials import (
    Credential,
    chain_from_elements,
    chain_to_elements,
    validate_chain,
)
from repro.crypto import signing
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey
from repro.errors import (
    BrokerAuthenticationError,
    CredentialError,
    InvalidSignatureError,
    JxtaError,
)
from repro.jxta.messages import Message
from repro.overlay.control import pack_results, unpack_results
from repro.xmllib import Element

CONNECT_REQ = "secure_connect_req"
CONNECT_RESP = "secure_connect_resp"
CONNECT_FAIL = "secure_connect_fail"


def pack_chain(chain: list[Credential]) -> Element:
    """A credential chain as one wire element (connect + federation frames)."""
    return pack_results(chain_to_elements(chain))


def unpack_chain(holder: Element) -> list[Credential]:
    return chain_from_elements(unpack_results(holder))


def build_challenge(drbg: HmacDrbg, n_bytes: int) -> bytes:
    """Step 2: the client chooses a random challenge."""
    if n_bytes < 16:
        raise ValueError("challenge must be at least 16 bytes")
    return drbg.generate(n_bytes)


def build_connect_request(chall: bytes) -> Message:
    msg = Message(CONNECT_REQ)
    msg.add_bytes("chall", chall)
    return msg


def parse_connect_request(message: Message) -> bytes:
    return wire.decode(message)["chall"]


def build_connect_response(chall: bytes, sid: str, broker_key: PrivateKey,
                           broker_chain: list[Credential],
                           scheme: str, drbg: HmacDrbg | None = None) -> Message:
    """Steps 4-5: sign the challenge and attach sid + credential chain."""
    msg = Message(CONNECT_RESP)
    msg.add_text("sid", sid)
    with obs.span("secure_connect.sign"):
        msg.add_bytes("chall_sig",
                      signing.sign(broker_key, chall, scheme=scheme, drbg=drbg))
    msg.add_text("scheme", scheme)
    msg.add_xml("chain", pack_chain(broker_chain))
    return msg


@dataclass(frozen=True)
class BrokerVerification:
    """What the client learns from a successful secureConnection."""

    sid: str
    broker_credential: Credential
    broker_chain: list[Credential]


def verify_connect_response(message: Message, chall: bytes,
                            trust_anchor: Credential,
                            now: float) -> BrokerVerification:
    """Steps 6-9: validate the broker's credential and challenge signature.

    Raises :class:`BrokerAuthenticationError` on any failure; the paper's
    conclusion for each failing check is preserved in the error text.
    """
    if message.msg_type != CONNECT_RESP:
        raise BrokerAuthenticationError(
            f"unexpected response {message.msg_type!r} to secureConnection")
    try:
        frame = wire.decode(message)
        sid = frame["sid"]
        sig = frame["chall_sig"]
        scheme = frame["scheme"]
        chain = unpack_chain(frame["chain"])
    except (JxtaError, CredentialError) as exc:
        raise BrokerAuthenticationError(f"malformed secureConnection response: {exc}") from exc

    # Step 6: credential authenticity via the administrator's public key.
    try:
        broker_cred = validate_chain(chain, trust_anchor, now)
    except CredentialError as exc:
        raise BrokerAuthenticationError(
            f"Br is not a legitimate broker: {exc}") from exc

    # Step 7: challenge signature under PK_Br (possession of SK_Br).
    try:
        signing.verify(broker_cred.public_key, chall, sig, scheme=scheme)
    except InvalidSignatureError as exc:
        raise BrokerAuthenticationError(
            f"Br does not possess SK_Br and is an impersonator: {exc}") from exc

    if not sid:
        raise BrokerAuthenticationError("broker returned an empty session id")
    # Step 8: both checks succeeded -> legitimate broker.  Step 9: store.
    return BrokerVerification(sid=sid, broker_credential=broker_cred,
                              broker_chain=chain)
