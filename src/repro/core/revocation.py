"""Credential revocation (a §6 "further work" feature).

Broker-issued credentials expire, but between issuance and expiry a key
may be compromised or a user banned.  This module adds a signed
**revocation list**: the issuer (administrator for broker credentials, a
broker for client credentials) publishes an XML document listing revoked
credential subjects; validators consult an up-to-date list before
accepting a chain.

The list is itself an XMLdsig-signed document, distributed through the
same advertisement machinery as everything else — consistent with the
paper's design philosophy of reusing the existing primitives for
security metadata.

Document shape::

    <RevocationList>
      <Issuer>urn:jxta:cbid-...</Issuer>
      <IssuedAt>123.0</IssuedAt>
      <Serial>4</Serial>
      <Revoked><Subject>urn:jxta:cbid-...</Subject>...</Revoked>
      <Signature>...</Signature>
    </RevocationList>
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.credentials import Credential
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.dsig import sign_element, verify_element
from repro.errors import (
    CredentialError,
    InvalidSignatureError,
    SecurityError,
    XMLDsigError,
    XMLError,
)
from repro.jxta.ids import JxtaID, parse_id
from repro.xmllib import Element

REVOCATION_LIST_TAG = "RevocationList"


class RevokedCredentialError(SecurityError):
    """A credential chain contains a revoked subject."""


@dataclass
class RevocationList:
    """A parsed, signature-carrying revocation list."""

    issuer_id: JxtaID
    issued_at: float
    serial: int
    revoked: set[str]
    element: Element = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def build(cls, issuer_key: PrivateKey, issuer_id: JxtaID,
              revoked: set[str], issued_at: float, serial: int,
              drbg: HmacDrbg | None = None) -> "RevocationList":
        element = Element(REVOCATION_LIST_TAG)
        element.add("Issuer", text=str(issuer_id))
        element.add("IssuedAt", text=repr(issued_at))
        element.add("Serial", text=str(serial))
        holder = element.add("Revoked")
        for subject in sorted(revoked):
            holder.add("Subject", text=subject)
        sign_element(element, issuer_key, drbg=drbg)
        return cls(issuer_id=issuer_id, issued_at=issued_at, serial=serial,
                   revoked=set(revoked), element=element)

    @classmethod
    def from_element(cls, element: Element) -> "RevocationList":
        if element.tag != REVOCATION_LIST_TAG:
            raise CredentialError(
                f"expected <{REVOCATION_LIST_TAG}>, got <{element.tag}>")
        try:
            issuer_id = parse_id(element.find_required("Issuer").text, "peer")
            issued_at = float(element.find_required("IssuedAt").text)
            serial = int(element.find_required("Serial").text)
            holder = element.find_required("Revoked")
        except (XMLError, ValueError) as exc:
            raise CredentialError(f"malformed revocation list: {exc}") from exc
        revoked = {child.text for child in holder.findall("Subject")}
        return cls(issuer_id=issuer_id, issued_at=issued_at, serial=serial,
                   revoked=revoked, element=element.deep_copy())

    def verify(self, issuer_key: PublicKey) -> None:
        """Check the issuer signature over the list."""
        try:
            verify_element(self.element, issuer_key)
        except (XMLDsigError, InvalidSignatureError) as exc:
            raise CredentialError(
                f"revocation list signature invalid: {exc}") from exc

    def is_revoked(self, subject_id: JxtaID | str) -> bool:
        return str(subject_id) in self.revoked


class RevocationRegistry:
    """Issuer-side state: the evolving revocation set with serial numbers."""

    def __init__(self, issuer_key: PrivateKey, issuer_id: JxtaID,
                 drbg: HmacDrbg | None = None) -> None:
        self._issuer_key = issuer_key
        self._issuer_id = issuer_id
        self._drbg = drbg
        self._revoked: set[str] = set()
        self._serial = 0

    def revoke(self, credential_or_subject: Credential | JxtaID | str) -> None:
        if isinstance(credential_or_subject, Credential):
            subject = str(credential_or_subject.subject_id)
        else:
            subject = str(credential_or_subject)
        self._revoked.add(subject)

    def reinstate(self, subject: JxtaID | str) -> None:
        self._revoked.discard(str(subject))

    def is_revoked(self, subject: JxtaID | str) -> bool:
        return str(subject) in self._revoked

    @property
    def revoked_count(self) -> int:
        return len(self._revoked)

    def current_list(self, now: float) -> RevocationList:
        """Sign and return the current list (bumps the serial)."""
        self._serial += 1
        return RevocationList.build(
            self._issuer_key, self._issuer_id, self._revoked,
            issued_at=now, serial=self._serial, drbg=self._drbg)


class RevocationChecker:
    """Validator-side: holds the freshest verified list per issuer."""

    def __init__(self) -> None:
        self._lists: dict[str, RevocationList] = {}

    def update(self, rl: RevocationList, issuer_key: PublicKey) -> bool:
        """Verify and install ``rl``; stale serials are ignored.

        Returns ``True`` if the list was accepted as newer.
        """
        rl.verify(issuer_key)
        current = self._lists.get(str(rl.issuer_id))
        if current is not None and current.serial >= rl.serial:
            return False
        self._lists[str(rl.issuer_id)] = rl
        return True

    def check_chain(self, chain: list[Credential]) -> None:
        """Raise :class:`RevokedCredentialError` if any subject in the
        chain appears on its issuer's revocation list."""
        for cred in chain:
            rl = self._lists.get(str(cred.issuer_id))
            if rl is not None and rl.is_revoked(cred.subject_id):
                raise RevokedCredentialError(
                    f"credential for {cred.subject_name!r} "
                    f"({cred.subject_id}) was revoked by its issuer")

    def known_issuers(self) -> list[str]:
        return sorted(self._lists)
