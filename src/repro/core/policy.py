"""Security policy: the tunables of the secure extension.

The paper fixes one concrete instantiation (RSA + wrapped-key encryption
+ XMLdsig); the policy object makes every choice explicit so the ablation
benchmarks (DESIGN.md A2/A4 and §5's cost study) can vary them without
touching protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto import envelope, signing
from repro.errors import PolicyError


@dataclass(frozen=True)
class SecurityPolicy:
    """Knobs of the secure primitives."""

    #: RSA modulus size for client/broker keys
    rsa_bits: int = 1024
    #: symmetric suite inside E_PK envelopes
    envelope_suite: str = envelope.DEFAULT_SUITE
    #: RSA key-wrap algorithm inside E_PK envelopes
    envelope_wrap: str = envelope.WRAP_OAEP
    #: signature scheme for S_SK
    signature_scheme: str = signing.DEFAULT_SCHEME
    #: lifetime of broker-issued client credentials (virtual seconds)
    credential_lifetime: float = 86400.0
    #: challenge size for secureConnection (bytes)
    challenge_bytes: int = 32
    #: cache signed-advertisement validation results by (peer, group)
    cache_validated_advs: bool = True
    #: LRU bound on the validated-advertisement cache (entries)
    adv_cache_entries: int = 256
    #: refuse plain primitives once the secure session is up
    enforce_secure_messaging: bool = False
    #: fast path: group fan-out uses one multi-recipient envelope
    #: (1 sign + 1 symmetric pass + N wraps instead of N of each)
    enable_seal_many: bool = True
    #: fast path: sealed sends establish + ride pair-wise resumption
    #: sessions (steady state: 0 RSA ops per message)
    enable_resumption: bool = True
    #: resumption session lifetime (virtual seconds)
    resume_ttl: float = 300.0
    #: frames one resumption session may carry before re-keying
    resume_max_uses: int = 256
    #: LRU bound on live pair-wise sessions (both sender and receiver)
    resume_max_peers: int = 1024
    #: broker-mediated group fan-out: the sender seals once under the
    #: group's epoch key and its home broker relays along the federation
    #: (off = the paper's sender-iterated secureMsgPeerGroup loop)
    enable_group_cast: bool = False
    #: epoch keys each holder retains per group (older epochs become
    #: undecryptable — forward secrecy against departed members)
    group_epoch_history: int = 8
    #: store-and-forward frames a broker retains per group for replay
    #: to members reconnecting after churn (0 disables replay)
    group_replay_depth: int = 64
    #: retention of store-and-forward frames (virtual seconds)
    group_replay_ttl: float = 600.0

    def validate(self) -> "SecurityPolicy":
        if self.envelope_suite not in envelope.SUITES:
            raise PolicyError(f"unknown envelope suite {self.envelope_suite!r}")
        if self.envelope_wrap not in (envelope.WRAP_OAEP, envelope.WRAP_V15):
            raise PolicyError(f"unknown wrap algorithm {self.envelope_wrap!r}")
        if self.signature_scheme not in (signing.SCHEME_PSS, signing.SCHEME_V15):
            raise PolicyError(f"unknown signature scheme {self.signature_scheme!r}")
        if self.challenge_bytes < 16:
            raise PolicyError("challenges below 16 bytes are guessable")
        if self.credential_lifetime <= 0:
            raise PolicyError("credential lifetime must be positive")
        if self.adv_cache_entries < 1:
            raise PolicyError("advertisement cache needs at least one entry")
        if self.resume_ttl <= 0:
            raise PolicyError("resumption TTL must be positive")
        if self.resume_max_uses < 1:
            raise PolicyError("resumption use budget must be at least 1")
        if self.resume_max_peers < 1:
            raise PolicyError("resumption peer bound must be at least 1")
        if self.group_epoch_history < 1:
            raise PolicyError("epoch history must retain at least one epoch")
        if self.group_replay_depth < 0:
            raise PolicyError("replay depth cannot be negative")
        if self.group_replay_ttl <= 0:
            raise PolicyError("replay TTL must be positive")
        return self

    def with_(self, **changes) -> "SecurityPolicy":
        return replace(self, **changes).validate()


#: the paper's configuration, modern defaults
DEFAULT_POLICY = SecurityPolicy().validate()

#: era-faithful 2009 JCE-style configuration (PKCS#1 v1.5 + AES-CBC);
#: the paper's messaging is stateless, so both fast paths stay off
ERA_2009_POLICY = SecurityPolicy(
    envelope_suite="aes128-cbc",
    envelope_wrap=envelope.WRAP_V15,
    signature_scheme=signing.SCHEME_V15,
    enable_seal_many=False,
    enable_resumption=False,
).validate()
