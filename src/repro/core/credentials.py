"""Credentials: Cred_i^j — peer *i*'s credential issued by *j* (§4 notation).

A credential is an XML document binding a subject peer id (a CBID) and a
human-readable name to a public key, signed by the issuer with an
enveloped XMLdsig signature:

.. code-block:: xml

    <Credential>
      <Subject>urn:jxta:cbid-...</Subject>
      <SubjectName>alice</SubjectName>
      <Issuer>urn:jxta:cbid-...</Issuer>
      <IssuerName>broker-0</IssuerName>
      <PublicKey>{"kty":"RSA",...}</PublicKey>
      <NotBefore>0.0</NotBefore>
      <NotAfter>86400.0</NotAfter>
      <Signature>...</Signature>
    </Credential>

Trust is a two-level chain exactly as §4.1 sets it up: the administrator
self-signs ``Cred_Adm^Adm``; brokers hold ``Cred_Br^Adm``; clients earn
``Cred_Cl^Br`` from secureLogin.  Subjects are **crypto-based ids**: a
credential whose subject id is not the CBID of its public key is invalid
by construction, independent of any signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import public_key_from_text, public_key_to_text
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.dsig import sign_element, verify_element
from repro.errors import (
    CBIDMismatchError,
    CredentialError,
    InvalidKeyError,
    InvalidSignatureError,
    XMLDsigError,
    XMLError,
)
from repro.jxta.ids import JxtaID, cbid_from_key, matches_key, parse_id
from repro.xmllib import Element

CREDENTIAL_TAG = "Credential"


@dataclass(frozen=True)
class Credential:
    """An issued, signed identity credential."""

    subject_id: JxtaID
    subject_name: str
    issuer_id: JxtaID
    issuer_name: str
    public_key: PublicKey
    not_before: float
    not_after: float
    #: the signed XML document (kept verbatim so signatures stay valid)
    element: Element

    @property
    def self_signed(self) -> bool:
        return self.subject_id == self.issuer_id

    # -- codec ---------------------------------------------------------------

    @classmethod
    def from_element(cls, element: Element) -> "Credential":
        """Parse (without verifying) a credential document."""
        if element.tag != CREDENTIAL_TAG:
            raise CredentialError(f"expected <{CREDENTIAL_TAG}>, got <{element.tag}>")
        try:
            subject_id = parse_id(element.find_required("Subject").text, "peer")
            issuer_id = parse_id(element.find_required("Issuer").text, "peer")
            public_key = public_key_from_text(element.find_required("PublicKey").text)
            not_before = float(element.find_required("NotBefore").text)
            not_after = float(element.find_required("NotAfter").text)
        except (XMLError, InvalidKeyError, ValueError) as exc:
            raise CredentialError(f"malformed credential: {exc}") from exc
        return cls(
            subject_id=subject_id,
            subject_name=element.findtext("SubjectName"),
            issuer_id=issuer_id,
            issuer_name=element.findtext("IssuerName"),
            public_key=public_key,
            not_before=not_before,
            not_after=not_after,
            element=element.deep_copy(),
        )

    def to_element(self) -> Element:
        return self.element.deep_copy()

    # -- verification ------------------------------------------------------------

    def check_validity_window(self, now: float) -> None:
        if now < self.not_before:
            raise CredentialError(
                f"credential for {self.subject_name!r} not yet valid "
                f"(now={now}, not_before={self.not_before})")
        if now > self.not_after:
            raise CredentialError(
                f"credential for {self.subject_name!r} expired "
                f"(now={now}, not_after={self.not_after})")

    def check_cbid(self) -> None:
        """The subject id must be the CBID of the enclosed public key."""
        if not matches_key(self.subject_id, self.public_key):
            raise CBIDMismatchError(
                f"credential subject {self.subject_id} is not the CBID of "
                f"its public key")

    def verify(self, issuer_key: PublicKey, now: float) -> None:
        """Full check: CBID binding, validity window, issuer signature."""
        self.check_cbid()
        self.check_validity_window(now)
        try:
            verify_element(self.element, issuer_key)
        except (XMLDsigError, InvalidSignatureError) as exc:
            raise CredentialError(
                f"credential for {self.subject_name!r} has an invalid "
                f"issuer signature: {exc}") from exc


def issue_credential(issuer_key: PrivateKey, issuer_id: JxtaID, issuer_name: str,
                     subject_key: PublicKey, subject_name: str,
                     not_before: float, not_after: float,
                     drbg: HmacDrbg | None = None) -> Credential:
    """Create and sign a credential for ``subject_key``.

    The subject id is *derived*, never supplied: it is the CBID of the
    subject's public key, which is what makes impersonation by id
    unforgeable without the matching private key.
    """
    if not_after <= not_before:
        raise CredentialError("credential validity window is empty")
    subject_id = cbid_from_key(subject_key)
    element = Element(CREDENTIAL_TAG)
    element.add("Subject", text=str(subject_id))
    element.add("SubjectName", text=subject_name)
    element.add("Issuer", text=str(issuer_id))
    element.add("IssuerName", text=issuer_name)
    element.add("PublicKey", text=public_key_to_text(subject_key))
    element.add("NotBefore", text=repr(not_before))
    element.add("NotAfter", text=repr(not_after))
    sign_element(element, issuer_key, drbg=drbg)
    return Credential.from_element(element)


def self_signed_credential(keys_private: PrivateKey, keys_public: PublicKey,
                           name: str, not_before: float, not_after: float,
                           drbg: HmacDrbg | None = None) -> Credential:
    """The administrator's trust root: Cred_Adm^Adm."""
    own_id = cbid_from_key(keys_public)
    return issue_credential(
        issuer_key=keys_private, issuer_id=own_id, issuer_name=name,
        subject_key=keys_public, subject_name=name,
        not_before=not_before, not_after=not_after, drbg=drbg)


# ---------------------------------------------------------------------------
# Credential chains
# ---------------------------------------------------------------------------

def validate_chain(chain: list[Credential], trust_anchor: Credential,
                   now: float) -> Credential:
    """Validate a leaf-first credential chain against the trust anchor.

    ``chain[0]`` is the end entity; each ``chain[i]`` must be signed by
    the key in ``chain[i+1]``; the last link must be signed by the trust
    anchor (the administrator's self-signed credential).  Returns the leaf
    credential on success.
    """
    if not chain:
        raise CredentialError("empty credential chain")
    if len(chain) > 4:
        raise CredentialError(f"credential chain too long ({len(chain)})")
    anchor_key = trust_anchor.public_key
    for i, cred in enumerate(chain):
        issuer_key = chain[i + 1].public_key if i + 1 < len(chain) else anchor_key
        cred.verify(issuer_key, now)
        if i + 1 < len(chain) and cred.issuer_id != chain[i + 1].subject_id:
            raise CredentialError(
                f"chain link {i}: issuer id {cred.issuer_id} does not match "
                f"the next credential's subject {chain[i + 1].subject_id}")
    last = chain[-1]
    if last.issuer_id != trust_anchor.subject_id:
        raise CredentialError(
            f"chain root issuer {last.issuer_id} is not the trust anchor "
            f"{trust_anchor.subject_id}")
    return chain[0]


def chain_to_elements(chain: list[Credential]) -> list[Element]:
    return [c.to_element() for c in chain]


def chain_from_elements(elements: list[Element]) -> list[Credential]:
    return [Credential.from_element(e) for e in elements]
