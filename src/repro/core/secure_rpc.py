"""Shared request/response security pattern for the extended primitives.

Section 6 of the paper: "once the building blocks for a secure system
have been established ... it is feasible to extend security to every
single primitive.  Any message exchange can be secured using an approach
similar to that defined for messenger primitives."  This module is that
generalization: a signed request document with the requester's credential
chain attached, sealed to the responder; and a signed response sealed
back to the requester.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.credentials import (
    Credential,
    chain_from_elements,
    validate_chain,
)
from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.crypto import envelope, signing
from repro.crypto import resume as resume_mod
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import (
    CredentialError,
    DecryptionError,
    InvalidSignatureError,
    JxtaError,
    SecurityError,
    UnknownSessionError,
    XMLDsigError,
    XMLError,
    XMLParseError,
)
from repro.dsig import sign_element, verify_element
from repro.xmllib import Element, parse, serialize

REQUEST_TAG = "SecureRequest"
RESPONSE_TAG = "SecureResponse"
CHAIN_TAG = "CredentialChain"


def seal_signed_request(body: Element, keystore: Keystore,
                        recipient_key: PublicKey, policy: SecurityPolicy,
                        drbg: HmacDrbg, aad: bytes) -> dict:
    """Sign ``body`` with our key, attach our chain, seal to recipient."""
    if not keystore.chain:
        raise SecurityError("cannot issue a secure request without a credential")
    sign_element(body, keystore.keys.private,
                 sig_alg=policy.signature_scheme, drbg=drbg)
    wrapper = Element(REQUEST_TAG)
    wrapper.append(body)
    chain_holder = wrapper.add(CHAIN_TAG)
    for cred in keystore.chain:
        chain_holder.append(cred.to_element())
    return envelope.seal(recipient_key, serialize(wrapper).encode("utf-8"),
                         drbg=drbg, suite=policy.envelope_suite,
                         wrap=policy.envelope_wrap, aad=aad)


def seal_signed_request_fast(body: Element, keystore: Keystore,
                             recipient_key: PublicKey, policy: SecurityPolicy,
                             drbg: HmacDrbg, aad: bytes
                             ) -> tuple[dict, dict[str, bytes]]:
    """Like :func:`seal_signed_request`, but the envelope is *resumable*:
    it wraps a fresh resumption seed for the recipient, and the signed
    body commits to it (so the responder registers only seeds the
    requester's signature vouches for).  Returns the envelope plus the
    ``{fingerprint: seed}`` map for the sender cache."""
    if not keystore.chain:
        raise SecurityError("cannot issue a secure request without a credential")
    seeds = envelope.mint_seeds([recipient_key], drbg)
    resume_mod.add_seed_commitments(body, seeds)
    sign_element(body, keystore.keys.private,
                 sig_alg=policy.signature_scheme, drbg=drbg)
    wrapper = Element(REQUEST_TAG)
    wrapper.append(body)
    chain_holder = wrapper.add(CHAIN_TAG)
    for cred in keystore.chain:
        chain_holder.append(cred.to_element())
    sealed = envelope.seal_many(
        [recipient_key], serialize(wrapper).encode("utf-8"), drbg=drbg,
        suite=policy.envelope_suite, wrap=policy.envelope_wrap, aad=aad,
        seeds=seeds)
    return sealed.envelope, sealed.seeds


def seal_resumed_body(tag: str, body: Element,
                      session: resume_mod.ResumeSession, aad: bytes) -> dict:
    """Seal ``body`` (wrapped in ``<tag>``) on an established session —
    no signature, no chain, zero RSA operations."""
    wrapper = Element(tag)
    wrapper.append(body)
    return resume_mod.seal_resumed(
        session, serialize(wrapper).encode("utf-8"), aad=aad)


def open_resumed_body(env: dict, store: resume_mod.ReceiverResumeStore,
                      aad: bytes, now: float, wrapper_tag: str,
                      expected_body_tag: str) -> tuple[Element, object]:
    """Open a resumed frame; returns (body, bound sender identity).

    The caller MUST hold the body to the same authorization checks the
    session's establishing request passed, using the returned identity
    (the requester/responder credential registered with the session).
    """
    try:
        plain, identity = store.open(env, aad, now)
        wrapper = parse(plain.decode("utf-8"))
        if wrapper.tag != wrapper_tag:
            raise SecurityError(f"unexpected resumed wrapper <{wrapper.tag}>")
        body = wrapper.find_required(expected_body_tag)
    except UnknownSessionError:
        # Recoverable: the caller can tell the peer to re-key, so the
        # session-loss signal must survive untranslated.
        raise
    except (DecryptionError, XMLParseError, XMLError,
            UnicodeDecodeError) as exc:
        raise SecurityError(f"undecryptable resumed request: {exc}") from exc
    return body, identity


def _check_wrapped_seed(signed_body: Element, own_key: PublicKey,
                        seed: bytes | None) -> None:
    """Reject a wrapped resumption seed the just-verified signature does
    not commit to for *our* key — the re-wrapping defence.  Call only
    after ``verify_element(signed_body, ...)`` succeeded."""
    if seed is None:
        return
    if not resume_mod.check_seed_commitment(
            signed_body, own_key.fingerprint().hex(), seed):
        obs.get_registry().incr("crypto.resume.commit_mismatch")
        raise SecurityError(
            "resumption seed is not covered by the peer's signature")


@dataclass(frozen=True)
class OpenedRequest:
    body: Element
    requester: Credential
    chain: list[Credential]
    #: resumption seed the requester wrapped for us (resumable envelopes)
    resume_seed: bytes | None = None
    #: envelope suite (needed to derive a session from ``resume_seed``)
    suite: str = ""


def open_signed_request(env: dict, keystore: Keystore, now: float,
                        aad: bytes, expected_body_tag: str) -> OpenedRequest:
    """Decrypt, validate the requester's chain, verify the body signature.

    Raises :class:`SecurityError` subclasses on any check failure.
    """
    anchor = keystore.require_anchor()
    try:
        opened_env = envelope.open_detailed(keystore.keys.private, env, aad=aad)
        wrapper = parse(opened_env.plaintext.decode("utf-8"))
    except (DecryptionError, XMLParseError, UnicodeDecodeError) as exc:
        raise SecurityError(f"undecryptable secure request: {exc}") from exc
    try:
        body = wrapper.find_required(expected_body_tag)
        chain_holder = wrapper.find_required(CHAIN_TAG)
        chain = chain_from_elements(list(chain_holder.children))
    except (XMLError, CredentialError) as exc:
        raise SecurityError(f"malformed secure request: {exc}") from exc
    requester = validate_chain(chain, anchor, now)
    try:
        verify_element(body, requester.public_key)
    except (XMLDsigError, InvalidSignatureError) as exc:
        raise SecurityError(f"secure request signature invalid: {exc}") from exc
    _check_wrapped_seed(body, keystore.keys.public, opened_env.resume_seed)
    return OpenedRequest(body=body, requester=requester, chain=chain,
                         resume_seed=opened_env.resume_seed,
                         suite=opened_env.suite)


def seal_signed_response(body: Element, responder_key: PrivateKey,
                         requester_key: PublicKey, policy: SecurityPolicy,
                         drbg: HmacDrbg, aad: bytes) -> dict:
    """Sign ``body`` as the responder and seal it back to the requester."""
    sign_element(body, responder_key,
                 sig_alg=policy.signature_scheme, drbg=drbg)
    wrapper = Element(RESPONSE_TAG)
    wrapper.append(body)
    return envelope.seal(requester_key, serialize(wrapper).encode("utf-8"),
                         drbg=drbg, suite=policy.envelope_suite,
                         wrap=policy.envelope_wrap, aad=aad)


def seal_signed_response_fast(body: Element, responder_key: PrivateKey,
                              requester_key: PublicKey, policy: SecurityPolicy,
                              drbg: HmacDrbg, aad: bytes
                              ) -> tuple[dict, dict[str, bytes]]:
    """Like :func:`seal_signed_response` but resumable: wraps a seed the
    signed body commits to."""
    seeds = envelope.mint_seeds([requester_key], drbg)
    resume_mod.add_seed_commitments(body, seeds)
    sign_element(body, responder_key,
                 sig_alg=policy.signature_scheme, drbg=drbg)
    wrapper = Element(RESPONSE_TAG)
    wrapper.append(body)
    sealed = envelope.seal_many(
        [requester_key], serialize(wrapper).encode("utf-8"), drbg=drbg,
        suite=policy.envelope_suite, wrap=policy.envelope_wrap, aad=aad,
        seeds=seeds)
    return sealed.envelope, sealed.seeds


def open_signed_response(env: dict, own_key: PrivateKey,
                         responder_key: PublicKey, aad: bytes,
                         expected_body_tag: str) -> Element:
    """Decrypt a response and verify the responder's signature."""
    body, _, _ = open_signed_response_detailed(
        env, own_key, responder_key, aad, expected_body_tag)
    return body


def open_signed_response_detailed(env: dict, own_key: PrivateKey,
                                  responder_key: PublicKey, aad: bytes,
                                  expected_body_tag: str
                                  ) -> tuple[Element, bytes | None, str]:
    """Like :func:`open_signed_response`, also surfacing the resumption
    seed (and suite) when the responder made the envelope resumable."""
    try:
        opened_env = envelope.open_detailed(own_key, env, aad=aad)
        wrapper = parse(opened_env.plaintext.decode("utf-8"))
        body = wrapper.find_required(expected_body_tag)
    except (DecryptionError, XMLParseError, XMLError, UnicodeDecodeError, JxtaError) as exc:
        raise SecurityError(f"undecryptable secure response: {exc}") from exc
    try:
        verify_element(body, responder_key)
    except (XMLDsigError, InvalidSignatureError) as exc:
        raise SecurityError(f"secure response signature invalid: {exc}") from exc
    _check_wrapped_seed(body, own_key.public_key(), opened_env.resume_seed)
    return body, opened_env.resume_seed, opened_env.suite
