"""Secure group-management primitives (§6 applied to the group set).

The plain group functions authenticate requests *by sender address* —
fine against outsiders on a trusted LAN, worthless against an insider
injecting frames with a forged source.  The secure variants carry a
signed request with the requester's credential chain, sealed to the
broker; the broker acts only for the authenticated subject, never the
frame address.

One generic exchange covers create/join/leave::

    Cl -> Br : { E_PK_Br( S_SK_Cl(GroupOp{op, group}), chain_Cl ) }
    Cl <- Br : { E_PK_Cl( S_SK_Br(GroupOpResult) ) }
"""

from __future__ import annotations

from repro import wire
from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.core.secure_rpc import (
    open_signed_request,
    open_signed_response,
    seal_signed_request,
    seal_signed_response,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey
from repro.errors import JxtaError, SecurityError
from repro.jxta.messages import Message
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element

GROUP_OP_REQ = "secure_group_op_req"
GROUP_OP_RESP = "secure_group_op_resp"
GROUP_OP_FAIL = "secure_group_op_fail"

EPOCH_REQ = "group_epoch_req"
EPOCH_OK = "group_epoch_ok"
EPOCH_FAIL = "group_epoch_fail"

_AAD_REQ = b"jxta-overlay-secure-group-req"
_AAD_RESP = b"jxta-overlay-secure-group-resp"
_AAD_EPOCH_REQ = b"jxta-overlay-group-epoch-req"
_AAD_EPOCH_RESP = b"jxta-overlay-group-epoch-resp"

VALID_OPS = ("create", "join", "leave")


def build_group_op(op: str, group: str, keystore: Keystore,
                   broker_key: PublicKey, policy: SecurityPolicy,
                   drbg: HmacDrbg, now: float,
                   description: str = "") -> tuple[Message, str]:
    """Returns (request message, nonce) — the nonce binds the response."""
    if op not in VALID_OPS:
        raise SecurityError(f"unknown group operation {op!r}")
    nonce = b64encode(drbg.generate(16))
    body = Element("GroupOp")
    body.add("Op", text=op)
    body.add("Group", text=group)
    body.add("Description", text=description)
    body.add("RequesterId", text=str(keystore.cbid))
    body.add("Nonce", text=nonce)
    body.add("Timestamp", text=repr(now))
    env = seal_signed_request(body, keystore, broker_key, policy, drbg,
                              _AAD_REQ)
    msg = Message(GROUP_OP_REQ)
    msg.add_json("envelope", env)
    return msg, nonce


def handle_group_op(message: Message, broker) -> Message:
    """Broker side: authenticate the request, then run the operation.

    ``broker`` is a :class:`repro.core.secure_broker.SecureBroker`; the
    import is avoided to keep the dependency one-way.
    """
    metrics = broker.metrics

    def fail(reason: str) -> Message:
        metrics.incr("fn.secure_group.refused")
        out = Message(GROUP_OP_FAIL)
        out.add_text("reason", reason)
        return out

    try:
        opened = open_signed_request(
            wire.decode(message)["envelope"], broker.keystore,
            broker.clock.now, _AAD_REQ, "GroupOp")
    except (SecurityError, JxtaError) as exc:
        return fail(f"request rejected: {exc}")
    subject = str(opened.requester.subject_id)
    if broker.revocations.is_revoked(subject):
        return fail("subject credential is revoked")
    session = broker.connected.get(subject)
    if session is None or session.username != opened.requester.subject_name:
        return fail("no matching authenticated session")

    body = opened.body
    op = body.findtext("Op")
    group_name = body.findtext("Group")
    if not group_name:
        return fail("group name must be non-empty")

    import json

    if op == "create":
        if group_name in broker.groups:
            return fail(f"group {group_name!r} already exists")
        from repro.jxta.advertisements import GroupAdvertisement
        from repro.jxta.ids import random_group_id

        group = broker.groups.create(
            random_group_id(broker.control.drbg), group_name,
            body.findtext("Description"))
        broker.database.register_group(group_name)
        broker.database.assign_group(session.username, group_name)
        group.add_member(subject)
        broker._group_membership_changed(group_name, joined=subject)
        adv = GroupAdvertisement(
            peer_id=broker.peer_id, group_id=group.group_id,
            name=group_name, description=body.findtext("Description"))
        broker.federation.route_publish(adv.to_element())
        members = sorted(group.members)
    elif op == "join":
        group = broker.groups.get_or_none(group_name)
        if (group is None and broker.policy.enable_group_cast
                and group_name in broker.database.known_groups()):
            # Shard-aware membership: the group exists network-wide (the
            # shared admin database registered it at creation), so
            # materialize this broker's local shard of it — the cast
            # relay then reaches members joined through any broker.
            from repro.jxta.ids import random_group_id

            group = broker.groups.create(
                random_group_id(broker.control.drbg), group_name)
        if group is None:
            return fail(f"unknown group {group_name!r}")
        group.add_member(subject)
        broker.database.assign_group(session.username, group_name)
        broker._group_membership_changed(group_name, joined=subject)
        joined = Message("peer_joined")
        joined.add_text("group", group_name)
        joined.add_text("peer_id", subject)
        joined.add_text("username", session.username)
        broker._push_to_group_members(group_name, joined, exclude_peer=subject)
        members = sorted(group.members)
    elif op == "leave":
        group = broker.groups.get_or_none(group_name)
        if group is None:
            return fail(f"unknown group {group_name!r}")
        group.remove_member(subject)
        broker.database.revoke_group(session.username, group_name)
        broker._group_membership_changed(group_name, left=subject)
        left = Message("peer_left")
        left.add_text("group", group_name)
        left.add_text("peer_id", subject)
        broker._push_to_group_members(group_name, left, exclude_peer=subject)
        members = sorted(group.members)
    else:
        return fail(f"unknown group operation {op!r}")

    metrics.incr(f"fn.secure_group.{op}")
    resp_body = Element("GroupOpResult")
    resp_body.add("Op", text=op)
    resp_body.add("Group", text=group_name)
    resp_body.add("Nonce", text=body.findtext("Nonce"))
    resp_body.add("Members", text=json.dumps(members))
    env = seal_signed_response(resp_body, broker.keystore.keys.private,
                               opened.requester.public_key, broker.policy,
                               broker.control.drbg, _AAD_RESP)
    out = Message(GROUP_OP_RESP)
    out.add_json("envelope", env)
    return out


def build_epoch_fetch(group: str, keystore: Keystore, broker_key: PublicKey,
                      policy: SecurityPolicy, drbg: HmacDrbg,
                      now: float) -> tuple[Message, str]:
    """Signed request for the group's epoch keys (group-cast path).

    Returns (request message, nonce); the nonce binds the response.
    """
    nonce = b64encode(drbg.generate(16))
    body = Element("GroupEpochFetch")
    body.add("Group", text=group)
    body.add("RequesterId", text=str(keystore.cbid))
    body.add("Nonce", text=nonce)
    body.add("Timestamp", text=repr(now))
    env = seal_signed_request(body, keystore, broker_key, policy, drbg,
                              _AAD_EPOCH_REQ)
    msg = Message(EPOCH_REQ)
    msg.add_json("envelope", env)
    return msg, nonce


def handle_epoch_fetch(message: Message, broker) -> Message:
    """Broker side: hand an *entitled* member its epoch secrets.

    The checks mirror :func:`handle_group_op` — validated chain, live
    session, revocation — plus group membership; the secrets handed out
    start at the member's join epoch (never earlier), enforced by the
    broker's :class:`~repro.overlay.groupcast.Groupcast` state.
    """
    import json

    metrics = broker.metrics

    def fail(reason: str) -> Message:
        metrics.incr("fn.group_epoch.refused")
        out = Message(EPOCH_FAIL)
        out.add_text("reason", reason)
        return out

    if not broker.policy.enable_group_cast:
        return fail("group cast is disabled")
    try:
        opened = open_signed_request(
            wire.decode(message)["envelope"], broker.keystore,
            broker.clock.now, _AAD_EPOCH_REQ, "GroupEpochFetch")
    except (SecurityError, JxtaError) as exc:
        return fail(f"request rejected: {exc}")
    subject = str(opened.requester.subject_id)
    if broker.revocations.is_revoked(subject):
        return fail("subject credential is revoked")
    session = broker.connected.get(subject)
    if session is None or session.username != opened.requester.subject_name:
        return fail("no matching authenticated session")
    body = opened.body
    group_name = body.findtext("Group")
    record = broker.groups.get_or_none(group_name)
    if record is None or not record.has_member(subject):
        return fail(f"not a member of {group_name!r}")
    secrets = broker.groupcast.secrets_for(group_name, subject)
    if not secrets:
        return fail(f"no epoch established for {group_name!r}")
    metrics.incr("fn.group_epoch.served")
    resp_body = Element("GroupEpochKeys")
    resp_body.add("Group", text=group_name)
    resp_body.add("Epoch", text=str(max(secrets)))
    resp_body.add("Nonce", text=body.findtext("Nonce"))
    resp_body.add("Secrets", text=json.dumps(
        {str(epoch): b64encode(secret) for epoch, secret in secrets.items()}))
    env = seal_signed_response(resp_body, broker.keystore.keys.private,
                               opened.requester.public_key, broker.policy,
                               broker.control.drbg, _AAD_EPOCH_RESP)
    out = Message(EPOCH_OK)
    out.add_json("envelope", env)
    return out


def parse_epoch_response(message: Message, keystore: Keystore,
                         broker_key: PublicKey, expected_nonce: str,
                         policy: SecurityPolicy) -> dict[int, bytes]:
    """Client side: unseal the epoch keys; returns {epoch: secret}."""
    import json

    if message.msg_type == EPOCH_FAIL:
        raise SecurityError(
            f"group epoch fetch refused: "
            f"{wire.decode(message).get('reason', '')}")
    if message.msg_type != EPOCH_OK:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    body = open_signed_response(
        wire.decode(message)["envelope"], keystore.keys.private, broker_key,
        _AAD_EPOCH_RESP, "GroupEpochKeys")
    if body.findtext("Nonce") != expected_nonce:
        raise SecurityError("group epoch response nonce mismatch")
    return {int(epoch): b64decode(secret)
            for epoch, secret in json.loads(body.findtext("Secrets")).items()}


def parse_group_op_response(message: Message, keystore: Keystore,
                            broker_key: PublicKey, expected_nonce: str,
                            policy: SecurityPolicy) -> list[str]:
    """Client side: unseal, verify the broker signature and the nonce."""
    if message.msg_type == GROUP_OP_FAIL:
        raise SecurityError(
            f"secure group operation refused: "
            f"{wire.decode(message).get('reason', '')}")
    if message.msg_type != GROUP_OP_RESP:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    body = open_signed_response(
        wire.decode(message)["envelope"], keystore.keys.private, broker_key,
        _AAD_RESP, "GroupOpResult")
    if body.findtext("Nonce") != expected_nonce:
        raise SecurityError("group operation response nonce mismatch")
    import json

    return list(json.loads(body.findtext("Members")))
