"""Secure executable primitives (the §6 further-work set).

"Of special note are those of the executable set of primitives, related
to remote code execution."  The secure variant refuses to execute
anything unless the request (a) decrypts for us, (b) carries a credential
chain rooted at the administrator, (c) is signed by the credential's key,
and (d) the requesting *username* passes the executor's ACL.
"""

from __future__ import annotations

from repro import wire
from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.core.secure_rpc import (
    open_signed_request,
    open_signed_response,
    seal_signed_request,
    seal_signed_response,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey
from repro.errors import JxtaError, SecurityError
from repro.jxta.messages import Message
from repro.sim.metrics import Metrics
from repro.utils.encoding import b64encode
from repro.xmllib import Element

TASK_REQ = "secure_task_req"
TASK_RESP = "secure_task_resp"
TASK_FAIL = "secure_task_fail"

_AAD_REQ = b"jxta-overlay-secure-task-req"
_AAD_RESP = b"jxta-overlay-secure-task-resp"


def build_task_request(task_name: str, argument: str, keystore: Keystore,
                       executor_key: PublicKey, policy: SecurityPolicy,
                       drbg: HmacDrbg, now: float) -> Message:
    body = Element("TaskRequest")
    body.add("Task", text=task_name)
    body.add("Argument", text=argument)
    body.add("RequesterId", text=str(keystore.cbid))
    body.add("Nonce", text=b64encode(drbg.generate(16)))
    body.add("Timestamp", text=repr(now))
    env = seal_signed_request(body, keystore, executor_key, policy, drbg, _AAD_REQ)
    msg = Message(TASK_REQ)
    msg.add_json("envelope", env)
    return msg


def handle_task_request(message: Message, keystore: Keystore,
                        tasks: dict, acl: set[str] | None,
                        policy: SecurityPolicy, drbg: HmacDrbg,
                        now: float, metrics: Metrics) -> Message:
    """Executor side: authenticate, authorize, execute, seal the result."""
    def fail(reason: str) -> Message:
        metrics.incr("secure_task.refused")
        out = Message(TASK_FAIL)
        out.add_text("reason", reason)
        return out

    try:
        opened = open_signed_request(
            wire.decode(message)["envelope"], keystore, now, _AAD_REQ,
            "TaskRequest")
    except (SecurityError, JxtaError) as exc:
        return fail(f"request rejected: {exc}")
    body = opened.body
    if body.findtext("RequesterId") != str(opened.requester.subject_id):
        return fail("requester id does not match the credential")
    username = opened.requester.subject_name
    if acl is not None and username not in acl:
        metrics.incr("secure_task.unauthorized")
        return fail(f"user {username!r} is not authorized to run tasks here")
    task_name = body.findtext("Task")
    fn = tasks.get(task_name)
    if fn is None:
        return fail(f"unknown task {task_name!r}")
    try:
        result = fn(body.findtext("Argument"))
    except Exception as exc:  # task crash must not kill the peer
        return fail(f"task raised: {exc}")
    resp_body = Element("TaskResponse")
    resp_body.add("Task", text=task_name)
    resp_body.add("Nonce", text=body.findtext("Nonce"))
    resp_body.add("Result", text=result)
    env = seal_signed_response(resp_body, keystore.keys.private,
                               opened.requester.public_key, policy, drbg,
                               _AAD_RESP)
    metrics.incr("secure_task.executed")
    out = Message(TASK_RESP)
    out.add_json("envelope", env)
    return out


def parse_task_response(message: Message, keystore: Keystore,
                        executor_key: PublicKey,
                        policy: SecurityPolicy) -> str:
    if message.msg_type == TASK_FAIL:
        raise SecurityError(
            f"secure task refused: {wire.decode(message).get('reason', '')}")
    if message.msg_type != TASK_RESP:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    body = open_signed_response(
        wire.decode(message)["envelope"], keystore.keys.private, executor_key,
        _AAD_RESP, "TaskResponse")
    return body.findtext("Result")
