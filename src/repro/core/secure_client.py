"""The security-aware client peer: the paper's extended primitives.

:class:`SecureClientPeer` is a stock Client Module plus the §4 extension:

* ``secure_connect`` — challenge/response broker authentication,
* ``secure_login`` — replay-protected, signed + encrypted login that
  yields a broker-issued credential ``Cred_Cl^Br``,
* **signed advertisements** — every advertisement this client publishes
  carries an XMLdsig signature and the credential chain (transparent key
  distribution),
* ``secure_msg_peer`` / ``secure_msg_peer_group`` — stateless encrypted
  and signed messaging (§4.3),
* ``secure_publish_file`` / ``secure_request_file`` and
  ``secure_submit_task`` — the further-work extensions of §6, built from
  the same building blocks ("any message exchange can be secured using an
  approach similar to that defined for messenger primitives").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro import obs, perf, wire
from repro.core import secure_connection as sc
from repro.core import secure_exec as sx
from repro.core import secure_filesharing as sf
from repro.core import secure_login as sl
from repro.core import secure_messaging as sm
from repro.core.credentials import Credential
from repro.core.keystore import Keystore
from repro.core.revocation import RevocationChecker, RevocationList
from repro.core.policy import DEFAULT_POLICY, SecurityPolicy
from repro.core.signed_advertisement import (
    AdvertisementValidator,
    ValidatedAdvertisement,
    sign_advertisement,
)
from repro.crypto import groupkey
from repro.crypto import resume as resume_mod
from repro.crypto.drbg import HmacDrbg
from repro.errors import (
    BrokerAuthenticationError,
    NetworkError,
    CredentialError,
    DiscoveryError,
    JxtaError,
    NotConnectedError,
    OverlayError,
    PolicyError,
    PrimitiveError,
    SecurityError,
    TamperedMessageError,
    UnknownEpochError,
    UnknownSessionError,
)
from repro.jxta.advertisements import FileAdvertisement, PipeAdvertisement
from repro.jxta.messages import Message
from repro.overlay import groupcast as gc
from repro.overlay.client import ClientPeer
from repro.overlay.policy import RetryPolicy, Timeout
from repro.overlay.primitives import primitive
from repro.net.base import Transport
from repro.sim.network import SimNetwork
from repro.xmllib import Element

#: how many recent message nonces each peer remembers (duplicate damping)
NONCE_WINDOW = 1024


class SecureClientPeer(ClientPeer):
    """Client Module + the secure primitive set."""

    def __init__(self, network: "SimNetwork | Transport", address: str,
                 drbg: HmacDrbg,
                 trust_anchor: Credential, name: str = "",
                 policy: SecurityPolicy = DEFAULT_POLICY,
                 keystore: Keystore | None = None) -> None:
        super().__init__(network, address, drbg, name=name)
        self.policy = policy.validate()
        # §4.1: "At boot time, a key pair PK_Cl and SK_Cl are created."
        self.keystore = keystore if keystore is not None else Keystore.generate(
            policy.rsa_bits, drbg.fork(b"client-keys"))
        # §4.1: "Each client peer is provided with a copy of Cred_Adm^Adm."
        self.keystore.install_anchor(trust_anchor)
        # A secure peer's id IS its CBID — the key-authenticity anchor.
        self.peer_id = self.keystore.cbid
        self.revocation_checker = RevocationChecker()
        self.validator = AdvertisementValidator(
            trust_anchor, enable_cache=policy.cache_validated_advs,
            revocation=self.revocation_checker,
            max_entries=policy.adv_cache_entries)
        # Fast-path session state: what we send on (keyed by recipient key
        # fingerprint) and what we accept (keyed by sid).  The receiver
        # store is a protocol capability and stays active regardless of
        # policy — only *establishing* sessions is gated on
        # ``enable_resumption``, so mixed-policy peers interoperate.
        self.resume_sessions = resume_mod.SenderResumeCache(
            ttl=policy.resume_ttl, max_uses=policy.resume_max_uses,
            max_peers=policy.resume_max_peers)
        self.resume_store = resume_mod.ReceiverResumeStore(
            ttl=policy.resume_ttl, max_uses=policy.resume_max_uses,
            max_sessions=policy.resume_max_peers)
        #: sids of our *own* sessions a receiver told us it cannot map
        #: (``resume_reset`` notices) — consumed to re-key and resend
        self._resume_resets: set[str] = set()
        #: sid from the last secureConnection, consumed by secureLogin
        self.sid: str | None = None
        self.broker_credential: Credential | None = None
        self._broker_chain: list[Credential] = []
        self._seen_nonces: OrderedDict[bytes, None] = OrderedDict()
        #: Validated-pipe memo: (peer_id, group) -> (cache element as
        #: validated, ValidatedAdvertisement).  Keyed on the cache entry's
        #: *object identity*: a republished advertisement is a fresh
        #: element, so it revalidates; revocation flushes the memo; and
        #: validity windows are re-checked on every hit.
        self._validated_pipes: OrderedDict[
            tuple[str, str], tuple[Element, ValidatedAdvertisement]] = OrderedDict()
        #: usernames allowed to run tasks here (None = any validated user)
        self.task_acl: set[str] | None = None
        #: group-cast key rings, one per joined group (epoch-keyed)
        self.group_keys: dict[str, groupkey.GroupKeyRing] = {}
        #: groups we registered delivery interest for (``group_sub``)
        self._group_subs: set[str] = set()
        #: per-group high-water mark of delivered broker seq numbers —
        #: survives re-login so a re-subscribe replays only what we missed
        self._group_seq: dict[str, int] = {}
        self._install_secure_functions()

    def _install_secure_functions(self) -> None:
        self.control.endpoint.configure(handlers={
            sf.FILE_REQ: self._fn_secure_file_request,
            sx.TASK_REQ: self._fn_secure_task_request,
            "revocation_push": self._fn_revocation_push,
            sm.RESUME_RESET: self._fn_resume_reset,
            gc.GROUP_DELIVER: self._fn_group_deliver,
        })

    # ======================================================================
    # credential revocation (further work, §6)
    # ======================================================================

    def _accept_revocation_list(self, element: Element) -> bool:
        """Verify a pushed/fetched revocation list against the broker key."""
        if self.broker_credential is None:
            return False
        try:
            rl = RevocationList.from_element(element)
        except SecurityError:
            self.metrics.incr("client.bad_revocation_list")
            return False
        if rl.issuer_id != self.broker_credential.subject_id:
            self.metrics.incr("client.foreign_revocation_list")
            return False
        try:
            updated = self.revocation_checker.update(
                rl, self.broker_credential.public_key)
        except SecurityError:
            self.metrics.incr("client.bad_revocation_list")
            return False
        if updated:
            self._flush_trust_caches()
        return updated

    def _flush_trust_caches(self) -> None:
        """A fresh revocation list can void any cached trust decision:
        validated advertisements, memoized signature verifications, and
        live resumption sessions (which skip per-frame chain checks)."""
        self.validator.invalidate()  # also clears the shared sigcache
        self._validated_pipes.clear()
        self.resume_sessions.invalidate()
        self.resume_store.invalidate()

    def _fn_revocation_push(self, message: Message, src: str) -> None:
        if self._accept_revocation_list(wire.decode(message)["rl"]):
            self.metrics.incr("client.revocation_updates")
        return None

    @primitive("discovery", secure=True)
    def fetch_revocations(self) -> bool:
        """fetch_revocations: pull the broker's signed revocation list."""
        self._require_broker()
        resp = self._broker_request(Message("revocation_req"))
        if resp.msg_type != "revocation_resp":
            return False
        return self._accept_revocation_list(wire.decode(resp)["rl"])

    # ======================================================================
    # credential renewal (further work, §6)
    # ======================================================================

    @primitive("discovery", secure=True)
    def secure_renew_credential(self) -> Credential:
        """secure_renew_credential: obtain a fresh Cred_Cl^Br.

        Must run while the current credential is still valid (the broker
        verifies the whole chain).  On success the new credential replaces
        the old one and all group pipe advertisements are re-published
        under the fresh chain.
        """
        from repro.core.secure_rpc import seal_signed_request

        self._require_login()
        if not self.keystore.chain or self.broker_credential is None:
            raise SecurityError("renewal requires an active credential")
        body = Element("RenewRequest")
        body.add("PeerId", text=str(self.peer_id))
        from repro.utils.encoding import b64encode

        body.add("Nonce", text=b64encode(self.control.drbg.generate(16)))
        body.add("Timestamp", text=repr(self.clock.now))
        env = seal_signed_request(
            body, self.keystore, self.broker_credential.public_key,
            self.policy, self.control.drbg,
            b"jxta-overlay-renew-credential")
        request = Message("renew_req")
        request.add_json("envelope", env)
        resp = self._broker_request(request)
        if resp.msg_type != "renew_ok":
            try:
                reason = (wire.decode(resp).get("reason", "")
                          or resp.msg_type)
            except wire.WireRejected:
                reason = resp.msg_type
            raise SecurityError(f"credential renewal refused: {reason}")
        fresh = Credential.from_element(wire.decode(resp)["credential"])
        fresh.verify(self.broker_credential.public_key, self.clock.now)
        if fresh.public_key != self.keystore.keys.public:
            raise CredentialError("renewed credential is for a different key")
        self.keystore.install_chain([fresh, *self._broker_chain])
        # Republish pipe advertisements so peers see the fresh chain.
        for group, pipe in self.input_pipes.items():
            adv = PipeAdvertisement(
                peer_id=self.peer_id, pipe_id=pipe.pipe_id, group=group,
                address=self.address)
            self._publish(self._prepare_adv_element(adv))
        self.events.emit("credential_issued", credential=fresh)
        return fresh

    # ======================================================================
    # secureConnection (§4.2.1)
    # ======================================================================

    @primitive("discovery", secure=True)
    def secure_connect(self, broker_address: str, *,
                       fallbacks: Sequence[str] | None = None) -> Credential:
        """secureConnection: authenticate the broker before trusting it.

        Runs the §4.2.1 challenge/response.  On success stores the sid and
        the broker's validated credential and returns the latter; on
        failure emits ``broker_rejected`` and raises
        :class:`BrokerAuthenticationError`.

        ``fallbacks`` (default: :attr:`fallback_brokers`) are tried in
        order when a broker is merely *unreachable*.  A broker that
        answers but fails authentication aborts the whole failover: an
        impostor must never be able to steer us to a broker of its
        choosing by "failing politely" (see ``docs/ROBUSTNESS.md``).
        """
        candidates = [broker_address,
                      *(fallbacks if fallbacks is not None
                        else self.fallback_brokers)]
        self._shard_owners.clear()  # a new home brings a new topology view
        last_exc: Exception | None = None
        for index, candidate in enumerate(candidates):
            try:
                credential = self._secure_connect_one(candidate)
            except BrokerAuthenticationError:
                raise  # an authentication failure is never failed over
            except (NotConnectedError, NetworkError, OverlayError) as exc:
                last_exc = exc
                continue
            if index:
                obs.emit("on_degraded", peer=str(self.peer_id),
                         primitive="secure_connect",
                         reason=f"failed over to {candidate!r} "
                                f"(skipped {index} dead broker(s))")
            return credential
        raise BrokerAuthenticationError(
            f"secureConnection failed for every broker in {candidates!r}: "
            f"{last_exc}") from last_exc

    def _secure_connect_one(self, broker_address: str) -> Credential:
        """One §4.2.1 challenge/response against one broker address.

        Re-raises the *original* failure class so :meth:`secure_connect`
        can distinguish an unreachable broker (eligible for failover)
        from one that answered but failed authentication (never skipped).
        """
        anchor = self.keystore.require_anchor()
        with obs.span("secureConnection", peer=str(self.peer_id),
                      broker=broker_address):
            with obs.span("secure_connect.challenge"):
                chall = sc.build_challenge(
                    self.control.drbg, self.policy.challenge_bytes)
            self.broker_address = broker_address
            try:
                resp = self.control.endpoint.request(
                    broker_address, sc.build_connect_request(chall))
                with obs.span("secure_connect.verify"):
                    verification = sc.verify_connect_response(
                        resp, chall, anchor, self.clock.now)
            except (BrokerAuthenticationError, NotConnectedError, OverlayError,
                    NetworkError) as exc:
                self.broker_address = None
                self.events.emit("broker_rejected", broker=broker_address,
                                 reason=str(exc))
                obs.emit("on_broker_rejected", peer=str(self.peer_id),
                         broker=broker_address, reason=str(exc))
                raise
            self.sid = verification.sid
            self.broker_credential = verification.broker_credential
            self._broker_chain = verification.broker_chain
        self.events.emit("connected", broker=broker_address,
                         broker_name=verification.broker_credential.subject_name)
        obs.emit("on_connect", peer=str(self.peer_id), broker=broker_address,
                 secure=True)
        return verification.broker_credential

    # ======================================================================
    # secureLogin (§4.2.2)
    # ======================================================================

    @primitive("discovery", secure=True)
    def secure_login(self, username: str, password: str) -> list[str]:
        """secureLogin: join the network and obtain Cred_Cl^Br.

        Requires a prior :meth:`secure_connect` (the sid).  The login blob
        is signed with SK_Cl and sealed to PK_Br together with the sid.
        On success the broker-issued credential is validated, installed,
        and every subsequent advertisement this client publishes is
        signed.
        """
        self._require_broker()
        if self.sid is None or self.broker_credential is None:
            raise SecurityError("secure_login requires a completed secure_connect")
        with obs.span("secureLogin", peer=str(self.peer_id), username=username):
            with obs.span("secure_login.sign"):
                doc = sl.build_login_document(
                    username, password, self.keystore.keys,
                    peer_name=self.name, peer_address=self.address,
                    scheme=self.policy.signature_scheme, drbg=self.control.drbg)
            with obs.span("secure_login.envelope"):
                request = sl.seal_login_request(
                    doc, self.sid, self.broker_credential.public_key,
                    suite=self.policy.envelope_suite,
                    wrap=self.policy.envelope_wrap,
                    drbg=self.control.drbg)
            sid_used, self.sid = self.sid, None  # one shot, even on failure
            resp = self._broker_request(request)
            try:
                credential, groups = sl.parse_login_response(resp)
            except SecurityError:
                self.events.emit("login_failed", username=username,
                                 reason=resp.msg_type)
                obs.emit("on_credential_rejected", peer=str(self.peer_id),
                         reason=resp.msg_type)
                raise
            # Validate what the broker issued before trusting it.
            with obs.span("secure_login.verify"):
                credential.verify(self.broker_credential.public_key, self.clock.now)
            if credential.public_key != self.keystore.keys.public:
                raise CredentialError("broker issued a credential for a different key")
            if credential.subject_name != username:
                raise CredentialError("broker issued a credential for a different user")
            self.keystore.install_chain([credential, *self._broker_chain])
            self.username = username
            self._password = password  # remembered for automatic re-login
            self.groups = list(groups)
            # A fresh session may face fresh epochs (our own login rotates
            # them; a restarted broker restarts numbering from scratch):
            # drop the rings and re-pull lazily.  The per-group delivery
            # high-water marks survive so a re-subscribe replays only the
            # frames we actually missed.
            self.group_keys.clear()
            self._group_subs.clear()
            for group in self.groups:
                self._open_and_publish_pipe(group)
        self.events.emit("credential_issued", credential=credential)
        self.events.emit("logged_in", username=username, groups=list(self.groups))
        obs.emit("on_login", peer=str(self.peer_id), username=username,
                 groups=list(self.groups), secure=True)
        return list(self.groups)

    def _relogin(self) -> None:
        """Re-establish a lost broker session over the *secure* handshake.

        A broker restart voids both the session and every outstanding
        sid, so recovery is a full secureConnection (fresh sid) followed
        by secureLogin — the stale pre-crash sid is never reused and
        would be rejected as a replay if it were.
        """
        broker = self.broker_address
        username, password = self.username, self._password
        assert broker is not None and username is not None and password is not None
        self.secure_connect(broker, fallbacks=self.fallback_brokers)
        self.secure_login(username, password)

    # ======================================================================
    # secure group management (further work, §6)
    # ======================================================================

    def _secure_group_op(self, op: str, group: str,
                         description: str = "") -> list[str]:
        from repro.core import secure_groups as sg

        self._require_login()
        if not self.keystore.chain or self.broker_credential is None:
            raise SecurityError(f"secure group {op} requires a credential")
        request, nonce = sg.build_group_op(
            op, group, self.keystore, self.broker_credential.public_key,
            self.policy, self.control.drbg, self.clock.now,
            description=description)
        resp = self._broker_request(request)
        return sg.parse_group_op_response(
            resp, self.keystore, self.broker_credential.public_key,
            nonce, self.policy)

    @primitive("group", secure=True)
    def secure_create_group(self, name: str, description: str = "") -> list[str]:
        """secure_create_group: authenticated group creation.

        Unlike the plain primitive, the broker acts for the *credential
        subject*, not the frame source address."""
        members = self._secure_group_op("create", name, description)
        if name not in self.groups:
            self.groups.append(name)
            self._open_and_publish_pipe(name)
        self._auto_subscribe(name)
        self.events.emit("group_created", group=name)
        return members

    @primitive("group", secure=True)
    def secure_join_group(self, name: str) -> list[str]:
        """secure_join_group: authenticated membership; returns members."""
        members = self._secure_group_op("join", name)
        if name not in self.groups:
            self.groups.append(name)
            self._open_and_publish_pipe(name)
        self._auto_subscribe(name)
        self.events.emit("group_joined", group=name, members=members)
        return members

    def _auto_subscribe(self, name: str) -> None:
        """Register group-cast delivery interest alongside a join/create.

        Best-effort: a refused subscription (e.g. the broker runs with
        group cast disabled) degrades to legacy-style delivery instead
        of failing the membership operation itself.
        """
        if not self.policy.enable_group_cast:
            return
        try:
            self.group_subscribe(name)
        except (SecurityError, OverlayError, NetworkError) as exc:
            obs.emit("on_degraded", peer=str(self.peer_id),
                     primitive="group_subscribe", reason=str(exc))

    @primitive("group", secure=True)
    def secure_leave_group(self, name: str) -> None:
        """secure_leave_group: authenticated resignation."""
        self._secure_group_op("leave", name)
        if name in self.groups:
            self.groups.remove(name)
        self._group_subs.discard(name)
        self.group_keys.pop(name, None)
        pipe = self.input_pipes.pop(name, None)
        if pipe is not None:
            self.control.pipes.close_pipe(pipe.pipe_id)
        self.events.emit("group_left", group=name)

    # ======================================================================
    # signed advertisements (§4.1 / ref [15])
    # ======================================================================

    def _prepare_adv_element(self, adv) -> Element:
        """Sign every advertisement once we hold a credential chain."""
        element = adv.to_element()
        if self.keystore.chain:
            sign_advertisement(
                element, self.keystore.keys.private, self.keystore.chain,
                sig_alg=self.policy.signature_scheme, drbg=self.control.drbg)
        return element

    #: LRU bound on the validated-pipe memo (distinct conversation targets).
    _VALIDATED_PIPES_MAX = 1024

    def _resolve_validated_pipe(self, peer_id: str, group: str) -> ValidatedAdvertisement:
        """Steps 1-3 of §4.3.1: fetch and validate the signed pipe adv.

        The full path canonicalizes and hash-checks the signed document
        on every send just to *find* the validator's cache entry.  With
        ``perf.FLAGS.pipe_validation_memo`` the client memoizes the
        outcome against the cache element's object identity instead —
        the element cannot have changed if it is literally the same
        object — while still honouring what can change underneath an
        unchanged document: credential validity windows and freshly
        arrived revocations are re-checked on every hit, and
        :meth:`_flush_trust_caches` drops the memo wholesale.
        """
        if not perf.FLAGS.pipe_validation_memo:
            element = self._resolve_pipe(peer_id, group)
            validated = self.validator.validate(element, self.clock.now)
            if not isinstance(validated.advertisement, PipeAdvertisement):
                raise SecurityError(
                    f"expected a signed PipeAdvertisement from {peer_id}")
            return validated
        raw = self._resolve_pipe_entry(peer_id, group)
        memo = self._validated_pipes.get((peer_id, group))
        if memo is not None:
            source, validated = memo
            if source is raw:
                try:
                    validated.credential.check_validity_window(self.clock.now)
                except CredentialError:
                    del self._validated_pipes[(peer_id, group)]
                else:
                    if self.validator.revocation is not None:
                        self.validator.revocation.check_chain(validated.chain)
                    self._validated_pipes.move_to_end((peer_id, group))
                    return validated
            else:
                del self._validated_pipes[(peer_id, group)]
        # Validate a private copy so the memoized result can never alias
        # later cache mutations; `raw` itself is kept only as the
        # identity anchor.
        validated = self.validator.validate(raw.deep_copy(), self.clock.now)
        if not isinstance(validated.advertisement, PipeAdvertisement):
            raise SecurityError(
                f"expected a signed PipeAdvertisement from {peer_id}")
        self._validated_pipes[(peer_id, group)] = (raw, validated)
        if len(self._validated_pipes) > self._VALIDATED_PIPES_MAX:
            self._validated_pipes.popitem(last=False)
        return validated

    # ======================================================================
    # secureMsgPeer / secureMsgPeerGroup (§4.3)
    # ======================================================================

    @primitive("messenger", secure=True)
    def secure_msg_peer(self, peer_id: str, group: str, text: str, *,
                        retry: RetryPolicy | None = None,
                        timeout: Timeout | None = None) -> bool:
        """secureMsgPeer: E_PK_Cl2(m, S_SK_Cl1(m)) through the group pipe.

        Validates the recipient's signed pipe advertisement first (a
        tampered advertisement aborts the send, per step 2), then seals
        and signs the message.  Stateless: no handshake, no session.

        Delivery stays era-faithful best-effort by default: availability
        is explicitly out of the paper's threat model, so one attempt,
        ``bool`` return.  Pass ``retry=`` to opt into re-sending the
        *same* sealed datagram on loss — safe because the receiver's
        nonce cache collapses any accidental double delivery.
        """
        self._require_login()
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        with obs.span("secureMsgPeer", peer=str(self.peer_id),
                      to_peer=peer_id, group=group):
            with obs.span("secure_msg.resolve"):
                validated = self._resolve_validated_pipe(peer_id, group)
            payload = sm.build_payload(
                from_peer=str(self.peer_id), group=group, text=text,
                nonce=self.control.drbg.generate(16), timestamp=self.clock.now)
            message, sid, seeds = self._seal_chat_message(payload, validated)
            sent = self._send_sealed_frame(validated, message, retry, timeout)
            if sent:
                self._store_resume_seeds(seeds)
            if sid is not None and self._consume_reset(sid):
                # The receiver cannot map the session (lost establishing
                # envelope, restart, eviction): re-key and resend the same
                # payload as a full signed resumable envelope.
                self.metrics.incr("client.resume_fallback")
                message, seeds = self._seal_chat_fast(payload, validated)
                sent = self._send_sealed_frame(validated, message,
                                               retry, timeout)
                if sent:
                    self._store_resume_seeds(seeds)
        if sent:
            obs.emit("on_msg_sent", peer=str(self.peer_id), to_peer=peer_id,
                     group=group, n_bytes=len(text.encode("utf-8")), secure=True)
        return sent

    def _seal_chat_message(self, payload,
                           validated: ValidatedAdvertisement
                           ) -> tuple[Message, str | None, dict[str, bytes]]:
        """Pick the cheapest sealing the policy allows for one recipient:
        resumed (0 RSA) > fast resumable (1 sign + 1 wrap, mints a
        session) > paper-faithful baseline.

        Returns the sealed message; for a resumed frame, the session id
        it rode (the caller checks it against ``resume_reset`` notices
        after the synchronous send); and any freshly minted resumption
        seeds — stored by the caller only once the send succeeded, so a
        failed establishing envelope never leaves a sender-side session
        the receiver will not recognize.
        """
        recipient_key = validated.credential.public_key
        if self.policy.enable_resumption:
            fingerprint = recipient_key.fingerprint().hex()
            session = self.resume_sessions.get(fingerprint, self.clock.now)
            if session is not None:
                return (sm.seal_message_resumed(payload, session),
                        session.sid, {})
            message, seeds = self._seal_chat_fast(payload, validated)
            return message, None, seeds
        return sm.seal_message(
            payload, self.keystore.keys.private, recipient_key,
            suite=self.policy.envelope_suite, wrap=self.policy.envelope_wrap,
            scheme=self.policy.signature_scheme,
            drbg=self.control.drbg), None, {}

    def _seal_chat_fast(self, payload,
                        validated: ValidatedAdvertisement
                        ) -> tuple[Message, dict[str, bytes]]:
        """Full signed envelope that also mints a fresh resumption seed
        (returned, not stored — see :meth:`_store_resume_seeds`)."""
        recipient_key = validated.credential.public_key
        return sm.seal_message_fast(
            payload, self.keystore.keys.private, [recipient_key],
            suite=self.policy.envelope_suite,
            wrap=self.policy.envelope_wrap,
            scheme=self.policy.signature_scheme, drbg=self.control.drbg,
            resumable=True)

    def _store_resume_seeds(self, seeds: dict[str, bytes]) -> None:
        """Install sender-side sessions for seeds whose establishing
        envelope was actually delivered."""
        for fp, seed in seeds.items():
            self.resume_sessions.store(fp, seed, self.policy.envelope_suite,
                                       self.clock.now)

    def _send_sealed_frame(self, validated: ValidatedAdvertisement,
                           message: Message, retry: RetryPolicy | None,
                           timeout: Timeout | None) -> bool:
        pipe_adv = validated.advertisement
        assert isinstance(pipe_adv, PipeAdvertisement)
        pipe = self.control.output_pipe(pipe_adv)
        if retry is None:
            return bool(pipe.send(message))
        budget = timeout if timeout is not None else self.timeouts["messenger"]
        sent, _, _ = self._pipe_send(pipe, message, retry, budget)
        return bool(sent)

    def _group_targets(self, group: str, resolve):
        """Iterate the non-self members of ``group``, yielding
        ``(member, resolve(member))`` pairs.

        The shared miss taxonomy of every fan-out mode lives here: a
        member whose resolution fails (unvalidatable advertisement,
        unreachable peer, ...) is skipped and counted — one
        ``client.secure_group_send_miss`` increment plus one
        ``message_rejected`` event — never aborting the fan-out.
        """
        for member in self.group_members(group):
            if member == str(self.peer_id):
                continue
            try:
                resolved = resolve(member)
            except (SecurityError, OverlayError, DiscoveryError,
                    NetworkError) as exc:
                self.metrics.incr("client.secure_group_send_miss")
                self.events.emit("message_rejected", peer_id=member,
                                 reason=f"group send skip: {exc}")
                continue
            yield member, resolved

    @primitive("messenger", secure=True)
    def secure_msg_peer_group(self, group: str, text: str, *,
                              retry: RetryPolicy | None = None,
                              timeout: Timeout | None = None) -> int:
        """secureMsgPeerGroup: one logical message to every group member.

        Baseline (``enable_seal_many`` off): iterated
        :meth:`secure_msg_peer`, paying a full sign + seal per recipient
        exactly as §4.3 prescribes.  Fast path: one payload is signed
        once; members with a live resumption session get a resumed frame
        (0 RSA), the rest share a single multi-recipient envelope
        (1 sign + 1 symmetric pass + k wraps).

        Broker-mediated path (``enable_group_cast`` on): the sender pays
        one sign + one epoch-key seal + one frame to its home broker —
        O(1) in the member count — and the broker fans out locally and
        along the federation ring (see ``docs/ARCHITECTURE.md``).  The
        return value is then the *broker-reported* local delivery count,
        not a per-member send tally.

        Per-recipient isolation in the iterated modes: a member whose
        advertisement fails validation (or who is unreachable) is
        skipped and counted, never aborting the fan-out
        (:meth:`_group_targets`).
        """
        self._require_login()
        if self.policy.enable_group_cast:
            return self._group_cast_send(group, text,
                                         retry=retry, timeout=timeout)
        if not self.policy.enable_seal_many:
            delivered = 0
            for _member, ok in self._group_targets(
                    group, lambda m: self.secure_msg_peer(
                        m, group, text, retry=retry, timeout=timeout)):
                if ok:
                    delivered += 1
            return delivered
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        n_bytes = len(text.encode("utf-8"))
        delivered = 0
        with obs.span("secureMsgPeerGroup", peer=str(self.peer_id),
                      group=group):
            # One payload (one nonce) for every member: receivers keep
            # per-peer nonce windows, so sharing it is replay-safe.
            payload = sm.build_payload(
                from_peer=str(self.peer_id), group=group, text=text,
                nonce=self.control.drbg.generate(16),
                timestamp=self.clock.now)
            cold: list[ValidatedAdvertisement] = []
            for member, validated in self._group_targets(
                    group, lambda m: self._resolve_validated_pipe(m, group)):
                session = None
                if self.policy.enable_resumption:
                    session = self.resume_sessions.get(
                        validated.credential.public_key.fingerprint().hex(),
                        self.clock.now)
                if session is not None:
                    message = sm.seal_message_resumed(payload, session)
                    ok = self._send_sealed_frame(validated, message,
                                                 retry, timeout)
                    if self._consume_reset(session.sid):
                        # Receiver lost the session: fold this member into
                        # the shared re-keying envelope below instead.
                        self.metrics.incr("client.resume_fallback")
                        cold.append(validated)
                        continue
                    if ok:
                        delivered += 1
                        obs.emit("on_msg_sent", peer=str(self.peer_id),
                                 to_peer=member, group=group,
                                 n_bytes=n_bytes, secure=True)
                else:
                    cold.append(validated)
            if cold:
                message, seeds = sm.seal_message_fast(
                    payload, self.keystore.keys.private,
                    [v.credential.public_key for v in cold],
                    suite=self.policy.envelope_suite,
                    wrap=self.policy.envelope_wrap,
                    scheme=self.policy.signature_scheme,
                    drbg=self.control.drbg,
                    resumable=self.policy.enable_resumption)
                # Only members whose establishing envelope was delivered
                # get a sender-side session; a member that never saw the
                # seed would reject the next resumed frame outright.
                reached: set[str] = set()
                for validated in cold:
                    if self._send_sealed_frame(validated, message,
                                               retry, timeout):
                        delivered += 1
                        reached.add(
                            validated.credential.public_key.fingerprint().hex())
                        obs.emit("on_msg_sent", peer=str(self.peer_id),
                                 to_peer=str(validated.advertisement.peer_id),
                                 group=group, n_bytes=n_bytes, secure=True)
                self._store_resume_seeds(
                    {fp: seed for fp, seed in seeds.items() if fp in reached})
        return delivered

    # ======================================================================
    # broker-mediated group cast (epoch keys, §6 further work)
    # ======================================================================

    def _group_ring(self, group: str) -> groupkey.GroupKeyRing:
        ring = self.group_keys.get(group)
        if ring is None:
            ring = groupkey.GroupKeyRing(
                group, suite=self.policy.envelope_suite,
                history=self.policy.group_epoch_history)
            self.group_keys[group] = ring
        return ring

    def _refresh_group_epochs(self, group: str) -> int:
        """Pull our entitled epoch secrets from the broker (signed RPC).

        Returns the ring's current epoch after installation.
        """
        from repro.core import secure_groups as sg

        self._require_login()
        if not self.keystore.chain or self.broker_credential is None:
            raise SecurityError("group epoch fetch requires a credential")
        request, nonce = sg.build_epoch_fetch(
            group, self.keystore, self.broker_credential.public_key,
            self.policy, self.control.drbg, self.clock.now)
        resp = self._broker_request(request)
        secrets = sg.parse_epoch_response(
            resp, self.keystore, self.broker_credential.public_key,
            nonce, self.policy)
        ring = self._group_ring(group)
        for epoch, secret in sorted(secrets.items()):
            ring.install(epoch, secret)
        self.metrics.incr("client.group_epoch_refresh")
        return ring.epoch

    def _group_cast_send(self, group: str, text: str, *,
                         retry: RetryPolicy | None = None,
                         timeout: Timeout | None = None) -> int:
        """One sign + one epoch seal + one broker frame, any member count.

        A ``stale_epoch`` refusal (the broker rotated under us) triggers
        exactly one refresh + resend of the *same payload* — replay-safe
        because every receiver keeps a nonce window.
        """
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        with obs.span("secureMsgPeerGroup", peer=str(self.peer_id),
                      group=group, mode="cast"):
            ring = self._group_ring(group)
            if ring.epoch == 0:
                self._refresh_group_epochs(group)
            payload = sm.build_payload(
                from_peer=str(self.peer_id), group=group, text=text,
                nonce=self.control.drbg.generate(16),
                timestamp=self.clock.now)
            resp = self._send_group_cast(group, payload, retry, timeout)
            if (resp.msg_type == gc.GROUP_CAST_FAIL
                    and self._cast_fail_code(resp) == "stale_epoch"):
                self.metrics.incr("client.group_cast_stale_retry")
                self._refresh_group_epochs(group)
                resp = self._send_group_cast(group, payload, retry, timeout)
        if resp.msg_type != gc.GROUP_CAST_OK:
            reason = self._cast_fail_reason(resp)
            self.events.emit("message_rejected", peer_id="",
                             reason=f"group cast refused: {reason}")
            raise SecurityError(f"group cast refused: {reason}")
        frame = wire.decode(resp)
        delivered = int(frame.get("delivered") or 0)
        obs.emit("on_msg_sent", peer=str(self.peer_id), to_peer="*",
                 group=group, n_bytes=len(text.encode("utf-8")), secure=True)
        self.metrics.incr("client.group_cast_sent")
        return delivered

    def _send_group_cast(self, group: str, payload,
                         retry: RetryPolicy | None,
                         timeout: Timeout | None) -> Message:
        ring = self._group_ring(group)
        if ring.epoch == 0:
            raise SecurityError(f"no epoch key established for {group!r}")
        env = sm.seal_group_payload(
            payload, self.keystore.keys.private, ring.get(ring.epoch),
            self.policy.signature_scheme, self.control.drbg)
        request = Message(gc.GROUP_CAST)
        request.add_text("group", group)
        request.add_text("epoch", str(ring.epoch))
        request.add_json("envelope", env)
        return self._broker_request(request, retry=retry, timeout=timeout)

    @staticmethod
    def _cast_fail_code(resp: Message) -> str:
        try:
            return wire.decode(resp).get("code", "")
        except wire.WireRejected:
            return ""

    @staticmethod
    def _cast_fail_reason(resp: Message) -> str:
        try:
            return wire.decode(resp).get("reason", "") or resp.msg_type
        except wire.WireRejected:
            return resp.msg_type

    @primitive("group", secure=True)
    def group_subscribe(self, group: str) -> int:
        """group_subscribe: register delivery interest for a group.

        The broker fans every group-cast frame out to subscribers only
        (interest-based delivery) and replays its bounded backlog of
        frames we missed — the store-and-forward path for reconnecting
        members.  Returns the number of frames scheduled for replay.
        """
        self._require_login()
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        if self._group_ring(group).epoch == 0:
            # Need keys before deliveries start arriving.
            self._refresh_group_epochs(group)
        request = Message(gc.GROUP_SUB)
        request.add_text("group", group)
        since = self._group_seq.get(group, 0)
        if since:
            request.add_text("since", str(since))
        resp = self._broker_request(request)
        if resp.msg_type != gc.GROUP_SUB_OK:
            raise SecurityError(
                f"group subscribe refused: {self._cast_fail_reason(resp)}")
        frame = wire.decode(resp)
        self._group_subs.add(group)
        if int(frame.get("epoch") or 0) > self._group_ring(group).epoch:
            self._refresh_group_epochs(group)
        self.metrics.incr("client.group_subscribed")
        return int(frame.get("replayed") or 0)

    @primitive("group", secure=True)
    def group_unsubscribe(self, group: str) -> bool:
        """group_unsubscribe: withdraw delivery interest for a group."""
        self._require_login()
        request = Message(gc.GROUP_UNSUB)
        request.add_text("group", group)
        resp = self._broker_request(request)
        self._group_subs.discard(group)
        return resp.msg_type == gc.GROUP_UNSUB_OK

    def _fn_group_deliver(self, message: Message, src: str) -> None:
        """One broker-fanned group frame (group-cast delivery path).

        Decrypts under the epoch ring — refreshing once if the frame
        names a *newer* epoch than we hold — then runs the same §4.3.1
        acceptance tail as the legacy pipe path, so both modes share one
        accept/reject taxonomy.
        """
        try:
            frame = wire.decode(message)
            group = str(frame["group"])
            seq = int(frame["seq"])
            env = frame["envelope"]
        except (JxtaError, KeyError, TypeError, ValueError):
            self.metrics.incr("client.group_deliver_malformed")
            return
        ring = self._group_ring(group)
        try:
            try:
                opened = sm.open_group_payload(env, ring)
            except UnknownEpochError:
                # We lag the rotation schedule: one refresh, one retry.
                self._refresh_group_epochs(group)
                opened = sm.open_group_payload(env, ring)
        except (SecurityError, OverlayError, DiscoveryError,
                NetworkError) as exc:
            self.metrics.incr("client.secure_chat_rejected")
            self.events.emit("message_rejected", peer_id=src,
                             reason=str(exc))
            obs.emit("on_msg_rejected", peer=str(self.peer_id),
                     from_peer=src, reason=str(exc))
            return
        if self._accept_opened_chat(opened, src) and seq > self._group_seq.get(group, 0):
            self._group_seq[group] = seq

    # -- resumption re-keying (resume_reset notices) ---------------------------

    def _send_resume_reset(self, src: str, sid: str | None) -> None:
        """Tell a sender we cannot map its resumed frame (re-key please)."""
        if not sid:
            return
        obs.get_registry().incr("crypto.resume.reset_sent")
        notice = Message(sm.RESUME_RESET)
        notice.add_text("sid", sid)
        self.control.endpoint.send(src, notice)

    def _fn_resume_reset(self, message: Message, src: str) -> None:
        """An unauthenticated "re-key please" notice from a receiver.

        Honoring it only drops a sender-side cache entry, so the worst a
        forged reset does is downgrade the next send to the
        paper-baseline full envelope — and only for a sid the forger
        observed on the wire.  Sids we never minted are ignored.
        """
        try:
            sid = wire.decode(message)["sid"]
        except JxtaError:
            return
        if self.resume_sessions.invalidate_sid(sid):
            self._resume_resets.add(sid)

    def _consume_reset(self, sid: str) -> bool:
        """Whether this sid was reset (checked once, after a send)."""
        if sid in self._resume_resets:
            self._resume_resets.discard(sid)
            return True
        return False

    # -- receive side ----------------------------------------------------------

    def _nonce_fresh(self, nonce: bytes) -> bool:
        if nonce in self._seen_nonces:
            return False
        self._seen_nonces[nonce] = None
        while len(self._seen_nonces) > NONCE_WINDOW:
            self._seen_nonces.popitem(last=False)
        return True

    def _on_pipe_message(self, inner: Message, src: str) -> None:
        if inner.msg_type == sm.SECURE_CHAT:
            self._handle_secure_chat(inner, src)
            return
        if inner.msg_type == "chat" and self.policy.enforce_secure_messaging:
            self.metrics.incr("client.plain_chat_refused")
            self.events.emit(
                "message_rejected", peer_id=src,
                reason="policy requires secure messaging")
            return
        super()._on_pipe_message(inner, src)

    def _handle_secure_chat(self, inner: Message, src: str) -> None:
        """Steps 5-7 of §4.3.1 on the receiving peer.

        A resumed frame skips advertisement resolution and the RSA
        signature check: its authenticity rides the session, which was
        bound to the sender's verified credential at establishment.  A
        full frame that carries a resumption seed registers that session
        — but only *after* the sender signature verified.
        """
        try:
            opened = sm.open_message(inner, self.keystore.keys.private,
                                     resume_store=self.resume_store,
                                     now=self.clock.now)
        except UnknownSessionError as exc:
            # A resumed frame on a session we do not hold: undecryptable
            # for us, but the sender can recover — ask it to re-key.
            self._send_resume_reset(src, exc.sid)
            self.metrics.incr("client.secure_chat_rejected")
            self.events.emit("message_rejected", peer_id=src, reason=str(exc))
            obs.emit("on_msg_rejected", peer=str(self.peer_id), from_peer=src,
                     reason=str(exc))
            return
        except (SecurityError, OverlayError, DiscoveryError) as exc:
            self.metrics.incr("client.secure_chat_rejected")
            self.events.emit("message_rejected", peer_id=src, reason=str(exc))
            obs.emit("on_msg_rejected", peer=str(self.peer_id), from_peer=src,
                     reason=str(exc))
            return
        self._accept_opened_chat(opened, src)

    def _accept_opened_chat(self, opened: sm.OpenedMessage, src: str) -> bool:
        """The shared §4.3.1 acceptance tail: nonce freshness, group
        membership, sender verification against the validated pipe
        advertisement, then the accept counters/events.

        Both delivery paths — direct pipe frames and broker-fanned
        group-cast frames — converge here, so acceptance and rejection
        carry the exact same taxonomy in either mode.
        """
        try:
            if not self._nonce_fresh(opened.nonce):
                obs.emit("on_replay_blocked", peer=str(self.peer_id),
                         kind="nonce")
                raise TamperedMessageError("duplicate message nonce (replay?)")
            if opened.group not in self.groups:
                raise TamperedMessageError(
                    f"message targets group {opened.group!r} we are not in")
            if opened.resumed:
                with obs.span("secure_msg.verify"):
                    opened.verify_sender(None)
                from_user = opened.session_identity.subject_name
            else:
                sender = self._resolve_validated_pipe(opened.from_peer,
                                                      opened.group)
                with obs.span("secure_msg.verify"):
                    opened.verify_sender(sender.credential.public_key)
                from_user = sender.credential.subject_name
                if opened.resume_seed is not None:
                    self.resume_store.register(
                        opened.resume_seed, opened.suite, sender.credential,
                        self.clock.now)
        except (SecurityError, OverlayError, DiscoveryError) as exc:
            self.metrics.incr("client.secure_chat_rejected")
            self.events.emit("message_rejected", peer_id=src, reason=str(exc))
            obs.emit("on_msg_rejected", peer=str(self.peer_id), from_peer=src,
                     reason=str(exc))
            return False
        self.metrics.incr("client.secure_chat_accepted")
        self.events.emit(
            "secure_message_received",
            from_peer=opened.from_peer,
            from_user=from_user,
            group=opened.group,
            text=opened.text,
        )
        obs.emit("on_msg_received", peer=str(self.peer_id),
                 from_peer=opened.from_peer, group=opened.group,
                 n_bytes=len(opened.text.encode("utf-8")), secure=True)
        return True

    # ======================================================================
    # secure file sharing (further work, §6)
    # ======================================================================

    @primitive("file", secure=True)
    def secure_publish_file(self, group: str, file_name: str,
                            content: bytes) -> FileAdvertisement:
        """secure_publish_file: publish_file with a signed advertisement."""
        # The base primitive already routes through _prepare_adv_element,
        # which signs once a credential chain is installed.
        if not self.keystore.chain:
            raise SecurityError("secure_publish_file requires a credential")
        return self.publish_file(group, file_name, content)

    @primitive("file", secure=True)
    def secure_search_files(self, *, group: str | None = None,
                            peer_id: str | None = None) -> list[FileAdvertisement]:
        """secure_search_files: return only *validated* file offers."""
        self._require_login()
        elements = self.search_advertisements(
            adv_type="FileAdvertisement", peer_id=peer_id, group=group)
        validated: list[FileAdvertisement] = []
        for element in elements:
            try:
                result = self.validator.validate(element, self.clock.now)
            except SecurityError as exc:
                self.metrics.incr("client.file_adv_rejected")
                self.events.emit("message_rejected", peer_id=peer_id or "",
                                 reason=f"file advertisement rejected: {exc}")
                continue
            if isinstance(result.advertisement, FileAdvertisement):
                validated.append(result.advertisement)
        self.events.emit("file_list_received",
                         files=[f.file_name for f in validated])
        return validated

    @primitive("file", secure=True)
    def secure_request_file(self, peer_id: str, group: str, file_name: str,
                            *, chunk_size: int = sf.CHUNK_SIZE) -> bytes:
        """secure_request_file: authenticated, encrypted file transfer.

        Baseline (resumption off): one signed + sealed request, one
        signed + sealed whole-file response, exactly the paper's RPC
        pattern.  Fast path: the transfer is chunked; the first
        request/response pair establishes a resumption session per
        direction, and every later chunk rides resumed frames with zero
        RSA operations on either side.  Content integrity is checked
        against the *validated* file advertisement's digest either way.
        """
        self._require_login()
        if not self.keystore.chain:
            raise SecurityError("secure_request_file requires a credential")
        owner = self._resolve_validated_pipe(peer_id, group)
        owner_pipe = owner.advertisement
        assert isinstance(owner_pipe, PipeAdvertisement)
        if self.policy.enable_resumption:
            content = self._chunked_secure_fetch(owner, owner_pipe.address,
                                                 file_name, group, chunk_size)
        else:
            request = sf.build_file_request(
                file_name=file_name, group=group, keystore=self.keystore,
                owner_key=owner.credential.public_key, policy=self.policy,
                drbg=self.control.drbg, now=self.clock.now)
            resp = self.control.endpoint.request(owner_pipe.address, request)
            content = sf.parse_file_response(
                resp, self.keystore, owner.credential.public_key,
                policy=self.policy)
        expected = self._validated_file_digest(peer_id, group, file_name)
        if expected is not None:
            from repro.crypto.sha2 import sha256

            if sha256(content).hex() != expected:
                self.events.emit("file_transfer_failed", file_name=file_name,
                                 reason="digest mismatch")
                raise SecurityError(
                    f"file {file_name!r} does not match its signed advertisement")
        self.events.emit("file_received", file_name=file_name, size=len(content))
        return content

    def _chunked_secure_fetch(self, owner: ValidatedAdvertisement,
                              address: str, file_name: str, group: str,
                              chunk_size: int) -> bytes:
        """Fast-path transfer: chunked requests riding resumption sessions."""
        parts: list[bytes] = []
        offset = 0
        while True:
            chunk = self._fetch_chunk(owner, address, file_name, group,
                                      offset, chunk_size)
            parts.append(chunk.content)
            offset += len(chunk.content)
            if chunk.eof or not chunk.content:
                break
            if chunk.total is not None and offset >= chunk.total:
                break
        return b"".join(parts)

    def _fetch_chunk(self, owner: ValidatedAdvertisement, address: str,
                     file_name: str, group: str, offset: int,
                     chunk_size: int, *, rekey: bool = False) -> sf.FileChunk:
        """One chunk request/response, recovering once from session loss.

        A mid-transfer session can die on either side (owner TTL race,
        LRU eviction under many requesters, our own store restarting).
        Both signals — the owner's ``unknown_session`` refusal and our
        failure to map a resumed response — trigger one retry with a
        full signed resumable request that re-keys both directions.
        """
        request = sf.build_file_request(
            file_name=file_name, group=group, keystore=self.keystore,
            owner_key=owner.credential.public_key, policy=self.policy,
            drbg=self.control.drbg, now=self.clock.now,
            offset=offset, length=chunk_size,
            resume_sessions=self.resume_sessions, rekey=rekey)
        resp = self.control.endpoint.request(address, request)
        try:
            if (resp.msg_type == sf.FILE_FAIL
                    and wire.decode(resp).get("code") == "unknown_session"):
                raise UnknownSessionError(
                    "owner no longer holds our resumption session")
            return sf.open_file_response(
                resp, self.keystore, owner.credential, policy=self.policy,
                resume_store=self.resume_store, now=self.clock.now)
        except UnknownSessionError:
            if rekey:
                raise SecurityError(
                    f"file transfer re-key for {file_name!r} failed") from None
            self.metrics.incr("client.file_resume_fallback")
            self.resume_sessions.invalidate(
                owner.credential.public_key.fingerprint().hex())
            return self._fetch_chunk(owner, address, file_name, group,
                                     offset, chunk_size, rekey=True)

    def _validated_file_digest(self, peer_id: str, group: str,
                               file_name: str) -> str | None:
        for entry in self.control.cache.find(
                "FileAdvertisement", peer_id=peer_id, group=group):
            parsed = entry.parsed
            if getattr(parsed, "file_name", None) != file_name:
                continue
            try:
                validated = self.validator.validate(entry.element, self.clock.now)
            except SecurityError:
                continue
            adv = validated.advertisement
            if isinstance(adv, FileAdvertisement):
                return adv.sha256_hex
        return None

    def _fn_secure_file_request(self, message: Message, src: str) -> Message:
        return sf.handle_file_request(
            message, keystore=self.keystore, files=self.files,
            validator=self.validator, policy=self.policy,
            drbg=self.control.drbg, now=self.clock.now,
            metrics=self.metrics, resume_store=self.resume_store,
            resume_sessions=self.resume_sessions)

    # ======================================================================
    # secure executable primitives (further work, §6)
    # ======================================================================

    def set_task_acl(self, usernames: set[str] | None) -> None:
        """Restrict who may run tasks here (None = any validated user)."""
        self.task_acl = set(usernames) if usernames is not None else None

    @primitive("executable", secure=True)
    def secure_submit_task(self, peer_id: str, group: str, task_name: str,
                           argument: str) -> str:
        """secure_submit_task: authenticated, encrypted remote execution.

        The §6 further-work set: the request is signed and sealed; the
        executor validates the requester's credential chain and checks its
        ACL before running anything.
        """
        self._require_login()
        if not self.keystore.chain:
            raise SecurityError("secure_submit_task requires a credential")
        executor = self._resolve_validated_pipe(peer_id, group)
        executor_pipe = executor.advertisement
        assert isinstance(executor_pipe, PipeAdvertisement)
        request = sx.build_task_request(
            task_name=task_name, argument=argument, keystore=self.keystore,
            executor_key=executor.credential.public_key, policy=self.policy,
            drbg=self.control.drbg, now=self.clock.now)
        self.events.emit("task_submitted", peer_id=peer_id, task=task_name)
        resp = self.control.endpoint.request(executor_pipe.address, request)
        result = sx.parse_task_response(
            resp, self.keystore, executor.credential.public_key, policy=self.policy)
        self.events.emit("task_result", peer_id=peer_id, task=task_name,
                         result=result)
        return result

    def _fn_secure_task_request(self, message: Message, src: str) -> Message:
        return sx.handle_task_request(
            message, keystore=self.keystore, tasks=self.task_functions,
            acl=self.task_acl, policy=self.policy, drbg=self.control.drbg,
            now=self.clock.now, metrics=self.metrics)

    # ======================================================================
    # policy enforcement over the plain primitives
    # ======================================================================

    def send_msg_peer(self, peer_id: str, group: str, text: str, *,
                      retry: RetryPolicy | None = None,
                      timeout: Timeout | None = None):
        if self.policy.enforce_secure_messaging:
            raise PolicyError(
                "plain send_msg_peer is disabled by the security policy; "
                "use secure_msg_peer")
        return super().send_msg_peer(peer_id, group, text,
                                     retry=retry, timeout=timeout)
