"""Authenticated broker federation: signed ``fed_*`` frames.

The plain federation layer (:mod:`repro.overlay.federation`) admits any
*member* address — era-faithful, and exactly the weakness a rogue
endpoint exploits to poison the shard it does not own.  The secure stack
closes it: every inter-broker frame is signed under the broker's
admin-issued credential ``Cred_Br^Adm`` and verified through the
existing chain validator and signature cache before it can touch the
index, the directory, or the member table.

Wire shape — four extra elements on each federation frame::

    fed_from   : the sender's claimed broker address (must equal src)
    fed_scheme : signature scheme name
    fed_chain  : the broker's credential chain (length exactly 1)
    fed_sig    : S_SK_Br( c14n(frame minus these elements) | fed_from )

A client credential chain has length 2 (client ← broker ← admin anchor)
and is rejected here even though it validates: only a broker the
*administrator* vouched for directly may speak federation frames.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import wire
from repro.core.secure_connection import pack_chain, unpack_chain
from repro.core.credentials import validate_chain
from repro.crypto import signing
from repro.crypto.sigcache import cached_verify
from repro.errors import CredentialError, InvalidSignatureError, JxtaError, OverlayError
from repro.jxta.messages import Message
from repro.overlay.federation import Federation, fed_metric
from repro.xmllib import canonicalize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.secure_broker import SecureBroker

#: the authentication elements themselves, excluded from the signed bytes
SEAL_ELEMS = ("fed_sig", "fed_chain", "fed_scheme", "fed_from")


def signable_bytes(message: Message, sender: str) -> bytes:
    """The canonical bytes a federation signature covers.

    The frame's own authentication elements are excluded (the signature
    cannot cover itself); the claimed sender address is appended so a
    frame replayed from a different address fails verification.
    """
    root = message.to_element()
    root.children = [child for child in root.children
                     if child.attrib.get("name") not in SEAL_ELEMS]
    return canonicalize(root) + b"|" + sender.encode("utf-8")


class SecureFederation(Federation):
    """Federation whose frames carry and demand broker signatures."""

    def __init__(self, broker: "SecureBroker") -> None:
        super().__init__(broker)
        if not broker.keystore.chain:
            raise CredentialError(
                "secure federation requires the broker credential chain")
        #: leaf public keys of peer brokers whose frames authorized here,
        #: keyed by address — lets responses (e.g. epoch-secret hand-out)
        #: be envelope-sealed back to a requester without a directory
        self.peer_keys: dict[str, object] = {}

    def seal(self, message: Message) -> Message:
        """Sign an outgoing frame under ``Cred_Br^Adm`` (idempotent)."""
        if message.has("fed_sig"):
            return message  # already sealed (gossip fan-out reuses frames)
        keystore = self.broker.keystore
        scheme = self.broker.policy.signature_scheme
        message.add_text("fed_from", self.broker.address)
        message.add_text("fed_scheme", scheme)
        message.add_xml("fed_chain", pack_chain(keystore.chain))
        payload = signable_bytes(message, self.broker.address)
        message.add_bytes("fed_sig", signing.sign(
            keystore.keys.private, payload, scheme=scheme,
            drbg=self.broker.control.drbg))
        return message

    def authorize(self, message: Message, src: str, *,
                  link: bool = False, sync: bool = False) -> bool:
        """Admit a frame only with a valid admin-issued broker signature.

        Checks, in order: the authentication elements are present; the
        claimed sender matches the transport source; the chain validates
        against the administrator anchor AND is a direct broker
        credential (length 1 — a client's broker-issued chain has length
        2 and is refused); the signature verifies (via the shared
        signature cache).  Only then does the plain membership rule run.
        """
        if not all(message.has(name) for name in SEAL_ELEMS):
            fed_metric("fed.reject.unsigned")
            return False
        try:
            frame = wire.decode(message)
            sender = frame["fed_from"]
            scheme = frame["fed_scheme"]
            signature = frame["fed_sig"]
            chain = unpack_chain(frame["fed_chain"])
        except (JxtaError, OverlayError, CredentialError):
            fed_metric("fed.reject.malformed")
            return False
        if sender != src:
            fed_metric("fed.reject.malformed")
            return False
        anchor = self.broker.keystore.require_anchor()
        try:
            leaf = validate_chain(chain, anchor, self.clock.now)
        except CredentialError:
            fed_metric("fed.reject.bad_chain")
            return False
        if len(chain) != 1:
            fed_metric("fed.reject.bad_chain")
            return False
        try:
            cached_verify(leaf.public_key,
                          signable_bytes(message, sender),
                          signature, scheme)
        except InvalidSignatureError:
            fed_metric("fed.reject.bad_signature")
            return False
        self.peer_keys[sender] = leaf.public_key
        if link:
            return True
        return super().authorize(message, src, link=link, sync=sync)
