"""The paper's contribution: security-aware JXTA-Overlay primitives.

Implements section 4 end to end — system setup (administrator trust root,
broker credentials), secureConnection, secureLogin, signed advertisements
with transparent credential distribution, secureMsgPeer /
secureMsgPeerGroup — plus the §6 further-work extensions (secure file
sharing and secure executable primitives) built from the same blocks.
"""

from repro.core.admin import Administrator
from repro.core.credentials import (
    Credential,
    issue_credential,
    self_signed_credential,
    validate_chain,
)
from repro.core.keystore import Keystore
from repro.core.revocation import (
    RevocationChecker,
    RevocationList,
    RevocationRegistry,
    RevokedCredentialError,
)
from repro.core.policy import DEFAULT_POLICY, ERA_2009_POLICY, SecurityPolicy
from repro.core.secure_broker import SecureBroker
from repro.core.secure_client import SecureClientPeer
from repro.core.session import SidStore
from repro.core.signed_advertisement import (
    AdvertisementValidator,
    ValidatedAdvertisement,
    sign_advertisement,
)

__all__ = [
    "Administrator",
    "Credential",
    "issue_credential",
    "self_signed_credential",
    "validate_chain",
    "Keystore",
    "SecurityPolicy",
    "DEFAULT_POLICY",
    "ERA_2009_POLICY",
    "SecureBroker",
    "SecureClientPeer",
    "SidStore",
    "AdvertisementValidator",
    "ValidatedAdvertisement",
    "sign_advertisement",
    "RevocationRegistry",
    "RevocationChecker",
    "RevocationList",
    "RevokedCredentialError",
]
