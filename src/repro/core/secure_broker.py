"""The security-aware broker: Broker Module + the paper's extension.

A :class:`SecureBroker` is a stock :class:`~repro.overlay.broker.Broker`
(it still answers every plain function, since the extension coexists with
the original primitives) plus:

* an RSA key pair and an admin-issued credential ``Cred_Br^Adm`` (§4.1),
* the ``secureConnection`` function: challenge signing + sid issuance,
* the ``secureLogin`` function: envelope decryption, sid consumption
  (replay protection), database check, CBID/key-authenticity check, and
  client credential issuance ``Cred_Cl^Br``.
"""

from __future__ import annotations

from repro import obs, wire
from repro.core import secure_connection as sc
from repro.core import secure_login as sl
from repro.core.admin import Administrator
from repro.core.credentials import Credential, issue_credential
from repro.core.keystore import Keystore
from repro.core.policy import DEFAULT_POLICY, SecurityPolicy
from repro.core.revocation import RevocationList, RevocationRegistry
from repro.core.secure_federation import SecureFederation
from repro.core.session import SidStore
from repro.crypto.drbg import HmacDrbg
from repro.errors import (
    CBIDMismatchError,
    ClientAuthenticationError,
    ReplayError,
)
from repro.jxta.advertisements import PeerAdvertisement
from repro.jxta.ids import parse_id
from repro.jxta.messages import Message
from repro.net.base import Transport
from repro.overlay.broker import Broker
from repro.overlay.groupcast import Groupcast
from repro.overlay import groupcast as gc
from repro.overlay.database import UserDatabase
from repro.sim.network import SimNetwork


class SecureBroker(Broker):
    """Broker with the secureConnection / secureLogin functions installed."""

    def __init__(self, network: SimNetwork | Transport, address: str,
                 database: UserDatabase,
                 drbg: HmacDrbg, keystore: Keystore, name: str = "",
                 policy: SecurityPolicy = DEFAULT_POLICY) -> None:
        super().__init__(network, address, database, drbg, name=name)
        if not keystore.chain:
            raise ClientAuthenticationError(
                "a secure broker needs an (admin-issued) credential chain")
        keystore.require_anchor()
        self.keystore = keystore
        self.policy = policy.validate()
        # A secure broker's peer id is its CBID, replacing the random id.
        self.peer_id = keystore.cbid
        # Swap in the signing federation; the fed_* handlers installed by
        # the base class delegate through this attribute at call time.
        self.federation = SecureFederation(self)
        self.sids = SidStore(self.clock, drbg.fork(b"sids"))
        self.revocations = RevocationRegistry(
            keystore.keys.private, keystore.cbid, drbg.fork(b"revoke"))
        self._current_rl: RevocationList | None = None
        self.groupcast = Groupcast(self)
        self._install_secure_functions()

    @classmethod
    def create(cls, network: SimNetwork | Transport, address: str,
               admin: Administrator,
               drbg: HmacDrbg, name: str = "",
               policy: SecurityPolicy = DEFAULT_POLICY,
               keys=None) -> "SecureBroker":
        """System setup (§4.1): generate PK_Br/SK_Br, obtain Cred_Br^Adm."""
        keystore = (Keystore(keys) if keys is not None
                    else Keystore.generate(policy.rsa_bits, drbg.fork(b"broker-keys")))
        broker_cred = admin.issue_broker_credential(
            keystore.keys.public, name or address, now=network.clock.now)
        keystore.install_anchor(admin.credential)
        keystore.install_chain([broker_cred])
        return cls(network, address, admin.database, drbg, keystore,
                   name=name, policy=policy)

    @property
    def credential(self) -> Credential:
        """Cred_Br^Adm."""
        return self.keystore.credential

    def restart(self) -> None:
        """Crash-restart: the one-shot sid store lives in RAM and is lost.

        Stale sids issued before the crash therefore stay unusable after
        it (see :meth:`repro.core.session.SidStore.reset`); the broker's
        key pair, credential chain and revocation registry are durable
        and survive, so existing peer credentials still validate.
        """
        super().restart()
        self.sids.reset()
        self.groupcast.reset()

    def _install_secure_functions(self) -> None:
        from repro.core import secure_groups as sg

        self._install({
            sc.CONNECT_REQ: self.fn_secure_connect,
            sl.LOGIN_REQ: self.fn_secure_login,
            "revocation_req": self.fn_revocation_list,
            "renew_req": self.fn_renew_credential,
            sg.GROUP_OP_REQ: self.fn_secure_group_op,
            sg.EPOCH_REQ: self.fn_group_epoch,
            gc.GROUP_SUB: self.groupcast.fn_sub,
            gc.GROUP_UNSUB: self.groupcast.fn_unsub,
            gc.GROUP_CAST: self.groupcast.fn_cast,
            gc.FED_GROUP_CAST: self.groupcast.fn_fed_cast,
            gc.FED_GROUP_EPOCH: self.groupcast.fn_fed_epoch,
            gc.FED_GROUP_EPOCH_REQ: self.groupcast.fn_fed_epoch_req,
        })

    def fn_secure_group_op(self, message: Message, src: str) -> Message:
        """Authenticated group management (§6 further work)."""
        from repro.core import secure_groups as sg

        return sg.handle_group_op(message, self)

    def fn_group_epoch(self, message: Message, src: str) -> Message:
        """Hand an entitled member its group epoch keys (signed RPC)."""
        from repro.core import secure_groups as sg

        return sg.handle_epoch_fetch(message, self)

    def _group_membership_changed(self, group_name: str,
                                  joined: str | None = None,
                                  left: str | None = None,
                                  churn: bool = False) -> None:
        self.groupcast.on_membership_change(group_name, joined=joined,
                                            left=left, churn=churn)

    # -- credential revocation (further work, §6) ---------------------------

    def revoke_peer(self, peer_id: str) -> None:
        """Revoke a credential subject, disconnect it, notify everyone."""
        self.revocations.revoke(peer_id)
        session = self.connected.get(peer_id)
        if session is not None:
            self._disconnect(session)
        self.publish_revocations()

    def revoke_user(self, username: str) -> list[str]:
        """Revoke every live session credential of ``username``."""
        revoked = [s.peer_id for s in self.connected.values()
                   if s.username == username]
        for peer_id in revoked:
            self.revocations.revoke(peer_id)
            self._disconnect(self.connected[peer_id])
        self.publish_revocations()
        return revoked

    def publish_revocations(self) -> "RevocationList":
        """Sign the current list and push it to all connected peers."""
        self._current_rl = self.revocations.current_list(self.clock.now)
        push = Message("revocation_push")
        push.add_xml("rl", self._current_rl.element)
        for session in list(self.connected.values()):
            self.control.endpoint.send(session.address, push)
        self.metrics.incr("fn.revocations_published")
        return self._current_rl

    def fn_revocation_list(self, message: Message, src: str) -> Message:
        """Serve the freshest signed revocation list on demand."""
        self.metrics.incr("fn.revocation_req")
        if self._current_rl is None:
            self._current_rl = self.revocations.current_list(self.clock.now)
        out = Message("revocation_resp")
        out.add_xml("rl", self._current_rl.element)
        return out

    # -- credential renewal (further work, §6) ------------------------------

    RENEW_AAD = b"jxta-overlay-renew-credential"

    def fn_renew_credential(self, message: Message, src: str) -> Message:
        """Re-issue Cred_Cl^Br for a still-valid, non-revoked session.

        The request is signed with the client's key and sealed to us, so
        renewal proves continuous possession of SK_Cl; an expired or
        revoked credential cannot renew (the chain check fails first).
        """
        from repro.core.secure_rpc import open_signed_request

        self.metrics.incr("fn.renew")
        try:
            opened = open_signed_request(
                wire.decode(message)["envelope"], self.keystore,
                self.clock.now, self.RENEW_AAD, "RenewRequest")
        except Exception as exc:
            self.metrics.incr("fn.renew.rejected")
            return self._fail("renew_fail", f"renewal rejected: {exc}")
        subject = str(opened.requester.subject_id)
        if self.revocations.is_revoked(subject):
            self.metrics.incr("fn.renew.revoked")
            return self._fail("renew_fail", "subject credential is revoked")
        session = self.connected.get(subject)
        if session is None or session.username != opened.requester.subject_name:
            self.metrics.incr("fn.renew.no_session")
            return self._fail("renew_fail", "no matching authenticated session")
        now = self.clock.now
        fresh = issue_credential(
            issuer_key=self.keystore.keys.private,
            issuer_id=self.keystore.cbid,
            issuer_name=self.name,
            subject_key=opened.requester.public_key,
            subject_name=session.username,
            not_before=now,
            not_after=now + self.policy.credential_lifetime,
            drbg=self.control.drbg)
        self.metrics.incr("fn.renew.issued")
        out = Message("renew_ok")
        out.add_xml("credential", fresh.to_element())
        return out

    # -- secureConnection, broker side (§4.2.1 steps 4-5) -------------------

    def fn_secure_connect(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.secure_connect")
        try:
            chall = sc.parse_connect_request(message)
        except Exception:
            self.metrics.incr("fn.secure_connect.malformed")
            return self._fail(sc.CONNECT_FAIL, "malformed challenge")
        sid = self.sids.issue(src)
        return sc.build_connect_response(
            chall, sid, self.keystore.keys.private, self.keystore.chain,
            scheme=self.policy.signature_scheme,
            drbg=self.control.drbg)

    # -- secureLogin, broker side (§4.2.2 steps 4-9) --------------------------

    def fn_secure_login(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.secure_login")
        # Steps 4 + 7: decrypt; CBID and signature checks.
        try:
            claim = sl.open_login_request(message, self.keystore.keys.private)
        except CBIDMismatchError as exc:
            self.metrics.incr("fn.secure_login.cbid_mismatch")
            obs.emit("on_credential_rejected", peer=src, reason=str(exc))
            return self._fail(sl.LOGIN_FAIL, str(exc))
        except ClientAuthenticationError as exc:
            self.metrics.incr("fn.secure_login.malformed")
            obs.emit("on_credential_rejected", peer=src, reason=str(exc))
            return self._fail(sl.LOGIN_FAIL, str(exc))
        # Step 5: consume the sid exactly once (replay protection).
        try:
            self.sids.consume(claim.sid)
        except ReplayError as exc:
            self.metrics.incr("fn.secure_login.replayed")
            obs.emit("on_replay_blocked", peer=claim.peer_id, kind="sid")
            return self._fail(sl.LOGIN_FAIL, f"login aborted: {exc}")
        # Step 6: username/password against the central database.
        if not self.database.check_credentials(claim.username, claim.password):
            self.metrics.incr("fn.secure_login.rejected")
            obs.emit("on_credential_rejected", peer=claim.peer_id,
                     reason="bad username or password")
            return self._fail(sl.LOGIN_FAIL,
                              "end user is an impersonator: bad credentials")
        # Step 8: issue cr = Cred_Cl^Br.
        now = self.clock.now
        credential = issue_credential(
            issuer_key=self.keystore.keys.private,
            issuer_id=self.keystore.cbid,
            issuer_name=self.name,
            subject_key=claim.public_key,
            subject_name=claim.username,
            not_before=now,
            not_after=now + self.policy.credential_lifetime,
            drbg=self.control.drbg)
        # Shared post-auth bookkeeping (sessions, groups, propagation).
        peer_adv = PeerAdvertisement(
            peer_id=parse_id(claim.peer_id, "peer"),
            name=claim.peer_name, address=claim.peer_address)
        groups = self.register_session(claim.peer_id, claim.username, src)
        self.federation.route_publish(peer_adv.to_element(),
                                      shard_key=claim.peer_id)
        self.metrics.incr("fn.secure_login.issued")
        obs.emit("on_credential_issued", peer=claim.peer_id,
                 subject=claim.username)
        # Step 9: Cl <- Br : { cr }.
        return sl.build_login_response(credential, groups)
