"""secureLogin (§4.2.2): replay-protected authenticated login.

Wire shape (faithful to the paper)::

    req = S_SK_Cl(username, password, PK_Cl)
    Cl -> Br : { E_PK_Br(req, sid) }
    Cl <- Br : { cr = Cred_Cl^Br }

The signed request is an XML document (so S_SK really covers username,
password and the public key together), sealed with the wrapped-key
envelope along with the sid from secureConnection.  The broker:

1. decrypts with SK_Br,
2. consumes the sid (replay protection),
3. checks username/password against the central database,
4. checks key authenticity against the claimed peer id (CBID, ref [15]),
   and the request signature under PK_Cl,
5. issues cr = Cred_Cl^Br.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, wire
from repro.core.credentials import Credential
from repro.crypto import envelope
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import public_key_from_text, public_key_to_text
from repro.crypto.rsa import KeyPair, PrivateKey, PublicKey
from repro.dsig import sign_element, verify_element
from repro.errors import (
    CBIDMismatchError,
    ClientAuthenticationError,
    DecryptionError,
    InvalidKeyError,
    InvalidSignatureError,
    JxtaError,
    XMLDsigError,
    XMLError,
    XMLParseError,
)
from repro.jxta.ids import cbid_from_key, matches_key, parse_id
from repro.jxta.messages import Message
from repro.xmllib import Element, parse, serialize

LOGIN_REQ = "secure_login_req"
LOGIN_OK = "secure_login_ok"
LOGIN_FAIL = "secure_login_fail"

_AAD = b"jxta-overlay-secure-login"


def build_login_document(username: str, password: str, keys: KeyPair,
                         peer_name: str, peer_address: str,
                         scheme: str, drbg: HmacDrbg | None = None) -> Element:
    """The signed inner request: S_SK_Cl(username, password, PK_Cl)."""
    doc = Element("LoginRequest")
    doc.add("Username", text=username)
    doc.add("Password", text=password)
    doc.add("PublicKey", text=public_key_to_text(keys.public))
    doc.add("PeerId", text=str(cbid_from_key(keys.public)))
    doc.add("PeerName", text=peer_name)
    doc.add("PeerAddress", text=peer_address)
    sign_element(doc, keys.private, sig_alg=scheme, drbg=drbg)
    return doc


def seal_login_request(doc: Element, sid: str, broker_key: PublicKey,
                       suite: str, wrap: str,
                       drbg: HmacDrbg | None = None) -> Message:
    """E_PK_Br(req, sid): seal the signed request together with the sid."""
    wrapper = Element("SecureLogin")
    wrapper.add("Sid", text=sid)
    wrapper.append(doc)
    env = envelope.seal(broker_key, serialize(wrapper).encode("utf-8"),
                        drbg=drbg, suite=suite, wrap=wrap, aad=_AAD)
    msg = Message(LOGIN_REQ)
    msg.add_json("envelope", env)
    return msg


@dataclass(frozen=True)
class LoginClaim:
    """What the broker extracts from a decrypted, *verified* login blob."""

    username: str
    password: str
    public_key: PublicKey
    peer_id: str
    peer_name: str
    peer_address: str
    sid: str


def open_login_request(message: Message, broker_key: PrivateKey) -> LoginClaim:
    """Broker steps 4 and 7: decrypt, then check key authenticity.

    Performs every check that does not need the database or sid store:

    * envelope decryption (possession of SK_Br),
    * CBID check — the claimed PeerId must be the hash of PK_Cl,
    * signature check — the request must verify under PK_Cl.

    Raises :class:`ClientAuthenticationError` (or
    :class:`CBIDMismatchError`) with the paper's conclusion on failure.
    """
    try:
        env = wire.decode(message)["envelope"]
        with obs.span("secure_login.open"):
            plain = envelope.open_(broker_key, env, aad=_AAD)
    except (JxtaError, DecryptionError) as exc:
        raise ClientAuthenticationError(f"undecryptable login request: {exc}") from exc
    try:
        wrapper = parse(plain.decode("utf-8"))
        sid = wrapper.find_required("Sid").text
        doc = wrapper.find_required("LoginRequest")
        username = doc.find_required("Username").text
        password = doc.find_required("Password").text
        public_key = public_key_from_text(doc.find_required("PublicKey").text)
        peer_id = parse_id(doc.find_required("PeerId").text, "peer")
        peer_name = doc.findtext("PeerName")
        peer_address = doc.findtext("PeerAddress")
    except (XMLParseError, XMLError, InvalidKeyError, UnicodeDecodeError, JxtaError) as exc:
        raise ClientAuthenticationError(f"malformed login request: {exc}") from exc

    # Step 7: key authenticity against the claimed identifier (CBID).
    if not matches_key(peer_id, public_key):
        raise CBIDMismatchError(
            "the request was not received from a client peer with the "
            "claimed identifier")
    # The signature proves possession of SK_Cl over (username, password, PK).
    try:
        verify_element(doc, public_key)
    except (XMLDsigError, InvalidSignatureError) as exc:
        raise ClientAuthenticationError(
            f"login request signature invalid: {exc}") from exc

    return LoginClaim(
        username=username, password=password, public_key=public_key,
        peer_id=str(peer_id), peer_name=peer_name,
        peer_address=peer_address, sid=sid)


def build_login_response(credential: Credential, groups: list[str]) -> Message:
    """Step 9: Cl <- Br : { cr }, plus the group list login returns."""
    msg = Message(LOGIN_OK)
    msg.add_xml("credential", credential.to_element())
    import json

    msg.add_text("groups", json.dumps(sorted(groups)))
    return msg


def parse_login_response(message: Message) -> tuple[Credential, list[str]]:
    if message.msg_type != LOGIN_OK:
        try:
            reason = wire.decode(message).get("reason", "") or message.msg_type
        except wire.WireRejected:
            reason = message.msg_type
        raise ClientAuthenticationError(f"secureLogin rejected: {reason}")
    frame = wire.decode(message)
    credential = Credential.from_element(frame["credential"])
    return credential, list(frame["groups"])
