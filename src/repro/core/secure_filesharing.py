"""Secure file-sharing primitives (further work of §6, built per §4.3).

Baseline protocol (paper-faithful, both fast paths off)::

    Requester -> Owner : E_PK_owner( S_SK_req(FileRequest), chain_req )
    Requester <- Owner : E_PK_req( S_SK_owner(FileResponse{content}) )

The owner validates the requester's credential chain before serving
(so only authenticated network members can pull files) and may check the
requester against the advertisement's group.  Content travels encrypted
and owner-signed; the requester additionally checks the digest from the
validated file advertisement (done by the caller).

Fast path (``policy.enable_resumption``): the transfer is *chunked* and
rides pair-wise resumption sessions.  The first request/response pair is
the full signed RPC above with **resumable** envelopes, establishing one
session per direction; every later chunk request and response is a
resumed frame — zero RSA operations in either direction.  ``FileRequest``
gains optional ``Offset``/``Length`` fields and ``FileResponse`` gains
``Offset``/``Total``/``Eof``; a request without ``Offset`` is served
whole-file, so either side can fall back to the stateless baseline and
still interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import wire
from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.core.secure_rpc import (
    REQUEST_TAG,
    RESPONSE_TAG,
    open_resumed_body,
    open_signed_request,
    open_signed_response_detailed,
    seal_resumed_body,
    seal_signed_request,
    seal_signed_request_fast,
    seal_signed_response,
    seal_signed_response_fast,
)
from repro.core.credentials import Credential
from repro.crypto import resume as resume_mod
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey
from repro.errors import JxtaError, SecurityError, UnknownSessionError
from repro.jxta.messages import Message
from repro.overlay.filesharing import FileStore
from repro.sim.metrics import Metrics
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element

FILE_REQ = "secure_file_req"
FILE_RESP = "secure_file_resp"
FILE_FAIL = "secure_file_fail"

#: default chunk size of the fast-path transfer
CHUNK_SIZE = 32 * 1024

_AAD_REQ = b"jxta-overlay-secure-file-req"
_AAD_RESP = b"jxta-overlay-secure-file-resp"


def build_file_request(file_name: str, group: str, keystore: Keystore,
                       owner_key: PublicKey, policy: SecurityPolicy,
                       drbg: HmacDrbg, now: float, *,
                       offset: int | None = None, length: int | None = None,
                       resume_sessions: resume_mod.SenderResumeCache | None = None,
                       rekey: bool = False) -> Message:
    """Build one (possibly chunked) file request.

    With ``resume_sessions`` and resumption enabled, a live session to
    the owner turns the request into a resumed frame (0 RSA ops); the
    cold path sends the full signed RPC with a resumable envelope and
    installs the new session.

    ``rekey`` recovers a mid-transfer session loss: the request is
    forced onto the full signed path and carries a ``Rekey`` marker
    asking the owner to drop its response session towards us too, so
    both directions re-establish from this exchange.
    """
    body = Element("FileRequest")
    body.add("FileName", text=file_name)
    body.add("Group", text=group)
    body.add("RequesterId", text=str(keystore.cbid))
    body.add("Nonce", text=b64encode(drbg.generate(16)))
    body.add("Timestamp", text=repr(now))
    if offset is not None:
        body.add("Offset", text=str(offset))
        body.add("Length", text=str(length if length is not None else CHUNK_SIZE))
    if rekey:
        body.add("Rekey", text="1")
    if resume_sessions is not None and policy.enable_resumption:
        session = (None if rekey else
                   resume_sessions.get(owner_key.fingerprint().hex(), now))
        if session is not None:
            env = seal_resumed_body(REQUEST_TAG, body, session, _AAD_REQ)
        else:
            env, seeds = seal_signed_request_fast(
                body, keystore, owner_key, policy, drbg, _AAD_REQ)
            for fp, seed in seeds.items():
                resume_sessions.store(fp, seed, policy.envelope_suite, now)
    else:
        env = seal_signed_request(body, keystore, owner_key, policy, drbg,
                                  _AAD_REQ)
    msg = Message(FILE_REQ)
    msg.add_json("envelope", env)
    return msg


def handle_file_request(message: Message, keystore: Keystore, files: FileStore,
                        validator, policy: SecurityPolicy, drbg: HmacDrbg,
                        now: float, metrics: Metrics,
                        resume_store: resume_mod.ReceiverResumeStore | None = None,
                        resume_sessions: resume_mod.SenderResumeCache | None = None
                        ) -> Message:
    """Owner side: validate the requester, then serve the (sealed) file.

    The receiver-side ``resume_store`` is a protocol capability and is
    consulted regardless of our own policy (a fast-path requester must
    interoperate with a baseline owner and vice versa); only *minting*
    new sessions for our responses is gated on ``enable_resumption``.
    """
    def fail(reason: str) -> Message:
        metrics.incr("secure_file.refused")
        out = Message(FILE_FAIL)
        out.add_text("reason", reason)
        return out

    try:
        env = wire.decode(message)["envelope"]
    except JxtaError as exc:
        return fail(f"request rejected: {exc}")

    if "resume" in env:
        if resume_store is None:
            return fail("resumed request but resumption is not supported here")
        try:
            body, identity = open_resumed_body(
                env, resume_store, _AAD_REQ, now, REQUEST_TAG, "FileRequest")
        except UnknownSessionError as exc:
            # Recoverable by the requester (re-key + retry the chunk):
            # flag it so a generic refusal is distinguishable.
            out = fail(f"request rejected: {exc}")
            out.add_text("code", "unknown_session")
            return out
        except SecurityError as exc:
            return fail(f"request rejected: {exc}")
        if not isinstance(identity, Credential):
            return fail("resumption session is not bound to a credential")
        requester = identity
    else:
        try:
            opened = open_signed_request(env, keystore, now, _AAD_REQ,
                                         "FileRequest")
        except (SecurityError, JxtaError) as exc:
            return fail(f"request rejected: {exc}")
        body = opened.body
        requester = opened.requester
        if opened.resume_seed is not None and resume_store is not None:
            # The chain just validated and the body signature verified:
            # bind the requester->owner session to that credential.
            resume_store.register(opened.resume_seed, opened.suite,
                                  requester, now)
    if body.findtext("RequesterId") != str(requester.subject_id):
        return fail("requester id does not match the credential")
    file_name = body.findtext("FileName")
    if file_name not in files:
        return fail(f"no file named {file_name!r}")
    content = files.get(file_name)

    resp_body = Element("FileResponse")
    resp_body.add("FileName", text=file_name)
    resp_body.add("Nonce", text=body.findtext("Nonce"))  # binds resp to req
    offset_text = body.findtext("Offset")
    if not offset_text:
        resp_body.add("Content", text=b64encode(content))
    else:
        try:
            offset = int(offset_text)
            length = int(body.findtext("Length") or CHUNK_SIZE)
        except (TypeError, ValueError):
            return fail("malformed chunk bounds")
        if offset < 0 or length <= 0:
            return fail("malformed chunk bounds")
        chunk = content[offset:offset + length]
        resp_body.add("Content", text=b64encode(chunk))
        resp_body.add("Offset", text=str(offset))
        resp_body.add("Total", text=str(len(content)))
        resp_body.add("Eof", text="1" if offset + len(chunk) >= len(content) else "0")

    if resume_sessions is not None and policy.enable_resumption:
        fp = requester.public_key.fingerprint().hex()
        if body.findtext("Rekey"):
            # The requester lost our response session (restart, eviction):
            # drop ours too and mint a fresh one with this response.
            resume_sessions.invalidate(fp)
        session = resume_sessions.get(fp, now)
        if session is not None:
            env_out = seal_resumed_body(RESPONSE_TAG, resp_body, session,
                                        _AAD_RESP)
        else:
            env_out, seeds = seal_signed_response_fast(
                resp_body, keystore.keys.private, requester.public_key,
                policy, drbg, _AAD_RESP)
            for seed_fp, seed in seeds.items():
                resume_sessions.store(seed_fp, seed, policy.envelope_suite, now)
    else:
        env_out = seal_signed_response(resp_body, keystore.keys.private,
                                       requester.public_key, policy, drbg,
                                       _AAD_RESP)
    metrics.incr("secure_file.served")
    out = Message(FILE_RESP)
    out.add_json("envelope", env_out)
    return out


@dataclass(frozen=True)
class FileChunk:
    """One parsed chunk (or whole-file) response."""

    content: bytes
    offset: int | None
    total: int | None
    eof: bool


def open_file_response(message: Message, keystore: Keystore,
                       owner: Credential, policy: SecurityPolicy, *,
                       resume_store: resume_mod.ReceiverResumeStore | None = None,
                       now: float = 0.0) -> FileChunk:
    """Requester side: unseal one response — full (owner-signed) or resumed.

    A resumed response must come from the session bound to ``owner``'s
    credential; a full response that carries a seed registers the
    owner->requester session for the following chunks.
    """
    if message.msg_type == FILE_FAIL:
        raise SecurityError(
            f"secure file transfer refused: "
            f"{wire.decode(message).get('reason', '')}")
    if message.msg_type != FILE_RESP:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    env = wire.decode(message)["envelope"]
    if "resume" in env:
        if resume_store is None:
            raise SecurityError("resumed response but resumption is disabled")
        body, identity = open_resumed_body(
            env, resume_store, _AAD_RESP, now, RESPONSE_TAG, "FileResponse")
        if (not isinstance(identity, Credential)
                or str(identity.subject_id) != str(owner.subject_id)):
            raise SecurityError("resumed response from an unexpected peer")
    else:
        body, seed, suite = open_signed_response_detailed(
            env, keystore.keys.private, owner.public_key, _AAD_RESP,
            "FileResponse")
        if seed is not None and resume_store is not None:
            # The owner's signature just verified under its validated
            # credential: bind the owner->requester session to it.
            resume_store.register(seed, suite, owner, now)
    content = b64decode(body.findtext("Content"))
    offset_text = body.findtext("Offset")
    total_text = body.findtext("Total")
    return FileChunk(
        content=content,
        offset=int(offset_text) if offset_text else None,
        total=int(total_text) if total_text else None,
        eof=(body.findtext("Eof") != "0"))


def parse_file_response(message: Message, keystore: Keystore,
                        owner_key: PublicKey, policy: SecurityPolicy) -> bytes:
    """Requester side (baseline): unseal and verify a whole-file response."""
    if message.msg_type == FILE_FAIL:
        raise SecurityError(
            f"secure file transfer refused: "
            f"{wire.decode(message).get('reason', '')}")
    if message.msg_type != FILE_RESP:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    body, _, _ = open_signed_response_detailed(
        wire.decode(message)["envelope"], keystore.keys.private, owner_key,
        _AAD_RESP, "FileResponse")
    return b64decode(body.findtext("Content"))
