"""Secure file-sharing primitives (further work of §6, built per §4.3).

Protocol::

    Requester -> Owner : E_PK_owner( S_SK_req(FileRequest), chain_req )
    Requester <- Owner : E_PK_req( S_SK_owner(FileResponse{content}) )

The owner validates the requester's credential chain before serving
(so only authenticated network members can pull files) and may check the
requester against the advertisement's group.  Content travels encrypted
and owner-signed; the requester additionally checks the digest from the
validated file advertisement (done by the caller).
"""

from __future__ import annotations

from repro.core.keystore import Keystore
from repro.core.policy import SecurityPolicy
from repro.core.secure_rpc import (
    open_signed_request,
    open_signed_response,
    seal_signed_request,
    seal_signed_response,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey
from repro.errors import JxtaError, SecurityError
from repro.jxta.messages import Message
from repro.overlay.filesharing import FileStore
from repro.sim.metrics import Metrics
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element

FILE_REQ = "secure_file_req"
FILE_RESP = "secure_file_resp"
FILE_FAIL = "secure_file_fail"

_AAD_REQ = b"jxta-overlay-secure-file-req"
_AAD_RESP = b"jxta-overlay-secure-file-resp"


def build_file_request(file_name: str, group: str, keystore: Keystore,
                       owner_key: PublicKey, policy: SecurityPolicy,
                       drbg: HmacDrbg, now: float) -> Message:
    body = Element("FileRequest")
    body.add("FileName", text=file_name)
    body.add("Group", text=group)
    body.add("RequesterId", text=str(keystore.cbid))
    body.add("Nonce", text=b64encode(drbg.generate(16)))
    body.add("Timestamp", text=repr(now))
    env = seal_signed_request(body, keystore, owner_key, policy, drbg, _AAD_REQ)
    msg = Message(FILE_REQ)
    msg.add_json("envelope", env)
    return msg


def handle_file_request(message: Message, keystore: Keystore, files: FileStore,
                        validator, policy: SecurityPolicy, drbg: HmacDrbg,
                        now: float, metrics: Metrics) -> Message:
    """Owner side: validate the requester, then serve the (sealed) file."""
    def fail(reason: str) -> Message:
        metrics.incr("secure_file.refused")
        out = Message(FILE_FAIL)
        out.add_text("reason", reason)
        return out

    try:
        opened = open_signed_request(
            message.get_json("envelope"), keystore, now, _AAD_REQ, "FileRequest")
    except (SecurityError, JxtaError) as exc:
        return fail(f"request rejected: {exc}")
    body = opened.body
    if body.findtext("RequesterId") != str(opened.requester.subject_id):
        return fail("requester id does not match the credential")
    file_name = body.findtext("FileName")
    if file_name not in files:
        return fail(f"no file named {file_name!r}")
    content = files.get(file_name)
    resp_body = Element("FileResponse")
    resp_body.add("FileName", text=file_name)
    resp_body.add("Nonce", text=body.findtext("Nonce"))  # binds resp to req
    resp_body.add("Content", text=b64encode(content))
    env = seal_signed_response(resp_body, keystore.keys.private,
                               opened.requester.public_key, policy, drbg,
                               _AAD_RESP)
    metrics.incr("secure_file.served")
    out = Message(FILE_RESP)
    out.add_json("envelope", env)
    return out


def parse_file_response(message: Message, keystore: Keystore,
                        owner_key: PublicKey, policy: SecurityPolicy) -> bytes:
    """Requester side: unseal and verify the owner-signed content."""
    if message.msg_type == FILE_FAIL:
        raise SecurityError(
            f"secure file transfer refused: {message.get_text('reason')}")
    if message.msg_type != FILE_RESP:
        raise SecurityError(f"unexpected response {message.msg_type!r}")
    body = open_signed_response(
        message.get_json("envelope"), keystore.keys.private, owner_key,
        _AAD_RESP, "FileResponse")
    return b64decode(body.findtext("Content"))
