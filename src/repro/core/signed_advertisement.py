"""Type-preserving signed advertisements (refs [15], [16] of the paper).

The original advertisement keeps its root element type; the XMLdsig
<Signature> is *embedded* (enveloped), and <KeyInfo> carries the signer's
credential chain.  This single mechanism gives the scheme:

* advertisement **integrity** and **source authenticity** (§2.3 threat 2),
* **transparent key transport**: the recipient of any signed
  advertisement learns the signer's public key *and* who vouches for it,
  with no extra key-distribution protocol (§4.1),
* **CBID binding**: the advertisement's PeerId must be the CBID of the
  credential's key, so nobody can sign advertisements for someone else's
  id.

Validation results can be cached per advertisement identity (policy knob
``cache_validated_advs``) because the cache stores the *exact canonical
bytes* that validated — a changed advertisement misses the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.core.credentials import (
    Credential,
    chain_from_elements,
    validate_chain,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey
from repro.crypto.sha2 import sha256
from repro.dsig import sign_element, verify_element
from repro.dsig.templates import KEY_INFO_TAG
from repro.errors import (
    CBIDMismatchError,
    CredentialError,
    InvalidSignatureError,
    TamperedAdvertisementError,
    XMLDsigError,
    XMLError,
)
from repro.jxta.advertisements import Advertisement
from repro.xmllib import Element, canonicalize

CHAIN_TAG = "CredentialChain"


def sign_advertisement(element: Element, signer_key: PrivateKey,
                       chain: list[Credential],
                       sig_alg: str = "rsa-pss-sha256",
                       drbg: HmacDrbg | None = None) -> Element:
    """Sign an advertisement in place, embedding the credential chain.

    ``chain`` is leaf-first; the leaf credential's key must match
    ``signer_key``.  Returns the same element for chaining.
    """
    if not chain:
        raise CredentialError("cannot sign without a credential chain")
    keyinfo = Element(KEY_INFO_TAG)
    holder = keyinfo.add(CHAIN_TAG)
    for cred in chain:
        holder.append(cred.to_element())
    return sign_element(element, signer_key, keyinfo=keyinfo,
                        sig_alg=sig_alg, drbg=drbg)


@dataclass(frozen=True)
class ValidatedAdvertisement:
    """Outcome of a successful validation."""

    advertisement: Advertisement
    credential: Credential          # the signer's (leaf) credential
    chain: list[Credential]
    element: Element                # the signed document as validated


class AdvertisementValidator:
    """Validates signed advertisements against a trust anchor, with cache.

    An optional :class:`repro.core.revocation.RevocationChecker` is
    consulted on every validation (including cache hits — revocation can
    arrive after an advertisement was first validated).
    """

    def __init__(self, trust_anchor: Credential, enable_cache: bool = True,
                 revocation=None, max_entries: int = 256) -> None:
        self.trust_anchor = trust_anchor
        self.enable_cache = enable_cache
        self.revocation = revocation
        self.max_entries = max_entries
        self._cache: OrderedDict[bytes, ValidatedAdvertisement] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def validate(self, element: Element, now: float) -> ValidatedAdvertisement:
        """Full validation; raises :class:`TamperedAdvertisementError`,
        :class:`CredentialError` or :class:`CBIDMismatchError` on failure.

        Checks, in order:

        1. XMLdsig structure + reference digest + signature value under
           the leaf credential key,
        2. credential chain up to the administrator anchor (incl. CBID
           binding and validity windows of every link),
        3. the advertisement's PeerId equals the leaf credential subject.
        """
        digest = sha256(canonicalize(element)) if self.enable_cache else b""
        if self.enable_cache:
            hit = self._cache.get(digest)
            if hit is not None:
                # Expiry and revocation must still be honoured on hits.
                try:
                    hit.credential.check_validity_window(now)
                except CredentialError:
                    del self._cache[digest]
                else:
                    if self.revocation is not None:
                        self.revocation.check_chain(hit.chain)
                    self._cache.move_to_end(digest)
                    self.cache_hits += 1
                    return hit
            self.cache_misses += 1

        try:
            chain = self._extract_chain(element)
            leaf = validate_chain(chain, self.trust_anchor, now)
            verify_element(element, leaf.public_key)
        except (XMLDsigError, InvalidSignatureError, XMLError,
                CredentialError) as exc:
            raise TamperedAdvertisementError(
                f"<{element.tag}> failed signature validation: {exc}") from exc

        if self.revocation is not None:
            self.revocation.check_chain(chain)

        parsed = Advertisement.from_element(element)
        if str(parsed.peer_id) != str(leaf.subject_id):
            raise CBIDMismatchError(
                f"advertisement PeerId {parsed.peer_id} does not match the "
                f"signer credential subject {leaf.subject_id}")

        result = ValidatedAdvertisement(
            advertisement=parsed, credential=leaf, chain=chain,
            element=element.deep_copy())
        if self.enable_cache:
            self._cache[digest] = result
            self._cache.move_to_end(digest)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.cache_evictions += 1
                obs.get_registry().incr("core.adv_cache.evictions")
        return result

    def _extract_chain(self, element: Element) -> list[Credential]:
        from repro.dsig.transforms import find_signature

        signature = find_signature(element)
        keyinfo = signature.find(KEY_INFO_TAG)
        if keyinfo is None:
            raise CredentialError("signed advertisement carries no KeyInfo")
        holder = keyinfo.find(CHAIN_TAG)
        if holder is None or not holder.children:
            raise CredentialError("KeyInfo carries no credential chain")
        return chain_from_elements(list(holder.children))

    def invalidate(self) -> None:
        """Flush all trust-derived caches (here *and* the shared sigcache)."""
        from repro.crypto import sigcache

        self._cache.clear()
        sigcache.get_sig_cache().invalidate()
