"""secureMsgPeer / secureMsgPeerGroup payloads (§4.3.1).

Stateless, best-effort message protection::

    Cl1 -> Cl2 : { E_PK_Cl2( m, S_SK_Cl1(m) ) }

``m`` is an XML document carrying the sender id, group, text and a fresh
nonce; the signature covers the canonical bytes of ``m``.  The recipient
learns *who* sent the message only after decrypting, then validates the
sender's **signed pipe advertisement** to obtain an authentic PK_Cl1 —
the paper's transparent key-transport trick (steps 6-7).

There is deliberately **no session state**: every message stands alone,
in contrast with the TLS baseline.  The nonce lets receivers that keep a
short memory window reject duplicates, but the paper's protocol itself is
fire-and-forget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs, wire
from repro.crypto import envelope, groupkey, signing
from repro.crypto import resume as resume_mod
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import (
    DecryptionError,
    InvalidSignatureError,
    JxtaError,
    ReplayError,
    StaleEpochError,
    TamperedMessageError,
    UnknownEpochError,
    UnknownSessionError,
    XMLError,
    XMLParseError,
)
from repro.jxta.messages import Message
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element, canonicalize, parse, serialize

SECURE_CHAT = "secure_chat"
#: unauthenticated re-key notice: "I cannot map resumption session <sid>"
RESUME_RESET = "resume_reset"

_AAD = b"jxta-overlay-secure-msg"


def build_payload(from_peer: str, group: str, text: str, nonce: bytes,
                  timestamp: float) -> Element:
    """The inner document m."""
    doc = Element("SecureChat")
    doc.add("FromPeer", text=from_peer)
    doc.add("Group", text=group)
    doc.add("Text", text=text)
    doc.add("Nonce", text=b64encode(nonce))
    doc.add("Timestamp", text=repr(timestamp))
    return doc


def seal_message(payload: Element, sender_key: PrivateKey,
                 recipient_key: PublicKey, suite: str, wrap: str,
                 scheme: str, drbg: HmacDrbg | None = None) -> Message:
    """E_PK_Cl2(m, S_SK_Cl1(m)) as a pipe-deliverable message."""
    with obs.span("secure_msg.seal"):
        m_bytes = canonicalize(payload)
        with obs.span("secure_msg.sign"):
            signature = signing.sign(sender_key, m_bytes, scheme=scheme, drbg=drbg)
        wrapper = Element("SecureMessage")
        wrapper.append(payload)
        wrapper.add("SignatureValue", text=b64encode(signature))
        wrapper.add("SignatureScheme", text=scheme)
        with obs.span("secure_msg.envelope"):
            env = envelope.seal(recipient_key, serialize(wrapper).encode("utf-8"),
                                drbg=drbg, suite=suite, wrap=wrap, aad=_AAD)
    msg = Message(SECURE_CHAT)
    msg.add_json("envelope", env)
    return msg


def seal_message_fast(payload: Element, sender_key: PrivateKey,
                      recipient_keys: list[PublicKey], suite: str, wrap: str,
                      scheme: str, drbg: HmacDrbg | None = None,
                      resumable: bool = False
                      ) -> tuple[Message, dict[str, bytes]]:
    """The fast-path variant of :func:`seal_message`: one signature and
    one symmetric pass for any number of recipients (1 sign + N wraps).

    Returns the message plus the per-recipient resumption seeds (empty
    unless ``resumable``); the caller installs them in its
    :class:`~repro.crypto.resume.SenderResumeCache` once the send
    succeeded.  Seeds are minted *before* signing so the signature
    covers a per-recipient commitment to each one — receivers refuse to
    register a seed the signature does not vouch for.
    """
    with obs.span("secure_msg.seal"):
        seeds: dict[str, bytes] = {}
        if resumable:
            seeds = envelope.mint_seeds(recipient_keys, drbg)
            payload = payload.deep_copy()
            resume_mod.add_seed_commitments(payload, seeds)
        m_bytes = canonicalize(payload)
        with obs.span("secure_msg.sign"):
            signature = signing.sign(sender_key, m_bytes, scheme=scheme, drbg=drbg)
        wrapper = Element("SecureMessage")
        wrapper.append(payload)
        wrapper.add("SignatureValue", text=b64encode(signature))
        wrapper.add("SignatureScheme", text=scheme)
        with obs.span("secure_msg.envelope"):
            sealed = envelope.seal_many(
                recipient_keys, serialize(wrapper).encode("utf-8"),
                drbg=drbg, suite=suite, wrap=wrap, aad=_AAD,
                seeds=seeds or None)
    msg = Message(SECURE_CHAT)
    msg.add_json("envelope", sealed.envelope)
    return msg, sealed.seeds


def seal_message_resumed(payload: Element,
                         session: resume_mod.ResumeSession) -> Message:
    """Steady-state send on an established session: zero RSA operations.

    The wrapper carries no signature — authenticity rides the session,
    which was bound to the sender's verified credential when the signed
    establishing envelope was accepted.
    """
    with obs.span("secure_msg.seal_resumed"):
        wrapper = Element("SecureMessage")
        wrapper.append(payload)
        env = resume_mod.seal_resumed(
            session, serialize(wrapper).encode("utf-8"), aad=_AAD)
    msg = Message(SECURE_CHAT)
    msg.add_json("envelope", env)
    return msg


def seal_group_payload(payload: Element, sender_key: PrivateKey,
                       epoch_key: groupkey.EpochKey, scheme: str,
                       drbg: HmacDrbg | None = None) -> dict:
    """Group-cast seal: sign once, encrypt once under the epoch key.

    The signed ``SecureMessage`` wrapper is byte-identical to the one
    :func:`seal_message` builds, so the plaintext a receiver recovers —
    and the sender-verification step — match the legacy iterated path
    exactly; only the outer encryption layer differs (shared epoch key
    instead of one hybrid envelope per member).  Cost is O(1) in the
    group size: one signature, one symmetric pass, zero RSA wraps.
    """
    with obs.span("secure_msg.seal_group"):
        m_bytes = canonicalize(payload)
        with obs.span("secure_msg.sign"):
            signature = signing.sign(sender_key, m_bytes, scheme=scheme, drbg=drbg)
        wrapper = Element("SecureMessage")
        wrapper.append(payload)
        wrapper.add("SignatureValue", text=b64encode(signature))
        wrapper.add("SignatureScheme", text=scheme)
        rng = drbg if drbg is not None else system_drbg()
        return groupkey.seal_epoch(epoch_key, serialize(wrapper).encode("utf-8"),
                                   rng)


def open_group_payload(env: dict, ring: groupkey.GroupKeyRing) -> OpenedMessage:
    """Open an epoch-sealed group frame through the holder's key ring.

    :class:`~repro.errors.StaleEpochError` /
    :class:`~repro.errors.UnknownEpochError` propagate untranslated (the
    caller's cue to reject vs refresh keys); anything else that fails
    decryption or parsing becomes :class:`TamperedMessageError`.  The
    caller still runs :meth:`OpenedMessage.verify_sender` — the epoch
    key authenticates *membership*, the inner signature the *sender*.
    """
    try:
        with obs.span("secure_msg.open_group"):
            plain = ring.open(env)
    except (StaleEpochError, UnknownEpochError):
        raise
    except DecryptionError as exc:
        raise TamperedMessageError(f"undecryptable group message: {exc}") from exc
    try:
        wrapper = parse(plain.decode("utf-8"))
        payload = wrapper.find_required("SecureChat")
        signature = b64decode(wrapper.find_required("SignatureValue").text)
        scheme = wrapper.find_required("SignatureScheme").text
        from_peer, group, text, nonce, timestamp = _parse_chat_payload(payload)
    except (XMLParseError, XMLError, UnicodeDecodeError, ValueError) as exc:
        raise TamperedMessageError(f"malformed group message: {exc}") from exc
    return OpenedMessage(
        from_peer=from_peer, group=group, text=text, nonce=nonce,
        timestamp=timestamp, payload=payload, signature=signature,
        scheme=scheme)


@dataclass(frozen=True)
class OpenedMessage:
    """A decrypted (but not yet sender-verified) secure message."""

    from_peer: str
    group: str
    text: str
    nonce: bytes
    timestamp: float
    payload: Element
    signature: bytes
    scheme: str
    #: True when the frame rode a resumption session (no signature)
    resumed: bool = False
    #: the sender credential the session was registered under (resumed only)
    session_identity: object = field(default=None)
    #: resumption seed the sender wrapped for us (full envelopes only)
    resume_seed: bytes | None = field(default=None, repr=False)
    #: envelope suite (needed to derive a session from ``resume_seed``)
    suite: str = ""

    def verify_sender(self, sender_key: PublicKey | None) -> None:
        """Step 7: validate the message signature under PK_Cl1.

        For a resumed frame there is no signature to check; instead the
        claimed sender must be the credential subject the session was
        bound to when its signed establishing envelope verified.
        """
        if self.resumed:
            identity = self.session_identity
            if identity is None or self.from_peer != str(identity.subject_id):
                raise TamperedMessageError(
                    f"resumed message claims sender {self.from_peer} but the "
                    f"session belongs to a different peer")
            return
        try:
            signing.verify(sender_key, canonicalize(self.payload),
                           self.signature, scheme=self.scheme)
        except InvalidSignatureError as exc:
            raise TamperedMessageError(
                f"message signature from {self.from_peer} invalid: {exc}") from exc


def _parse_chat_payload(payload: Element) -> tuple[str, str, str, bytes, float]:
    from_peer = payload.find_required("FromPeer").text
    group = payload.find_required("Group").text
    text = payload.find_required("Text").text
    nonce = b64decode(payload.find_required("Nonce").text)
    timestamp = float(payload.find_required("Timestamp").text)
    return from_peer, group, text, nonce, timestamp


def open_message(message: Message, recipient_key: PrivateKey,
                 resume_store: resume_mod.ReceiverResumeStore | None = None,
                 now: float = 0.0) -> OpenedMessage:
    """Step 5: decrypt with SK_Cl2 and parse; signature check is separate
    because the sender's key is only known after advertisement lookup.

    A frame carrying a ``resume`` header is opened through
    ``resume_store`` instead of the private key; the resulting
    :class:`OpenedMessage` has ``resumed=True`` and carries the bound
    sender identity for :meth:`OpenedMessage.verify_sender`.
    """
    try:
        env = wire.decode(message)["envelope"]
    except JxtaError as exc:
        raise TamperedMessageError(f"undecryptable secure message: {exc}") from exc

    if "resume" in env:
        if resume_store is None:
            raise TamperedMessageError(
                "resumed secure message but no resumption store is available")
        try:
            with obs.span("secure_msg.open_resumed"):
                plain, identity = resume_store.open(env, _AAD, now)
        except (ReplayError, UnknownSessionError):
            # Both carry state the caller acts on (replay accounting /
            # sending a resume_reset), so they propagate untranslated.
            raise
        except DecryptionError as exc:
            raise TamperedMessageError(
                f"undecryptable resumed message: {exc}") from exc
        try:
            wrapper = parse(plain.decode("utf-8"))
            payload = wrapper.find_required("SecureChat")
            from_peer, group, text, nonce, timestamp = _parse_chat_payload(payload)
        except (XMLParseError, XMLError, UnicodeDecodeError, ValueError) as exc:
            raise TamperedMessageError(f"malformed secure message: {exc}") from exc
        return OpenedMessage(
            from_peer=from_peer, group=group, text=text, nonce=nonce,
            timestamp=timestamp, payload=payload, signature=b"",
            scheme="resumed", resumed=True, session_identity=identity)

    try:
        with obs.span("secure_msg.open"):
            opened_env = envelope.open_detailed(recipient_key, env, aad=_AAD)
    except DecryptionError as exc:
        raise TamperedMessageError(f"undecryptable secure message: {exc}") from exc
    try:
        wrapper = parse(opened_env.plaintext.decode("utf-8"))
        payload = wrapper.find_required("SecureChat")
        signature = b64decode(wrapper.find_required("SignatureValue").text)
        scheme = wrapper.find_required("SignatureScheme").text
        from_peer, group, text, nonce, timestamp = _parse_chat_payload(payload)
    except (XMLParseError, XMLError, UnicodeDecodeError, ValueError) as exc:
        raise TamperedMessageError(f"malformed secure message: {exc}") from exc
    seed = opened_env.resume_seed
    if seed is not None:
        # The signed payload must commit to the seed wrapped for *us*:
        # any CEK holder can re-wrap a seed of its choosing, but cannot
        # forge the signed commitment.  Mismatch = active tampering.
        own_fp = recipient_key.public_key().fingerprint().hex()
        if not resume_mod.check_seed_commitment(payload, own_fp, seed):
            obs.get_registry().incr("crypto.resume.commit_mismatch")
            raise TamperedMessageError(
                "resumption seed is not covered by the sender's signature")
    return OpenedMessage(
        from_peer=from_peer, group=group, text=text, nonce=nonce,
        timestamp=timestamp, payload=payload, signature=signature,
        scheme=scheme, resume_seed=seed,
        suite=opened_env.suite)
