"""secureMsgPeer / secureMsgPeerGroup payloads (§4.3.1).

Stateless, best-effort message protection::

    Cl1 -> Cl2 : { E_PK_Cl2( m, S_SK_Cl1(m) ) }

``m`` is an XML document carrying the sender id, group, text and a fresh
nonce; the signature covers the canonical bytes of ``m``.  The recipient
learns *who* sent the message only after decrypting, then validates the
sender's **signed pipe advertisement** to obtain an authentic PK_Cl1 —
the paper's transparent key-transport trick (steps 6-7).

There is deliberately **no session state**: every message stands alone,
in contrast with the TLS baseline.  The nonce lets receivers that keep a
short memory window reject duplicates, but the paper's protocol itself is
fire-and-forget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.crypto import envelope, signing
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import (
    DecryptionError,
    InvalidSignatureError,
    JxtaError,
    TamperedMessageError,
    XMLError,
    XMLParseError,
)
from repro.jxta.messages import Message
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element, canonicalize, parse, serialize

SECURE_CHAT = "secure_chat"

_AAD = b"jxta-overlay-secure-msg"


def build_payload(from_peer: str, group: str, text: str, nonce: bytes,
                  timestamp: float) -> Element:
    """The inner document m."""
    doc = Element("SecureChat")
    doc.add("FromPeer", text=from_peer)
    doc.add("Group", text=group)
    doc.add("Text", text=text)
    doc.add("Nonce", text=b64encode(nonce))
    doc.add("Timestamp", text=repr(timestamp))
    return doc


def seal_message(payload: Element, sender_key: PrivateKey,
                 recipient_key: PublicKey, suite: str, wrap: str,
                 scheme: str, drbg: HmacDrbg | None = None) -> Message:
    """E_PK_Cl2(m, S_SK_Cl1(m)) as a pipe-deliverable message."""
    with obs.span("secure_msg.seal"):
        m_bytes = canonicalize(payload)
        with obs.span("secure_msg.sign"):
            signature = signing.sign(sender_key, m_bytes, scheme=scheme, drbg=drbg)
        wrapper = Element("SecureMessage")
        wrapper.append(payload)
        wrapper.add("SignatureValue", text=b64encode(signature))
        wrapper.add("SignatureScheme", text=scheme)
        with obs.span("secure_msg.envelope"):
            env = envelope.seal(recipient_key, serialize(wrapper).encode("utf-8"),
                                drbg=drbg, suite=suite, wrap=wrap, aad=_AAD)
    msg = Message(SECURE_CHAT)
    msg.add_json("envelope", env)
    return msg


@dataclass(frozen=True)
class OpenedMessage:
    """A decrypted (but not yet sender-verified) secure message."""

    from_peer: str
    group: str
    text: str
    nonce: bytes
    timestamp: float
    payload: Element
    signature: bytes
    scheme: str

    def verify_sender(self, sender_key: PublicKey) -> None:
        """Step 7: validate the message signature under PK_Cl1."""
        try:
            signing.verify(sender_key, canonicalize(self.payload),
                           self.signature, scheme=self.scheme)
        except InvalidSignatureError as exc:
            raise TamperedMessageError(
                f"message signature from {self.from_peer} invalid: {exc}") from exc


def open_message(message: Message, recipient_key: PrivateKey) -> OpenedMessage:
    """Step 5: decrypt with SK_Cl2 and parse; signature check is separate
    because the sender's key is only known after advertisement lookup."""
    try:
        env = message.get_json("envelope")
        with obs.span("secure_msg.open"):
            plain = envelope.open_(recipient_key, env, aad=_AAD)
    except (JxtaError, DecryptionError) as exc:
        raise TamperedMessageError(f"undecryptable secure message: {exc}") from exc
    try:
        wrapper = parse(plain.decode("utf-8"))
        payload = wrapper.find_required("SecureChat")
        signature = b64decode(wrapper.find_required("SignatureValue").text)
        scheme = wrapper.find_required("SignatureScheme").text
        from_peer = payload.find_required("FromPeer").text
        group = payload.find_required("Group").text
        text = payload.find_required("Text").text
        nonce = b64decode(payload.find_required("Nonce").text)
        timestamp = float(payload.find_required("Timestamp").text)
    except (XMLParseError, XMLError, UnicodeDecodeError, ValueError) as exc:
        raise TamperedMessageError(f"malformed secure message: {exc}") from exc
    return OpenedMessage(
        from_peer=from_peer, group=group, text=text, nonce=nonce,
        timestamp=timestamp, payload=payload, signature=signature,
        scheme=scheme)
