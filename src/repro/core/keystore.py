"""Per-entity key material and trust state.

Every secure entity (administrator, broker, client) holds a
:class:`Keystore`: its own key pair, its own credential (+ chain up to
the administrator), the trust anchor, and a cache of *validated* peer
credentials.  Unlike JXTA's PSE, this keystore is format-agnostic — the
constraint the paper calls out in section 3 and designs around.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import KeyPair, generate_keypair
from repro.errors import CredentialError
from repro.core.credentials import Credential
from repro.jxta.ids import JxtaID, cbid_from_key


class Keystore:
    """Key pair + credentials + trust anchor for one secure entity."""

    def __init__(self, keys: KeyPair) -> None:
        self.keys = keys
        #: this entity's CBID (derived, never chosen)
        self.cbid: JxtaID = cbid_from_key(keys.public)
        #: this entity's own credential chain, leaf first (set after issuance)
        self.chain: list[Credential] = []
        #: the administrator's self-signed credential (trust root)
        self.trust_anchor: Credential | None = None
        #: peer id URN -> credential validated against the anchor
        self._validated: dict[str, Credential] = {}

    @classmethod
    def generate(cls, bits: int, drbg: HmacDrbg) -> "Keystore":
        return cls(generate_keypair(bits, drbg=drbg))

    # -- own identity -----------------------------------------------------

    @property
    def credential(self) -> Credential:
        if not self.chain:
            raise CredentialError("this entity has no credential yet")
        return self.chain[0]

    def install_chain(self, chain: list[Credential]) -> None:
        if not chain:
            raise CredentialError("cannot install an empty chain")
        if chain[0].public_key != self.keys.public:
            raise CredentialError("leaf credential does not match our key")
        self.chain = list(chain)

    def install_anchor(self, anchor: Credential) -> None:
        if not anchor.self_signed:
            raise CredentialError("trust anchor must be self-signed")
        self.trust_anchor = anchor

    def require_anchor(self) -> Credential:
        if self.trust_anchor is None:
            raise CredentialError("no trust anchor installed")
        return self.trust_anchor

    # -- validated-peer cache -----------------------------------------------

    def remember_peer(self, credential: Credential) -> None:
        self._validated[str(credential.subject_id)] = credential

    def recall_peer(self, peer_id: str) -> Credential | None:
        return self._validated.get(peer_id)

    def forget_peer(self, peer_id: str) -> None:
        self._validated.pop(peer_id, None)

    @property
    def validated_count(self) -> int:
        return len(self._validated)
