"""The administrator: trust root of the secure JXTA-Overlay network (§4.1).

"The JXTA-Overlay administrator generates a key pair and a self-signed
credential, thus acting as trusted party by all peers.  This is a
sensible stance, since the system administrator is the entity that
grants access to the network by creating usernames and passwords."

The administrator operates **offline**: it provisions brokers with
credentials and distributes its self-signed credential to every entity at
deployment time.  It never appears on the simulated network.
"""

from __future__ import annotations

from repro.core.credentials import Credential, issue_credential, self_signed_credential
from repro.core.keystore import Keystore
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey, generate_keypair
from repro.overlay.database import UserDatabase

#: default credential lifetimes (virtual seconds)
ADMIN_LIFETIME = 10 * 365 * 86400.0
BROKER_LIFETIME = 365 * 86400.0


class Administrator:
    """Adm: key pair, Cred_Adm^Adm, broker credential issuance, user DB."""

    def __init__(self, drbg: HmacDrbg, bits: int = 1024, name: str = "admin",
                 now: float = 0.0, lifetime: float = ADMIN_LIFETIME,
                 keys=None) -> None:
        self._drbg = drbg
        self.name = name
        self.keystore = Keystore(
            keys if keys is not None
            else generate_keypair(bits, drbg=drbg.fork(b"admin-keys")))
        anchor = self_signed_credential(
            self.keystore.keys.private, self.keystore.keys.public,
            name=name, not_before=now, not_after=now + lifetime,
            drbg=drbg.fork(b"admin-self-sign"))
        self.keystore.install_anchor(anchor)
        self.keystore.install_chain([anchor])
        #: the central user database the administrator maintains (§2.1)
        self.database = UserDatabase(drbg.fork(b"database"))

    @property
    def credential(self) -> Credential:
        """Cred_Adm^Adm — distributed to every peer at deployment."""
        return self.keystore.require_anchor()

    @property
    def public_key(self) -> PublicKey:
        return self.keystore.keys.public

    def issue_broker_credential(self, broker_key: PublicKey, broker_name: str,
                                now: float = 0.0,
                                lifetime: float = BROKER_LIFETIME) -> Credential:
        """Cred_Br^Adm: only legitimate brokers can ever hold one."""
        return issue_credential(
            issuer_key=self.keystore.keys.private,
            issuer_id=self.keystore.cbid,
            issuer_name=self.name,
            subject_key=broker_key,
            subject_name=broker_name,
            not_before=now,
            not_after=now + lifetime,
            drbg=self._drbg.fork(b"issue-" + broker_name.encode()),
        )

    def register_user(self, username: str, password: str,
                      groups: set[str] | list[str] = ()) -> None:
        """Provision an end user (out-of-band, §2.1)."""
        self.database.register_user(username, password, groups)
