"""Transport-level security baselines: plain, TLS and CBJX."""

from repro.jxta.transport.base import PlainTransport, SecureTransport
from repro.jxta.transport.cbjx import CbjxTransport
from repro.jxta.transport.tls import (
    TlsClient,
    TlsServer,
    TlsTransport,
    handshake_in_memory,
)

__all__ = [
    "SecureTransport",
    "PlainTransport",
    "TlsClient",
    "TlsServer",
    "TlsTransport",
    "handshake_in_memory",
    "CbjxTransport",
]
