"""Transport-security abstraction under the endpoint service.

JXTA offers (section 3 of the paper) two message-security mechanisms:
TLS and CBJX.  Both sit *below* the messaging layer, so we model them as
byte-level wrap/unwrap transforms keyed by the remote address.  The plain
transport is the identity transform — what stock JXTA-Overlay uses.
"""

from __future__ import annotations

from typing import Protocol


class SecureTransport(Protocol):
    """Byte-level security transform between two endpoint addresses."""

    def wrap(self, payload: bytes, peer: str, local: str) -> bytes:
        """Protect an outgoing payload destined for ``peer``."""
        ...

    def unwrap(self, payload: bytes, peer: str, local: str) -> bytes:
        """Unprotect an incoming payload that claims to come from ``peer``.

        Raises :class:`repro.errors.TransportError` when protection checks
        fail.
        """
        ...


class PlainTransport:
    """No protection at all (stock JXTA-Overlay)."""

    def wrap(self, payload: bytes, peer: str, local: str) -> bytes:
        return payload

    def unwrap(self, payload: bytes, peer: str, local: str) -> bytes:
        return payload
