"""CBJX — Crypto-Based JXTA transfer (ref [12]), the stateless baseline.

CBJX pre-processes each message into a secure encapsulation: the original
payload is signed, and an *information block* (source crypto-based id,
source public key, destination address) is attached; the receiver checks
that the sender's public key hashes to its claimed CBID and that the
signature covers payload + addressing.  This gives per-message integrity
and source authenticity **without confidentiality** — which is exactly
where the paper's secure-messaging primitives go further.

Wire format (all lengths 4-byte big-endian)::

    [len(src)][src][len(dst)][dst][len(key)][key-json][len(sig)][sig][payload]
"""

from __future__ import annotations

import struct

from repro.crypto import signing
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import public_key_from_text, public_key_to_text
from repro.crypto.rsa import KeyPair
from repro.errors import InvalidKeyError, InvalidSignatureError, TransportError
from repro.jxta.ids import cbid_from_key, matches_key, parse_id


def _pack(*chunks: bytes) -> bytes:
    out = bytearray()
    for chunk in chunks[:-1]:
        out += struct.pack(">I", len(chunk)) + chunk
    out += chunks[-1]
    return bytes(out)


def _unpack(data: bytes, n_fields: int) -> list[bytes]:
    fields = []
    pos = 0
    for _ in range(n_fields - 1):
        if pos + 4 > len(data):
            raise TransportError("truncated CBJX frame")
        (length,) = struct.unpack_from(">I", data, pos)
        pos += 4
        if pos + length > len(data):
            raise TransportError("truncated CBJX frame body")
        fields.append(data[pos:pos + length])
        pos += length
    fields.append(data[pos:])
    return fields


class CbjxTransport:
    """Per-message signed encapsulation bound to the sender's CBID."""

    def __init__(self, keys: KeyPair, drbg: HmacDrbg | None = None) -> None:
        self.keys = keys
        self.cbid = cbid_from_key(keys.public)
        self._drbg = drbg

    def wrap(self, payload: bytes, peer: str, local: str) -> bytes:
        src = str(self.cbid).encode()
        dst = peer.encode()
        key_text = public_key_to_text(self.keys.public).encode()
        to_sign = src + b"|" + dst + b"|" + payload
        sig = signing.sign(self.keys.private, to_sign, drbg=self._drbg)
        return _pack(src, dst, key_text, sig, payload)

    def unwrap(self, payload: bytes, peer: str, local: str) -> bytes:
        src, dst, key_text, sig, body = _unpack(payload, 5)
        # 1. The destination in the signed info block must be us: prevents
        #    a third party from replaying the frame to someone else.
        if dst.decode(errors="replace") != local:
            raise TransportError("CBJX frame addressed to a different endpoint")
        # 2. CBID <-> key binding.
        try:
            sender_key = public_key_from_text(key_text.decode())
            sender_id = parse_id(src.decode(), "peer")
        except (InvalidKeyError, UnicodeDecodeError, Exception) as exc:
            raise TransportError(f"malformed CBJX info block: {exc}") from exc
        if not matches_key(sender_id, sender_key):
            raise TransportError("CBJX source id does not match the enclosed key")
        # 3. Signature over addressing + payload.
        try:
            signing.verify(sender_key, src + b"|" + dst + b"|" + body, sig)
        except InvalidSignatureError as exc:
            raise TransportError(f"CBJX signature invalid: {exc}") from exc
        return body
