"""A simplified TLS (ref [11]) — JXTA's stateful secure-pipe baseline.

The paper contrasts its stateless best-effort messaging security with
JXTA's TLS-based secure pipes, which "require some previous negotiation
between endpoints" (section 4.3).  To benchmark that trade-off honestly
(ablation A4) we implement an era-faithful miniature of TLS 1.2 with the
RSA key-exchange suite:

* 2-RTT handshake: ClientHello / ServerHello(+credential) /
  ClientKeyExchange(+Finished) / ServerFinished,
* RSA-OAEP-wrapped 48-byte premaster secret,
* HMAC-SHA256-based key derivation (a PRF in the TLS spirit),
* record layer with AES-128-CTR + HMAC-SHA256 encrypt-then-MAC and
  explicit sequence numbers (anti-replay and anti-reorder).

This is *not* interoperable TLS; it is the same cryptographic workload
and message pattern, which is what the performance comparison needs —
and its security properties are real enough that the attack tests reuse
it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto import pkcs1
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.hmac import hmac_sha256
from repro.crypto.modes import CTR
from repro.crypto.rsa import KeyPair, PublicKey
from repro.errors import HandshakeError, TransportError
from repro.utils.bytesutil import constant_time_eq

_PREMASTER_LEN = 48
_RANDOM_LEN = 32


def _prf(secret: bytes, label: bytes, seed: bytes, n: int) -> bytes:
    """P_hash-style expansion (RFC 2246 section 5, over HMAC-SHA256)."""
    out = bytearray()
    a = label + seed
    while len(out) < n:
        a = hmac_sha256(secret, a)
        out += hmac_sha256(secret, a + label + seed)
    return bytes(out[:n])


@dataclass
class _Keys:
    enc_key: bytes
    mac_key: bytes


class RecordLayer:
    """Encrypt-then-MAC record protection with sequence numbers."""

    def __init__(self, write_keys: _Keys, read_keys: _Keys) -> None:
        self._write = write_keys
        self._read = read_keys
        self._write_seq = 0
        self._read_seq = 0

    def protect(self, payload: bytes) -> bytes:
        seq = struct.pack(">Q", self._write_seq)
        self._write_seq += 1
        nonce = seq + b"\x00" * 4
        ciphertext = CTR(self._write.enc_key).encrypt(payload, nonce)
        mac = hmac_sha256(self._write.mac_key, seq + ciphertext)
        return seq + ciphertext + mac

    def unprotect(self, record: bytes) -> bytes:
        if len(record) < 8 + 32:
            raise TransportError("TLS record too short")
        seq_bytes, ciphertext, mac = record[:8], record[8:-32], record[-32:]
        seq = struct.unpack(">Q", seq_bytes)[0]
        if seq != self._read_seq:
            raise TransportError(
                f"TLS record out of sequence (got {seq}, want {self._read_seq})")
        if not constant_time_eq(hmac_sha256(self._read.mac_key, seq_bytes + ciphertext), mac):
            raise TransportError("TLS record MAC failure")
        self._read_seq += 1
        nonce = seq_bytes + b"\x00" * 4
        return CTR(self._read.enc_key).decrypt(ciphertext, nonce)


def _derive(master: bytes, client_random: bytes, server_random: bytes
            ) -> tuple[_Keys, _Keys]:
    """Derive (client_write, server_write) key sets."""
    block = _prf(master, b"key expansion", server_random + client_random, 2 * (16 + 32))
    c_enc, s_enc = block[0:16], block[16:32]
    c_mac, s_mac = block[32:64], block[64:96]
    return _Keys(c_enc, c_mac), _Keys(s_enc, s_mac)


class TlsServer:
    """Server side: owns an RSA key pair (its 'certificate')."""

    def __init__(self, keys: KeyPair, drbg: HmacDrbg | None = None) -> None:
        self.keys = keys
        self._drbg = drbg if drbg is not None else system_drbg()
        self._client_random: bytes | None = None
        self._server_random: bytes | None = None
        self._master: bytes | None = None
        self.record: RecordLayer | None = None

    def hello(self, client_hello: bytes) -> bytes:
        """Consume ClientHello, emit ServerHello (random + public key)."""
        if len(client_hello) != _RANDOM_LEN:
            raise HandshakeError("malformed ClientHello")
        self._client_random = client_hello
        self._server_random = self._drbg.generate(_RANDOM_LEN)
        from repro.crypto.keys import public_key_to_text
        return self._server_random + public_key_to_text(self.keys.public).encode()

    def finish(self, client_key_exchange: bytes) -> bytes:
        """Consume ClientKeyExchange+Finished, emit ServerFinished."""
        if self._client_random is None or self._server_random is None:
            raise HandshakeError("ClientKeyExchange before ClientHello")
        k = self.keys.public.byte_length
        if len(client_key_exchange) < k + 32:
            raise HandshakeError("malformed ClientKeyExchange")
        wrapped, client_mac = client_key_exchange[:k], client_key_exchange[k:]
        try:
            premaster = pkcs1.decrypt_oaep(self.keys.private, wrapped, label=b"tls-premaster")
        except Exception as exc:
            raise HandshakeError(f"premaster decryption failed: {exc}") from exc
        if len(premaster) != _PREMASTER_LEN:
            raise HandshakeError("premaster has the wrong length")
        transcript = self._client_random + self._server_random
        self._master = _prf(premaster, b"master secret", transcript, 48)
        expected = hmac_sha256(self._master, b"client finished" + transcript)
        if not constant_time_eq(expected, client_mac):
            raise HandshakeError("client Finished MAC mismatch")
        client_keys, server_keys = _derive(self._master, self._client_random,
                                           self._server_random)
        self.record = RecordLayer(write_keys=server_keys, read_keys=client_keys)
        return hmac_sha256(self._master, b"server finished" + transcript)


class TlsClient:
    """Client side; optionally pins the expected server public key."""

    def __init__(self, drbg: HmacDrbg | None = None,
                 expected_server_key: PublicKey | None = None) -> None:
        self._drbg = drbg if drbg is not None else system_drbg()
        self.expected_server_key = expected_server_key
        self._client_random: bytes | None = None
        self._server_random: bytes | None = None
        self._master: bytes | None = None
        self.server_key: PublicKey | None = None
        self.record: RecordLayer | None = None

    def hello(self) -> bytes:
        self._client_random = self._drbg.generate(_RANDOM_LEN)
        return self._client_random

    def key_exchange(self, server_hello: bytes) -> bytes:
        """Consume ServerHello, emit ClientKeyExchange || Finished."""
        if self._client_random is None:
            raise HandshakeError("ServerHello before ClientHello")
        if len(server_hello) <= _RANDOM_LEN:
            raise HandshakeError("malformed ServerHello")
        self._server_random = server_hello[:_RANDOM_LEN]
        from repro.crypto.keys import public_key_from_text
        self.server_key = public_key_from_text(server_hello[_RANDOM_LEN:].decode())
        if (self.expected_server_key is not None
                and self.server_key != self.expected_server_key):
            raise HandshakeError("server key does not match the pinned key")
        premaster = self._drbg.generate(_PREMASTER_LEN)
        wrapped = pkcs1.encrypt_oaep(self.server_key, premaster,
                                     drbg=self._drbg, label=b"tls-premaster")
        transcript = self._client_random + self._server_random
        self._master = _prf(premaster, b"master secret", transcript, 48)
        finished = hmac_sha256(self._master, b"client finished" + transcript)
        return wrapped + finished

    def verify_finish(self, server_finished: bytes) -> None:
        """Check ServerFinished and activate the record layer."""
        if self._master is None or self._client_random is None or self._server_random is None:
            raise HandshakeError("ServerFinished out of order")
        transcript = self._client_random + self._server_random
        expected = hmac_sha256(self._master, b"server finished" + transcript)
        if not constant_time_eq(expected, server_finished):
            raise HandshakeError("server Finished MAC mismatch")
        client_keys, server_keys = _derive(self._master, self._client_random,
                                           self._server_random)
        self.record = RecordLayer(write_keys=client_keys, read_keys=server_keys)


def handshake_in_memory(client: TlsClient, server: TlsServer) -> None:
    """Run the 4-message handshake directly (tests / session pre-setup)."""
    server_hello = server.hello(client.hello())
    server_finished = server.finish(client.key_exchange(server_hello))
    client.verify_finish(server_finished)


class TlsTransport:
    """A :class:`SecureTransport` over established per-peer record layers.

    Handshakes are established out-of-band (see
    :func:`handshake_in_memory` or the benchmark driver, which pushes the
    handshake messages through the simulated network to account for the
    round trips); once a session exists, wrap/unwrap protect records.
    """

    def __init__(self) -> None:
        self._sessions: dict[str, RecordLayer] = {}

    def install(self, peer: str, record: RecordLayer) -> None:
        self._sessions[peer] = record

    def has_session(self, peer: str) -> bool:
        return peer in self._sessions

    def wrap(self, payload: bytes, peer: str, local: str) -> bytes:
        record = self._sessions.get(peer)
        if record is None:
            raise TransportError(f"no TLS session with {peer!r}")
        return record.protect(payload)

    def unwrap(self, payload: bytes, peer: str, local: str) -> bytes:
        record = self._sessions.get(peer)
        if record is None:
            raise TransportError(f"no TLS session with {peer!r}")
        return record.unprotect(payload)
