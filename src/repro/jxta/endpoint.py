"""Endpoint service: a peer's attachment point to the network.

Dispatches incoming frames to per-message-type handlers, mirroring
JXTA's endpoint service.  The endpoint is **transport-agnostic**: it
talks to any :class:`~repro.net.base.Transport` backend — the
discrete-event simulator (:class:`~repro.net.sim.SimTransport`,
auto-wrapped around a bare :class:`~repro.sim.network.SimNetwork`) or
real asyncio TCP sockets (:class:`~repro.net.tcp.TcpTransport`) — so
the same overlay code serves simulated links and 127.0.0.1 sockets.

Outgoing traffic additionally goes through an optional
:class:`~repro.jxta.transport.base.SecureTransport` (plain, TLS or
CBJX), which is how the related-work baselines plug in underneath
*any* JXTA traffic without the upper layers knowing.  The two layers
are orthogonal: the net transport moves bytes between addresses, the
secure transport decides what those bytes look like.

Everything an endpoint needs is declared through one entry point,
:meth:`Endpoint.configure` — handler table, wire boundary, secure
transport, and the connect/receive/close lifecycle hooks.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from typing import Callable, Mapping

from repro.errors import FrameTooLargeError, JxtaError, NetworkError, TransportError
from repro.jxta.messages import Message
from repro.jxta.transport.base import PlainTransport, SecureTransport
from repro.net.base import Frame, Transport, as_transport
from repro.sim.metrics import Metrics

MessageHandler = Callable[[Message, str], Message | None]
"""Receives (message, source_address); may return a response message."""

ReceiveHook = Callable[[Message, str], None]
"""Lifecycle hook: every accepted inbound message, before dispatch."""

PeerHook = Callable[[str], None]
"""Lifecycle hook: a peer connected to us / its connection closed."""


class Endpoint:
    """A named attachment to a transport backend."""

    def __init__(self, network, address: str,
                 transport: SecureTransport | None = None) -> None:
        """Attach to ``network`` — a :class:`~repro.net.base.Transport`
        or a bare :class:`~repro.sim.network.SimNetwork` (wrapped
        transparently).  ``transport`` is the optional *secure*
        (crypto) transport, kept under its historical name."""
        self.network = network
        self.net: Transport = as_transport(network)
        self.address = address
        self.transport = transport if transport is not None else PlainTransport()
        self.metrics = Metrics()
        self._handlers: dict[str, MessageHandler] = {}
        self._default_handler: MessageHandler | None = None
        self._wire = None  # set by configure(wire=True)
        self._on_connect: PeerHook | None = None
        self._on_receive: ReceiveHook | None = None
        self._on_close: PeerHook | None = None
        self._closed = False
        self.net.register(address, self._on_frame,
                          on_connect=self._fire_connect,
                          on_close=self._fire_close)

    @property
    def clock(self):
        return self.net.clock

    # -- link scheduling -----------------------------------------------------

    def configure_links(self, policy=None, *, breaker_factory=None):
        """Install a link scheduler on the transport underneath.

        Returns the :class:`~repro.net.linkq.LinkScheduler`, or ``None``
        when the backend has no link layer (discovered by capability,
        not by type, so third-party transports stay valid).
        """
        configure = getattr(self.net, "configure_links", None)
        if configure is None:
            return None
        return configure(policy, breaker_factory=breaker_factory)

    def corked(self):
        """Coalesce sends inside the context into shared wire units.

        A no-op context on transports without a link scheduler, so
        fan-out loops may cork unconditionally.
        """
        corked = getattr(self.net, "corked", None)
        if corked is None:
            return nullcontext()
        return corked()

    # -- declarative configuration -----------------------------------------

    def configure(self, *, handlers: Mapping[str, MessageHandler] | None = None,
                  default: MessageHandler | None = None,
                  wire: bool | None = None,
                  transport: SecureTransport | None = None,
                  on_connect: PeerHook | None = None,
                  on_receive: ReceiveHook | None = None,
                  on_close: PeerHook | None = None) -> "Endpoint":
        """Declare this endpoint's runtime surface in one call.

        * ``handlers`` — message-type → handler table, merged into the
          registry (a duplicate type raises, exactly like :meth:`on`);
          layered stacks call ``configure`` once per layer (plain
          broker functions, then the secure extension's).
        * ``default`` — fallback handler for unmatched types.
        * ``wire`` — ``True`` validates every inbound frame against
          :mod:`repro.wire` *before* dispatch (rejects counted under
          ``wire.reject.*``); ``False`` removes the boundary; ``None``
          leaves it unchanged.  Raw endpoints (tests, taps) stay
          schema-free unless they opt in.
        * ``transport`` — the :class:`SecureTransport` wrapping frame
          bytes (plain/TLS/CBJX).
        * ``on_connect`` / ``on_receive`` / ``on_close`` — lifecycle
          hooks: first traffic from a peer, every accepted message
          (after decode + wire check, before dispatch), and a peer's
          connection going away.

        Returns ``self`` so construction can chain.
        """
        if handlers:
            for msg_type, handler in handlers.items():
                self.on(msg_type, handler)
        if default is not None:
            self.on_default(default)
        if wire is not None:
            if wire:
                # Imported lazily: repro.wire itself imports
                # repro.jxta.messages, so a module-level import here
                # would cycle through the package.
                from repro import wire as wire_mod
                self._wire = wire_mod
            else:
                self._wire = None
        if transport is not None:
            self.transport = transport
        if on_connect is not None:
            self._on_connect = on_connect
        if on_receive is not None:
            self._on_receive = on_receive
        if on_close is not None:
            self._on_close = on_close
        return self

    def install_wire_boundary(self) -> None:
        """Deprecated alias for ``configure(wire=True)``."""
        warnings.warn(
            "Endpoint.install_wire_boundary() is deprecated; use "
            "Endpoint.configure(wire=True)",
            DeprecationWarning, stacklevel=2)
        self.configure(wire=True)

    def close(self) -> None:
        """Detach from the transport and drain in-flight state.

        Idempotent.  The handler table is cleared and a closed flag
        raised *before* unregistering, so a frame already inside the
        backend (a socket read racing the shutdown) is dropped rather
        than dispatched; the backend then tears down its listening
        socket, live connections and pending requests, so a socket
        backend can never leak connections past ``close()``.
        """
        if self._closed:
            return
        self._closed = True
        self._handlers.clear()
        self._default_handler = None
        self.net.unregister(self.address)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- handler registry ----------------------------------------------------

    def on(self, msg_type: str, handler: MessageHandler) -> None:
        if msg_type in self._handlers:
            raise JxtaError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    def on_default(self, handler: MessageHandler) -> None:
        self._default_handler = handler

    def handled_types(self) -> tuple[str, ...]:
        """The message types this endpoint dispatches, sorted.

        Public so protocol-aware tooling (the scenario engine's
        frame-storm adversary, catalogue drift checks) can target only
        frames the endpoint will actually route.
        """
        return tuple(sorted(self._handlers))

    # -- lifecycle hook plumbing ---------------------------------------------

    def _fire_connect(self, peer: str) -> None:
        if self._on_connect is not None and not self._closed:
            self._on_connect(peer)

    def _fire_close(self, peer: str) -> None:
        if self._on_close is not None:
            self._on_close(peer)

    # -- receive path ----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> bytes | None:
        if self._closed:
            self.metrics.incr("rx.closed")
            return None
        try:
            plain = self.transport.unwrap(frame.payload, peer=frame.src,
                                          local=self.address)
            message = Message.from_wire(plain)
        except (JxtaError, TransportError) as exc:
            # Undecodable traffic is dropped, as a real stack would.
            self.metrics.incr("rx.undecodable")
            self.metrics.incr(f"rx.undecodable.{type(exc).__name__}")
            if self._wire is not None and isinstance(exc, FrameTooLargeError):
                self._wire.count_oversize()
            return None
        if self._wire is not None and not self._wire.check(message):
            self.metrics.incr("rx.rejected")
            return None
        self.metrics.incr("rx.messages")
        if self._on_receive is not None:
            self._on_receive(message, frame.src)
        handler = self._handlers.get(message.msg_type, self._default_handler)
        if handler is None:
            self.metrics.incr("rx.unhandled")
            return None
        response = handler(message, frame.src)
        if response is None:
            return None
        return self.transport.wrap(response.to_wire(), peer=frame.src,
                                   local=self.address)

    # -- send path ---------------------------------------------------------------

    def send(self, dst: str, message: Message) -> bool:
        """Best-effort one-way message (pipe semantics)."""
        if self._closed:
            raise NetworkError(f"endpoint {self.address!r} is closed")
        wire = self.transport.wrap(message.to_wire(), peer=dst, local=self.address)
        self.metrics.incr("tx.messages")
        self.metrics.incr("tx.bytes", len(wire))
        return self.net.send(self.address, dst, wire)

    def request(self, dst: str, message: Message) -> Message:
        """Round-trip request/response exchange.

        Raises :class:`NetworkError` on drop and :class:`JxtaError` on an
        undecodable response.
        """
        if self._closed:
            raise NetworkError(f"endpoint {self.address!r} is closed")
        wire = self.transport.wrap(message.to_wire(), peer=dst, local=self.address)
        self.metrics.incr("tx.requests")
        self.metrics.incr("tx.bytes", len(wire))
        raw = self.net.request(self.address, dst, wire)
        plain = self.transport.unwrap(raw, peer=dst, local=self.address)
        try:
            return Message.from_wire(plain)
        except FrameTooLargeError:
            if self._wire is not None:
                self._wire.count_oversize()
            raise
