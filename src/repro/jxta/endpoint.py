"""Endpoint service: a peer's attachment point to the (simulated) network.

Dispatches incoming frames to per-message-type handlers, mirroring JXTA's
endpoint service.  Outgoing traffic goes through an optional
:class:`~repro.jxta.transport.base.SecureTransport` (plain, TLS or CBJX),
which is how the related-work baselines plug in underneath *any* JXTA
traffic without the upper layers knowing.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FrameTooLargeError, JxtaError, NetworkError, TransportError
from repro.jxta.messages import Message
from repro.jxta.transport.base import PlainTransport, SecureTransport
from repro.sim.metrics import Metrics
from repro.sim.network import Frame, SimNetwork

MessageHandler = Callable[[Message, str], Message | None]
"""Receives (message, source_address); may return a response message."""


class Endpoint:
    """A named attachment to the simulated network."""

    def __init__(self, network: SimNetwork, address: str,
                 transport: SecureTransport | None = None) -> None:
        self.network = network
        self.address = address
        self.transport = transport if transport is not None else PlainTransport()
        self.metrics = Metrics()
        self._handlers: dict[str, MessageHandler] = {}
        self._default_handler: MessageHandler | None = None
        self._wire = None  # set by install_wire_boundary()
        network.register(address, self._on_frame)

    def close(self) -> None:
        self.network.unregister(self.address)

    def install_wire_boundary(self) -> None:
        """Validate every inbound frame against :mod:`repro.wire`.

        Once installed, frames that are oversized, of an unknown type or
        that fail their :class:`~repro.wire.schema.FrameSpec` are counted
        under ``wire.reject.*`` and dropped *before* handler dispatch.
        Raw endpoints (tests, taps) stay schema-free unless they opt in.
        """
        # Imported lazily: repro.wire itself imports repro.jxta.messages,
        # so a module-level import here would cycle through the package.
        from repro import wire
        self._wire = wire

    # -- handler registry ----------------------------------------------------

    def on(self, msg_type: str, handler: MessageHandler) -> None:
        if msg_type in self._handlers:
            raise JxtaError(f"handler for {msg_type!r} already registered")
        self._handlers[msg_type] = handler

    def on_default(self, handler: MessageHandler) -> None:
        self._default_handler = handler

    # -- receive path ----------------------------------------------------------

    def _on_frame(self, frame: Frame) -> bytes | None:
        try:
            plain = self.transport.unwrap(frame.payload, peer=frame.src,
                                          local=self.address)
            message = Message.from_wire(plain)
        except (JxtaError, TransportError) as exc:
            # Undecodable traffic is dropped, as a real stack would.
            self.metrics.incr("rx.undecodable")
            self.metrics.incr(f"rx.undecodable.{type(exc).__name__}")
            if self._wire is not None and isinstance(exc, FrameTooLargeError):
                self._wire.count_oversize()
            return None
        if self._wire is not None and not self._wire.check(message):
            self.metrics.incr("rx.rejected")
            return None
        self.metrics.incr("rx.messages")
        handler = self._handlers.get(message.msg_type, self._default_handler)
        if handler is None:
            self.metrics.incr("rx.unhandled")
            return None
        response = handler(message, frame.src)
        if response is None:
            return None
        return self.transport.wrap(response.to_wire(), peer=frame.src,
                                   local=self.address)

    # -- send path ---------------------------------------------------------------

    def send(self, dst: str, message: Message) -> bool:
        """Best-effort one-way message (pipe semantics)."""
        wire = self.transport.wrap(message.to_wire(), peer=dst, local=self.address)
        self.metrics.incr("tx.messages")
        self.metrics.incr("tx.bytes", len(wire))
        return self.network.send(self.address, dst, wire)

    def request(self, dst: str, message: Message) -> Message:
        """Round-trip request/response exchange.

        Raises :class:`NetworkError` on drop and :class:`JxtaError` on an
        undecodable response.
        """
        wire = self.transport.wrap(message.to_wire(), peer=dst, local=self.address)
        self.metrics.incr("tx.requests")
        self.metrics.incr("tx.bytes", len(wire))
        raw = self.network.request(self.address, dst, wire)
        plain = self.transport.unwrap(raw, peer=dst, local=self.address)
        try:
            return Message.from_wire(plain)
        except FrameTooLargeError:
            if self._wire is not None:
                self._wire.count_oversize()
            raise
