"""JXTA pipes: virtual unidirectional message channels.

The Control Module gives every client one *input pipe per group*; other
group members resolve the pipe advertisement and open an *output pipe* to
send (section 2.2).  On our substrate a pipe id maps to an endpoint
address plus a demux tag, so pipe messages are ordinary endpoint messages
carrying the pipe id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import JxtaError, PipeError
from repro.jxta.advertisements import PipeAdvertisement
from repro.jxta.endpoint import Endpoint
from repro.jxta.ids import JxtaID
from repro.jxta.messages import Message

PIPE_MSG_TYPE = "pipe_data"

PipeListener = Callable[[Message, str], None]
"""Called with (inner message, source address) for each pipe delivery."""


@dataclass
class InputPipe:
    """The receiving half of a pipe, bound to a local endpoint."""

    pipe_id: JxtaID
    group: str
    endpoint: Endpoint
    listeners: list[PipeListener] = field(default_factory=list)
    received: list[Message] = field(default_factory=list)

    def deliver(self, inner: Message, src: str) -> None:
        self.received.append(inner)
        for listener in list(self.listeners):
            listener(inner, src)

    def add_listener(self, listener: PipeListener) -> None:
        self.listeners.append(listener)


class PipeRegistry:
    """Per-peer pipe demultiplexer; install once on an endpoint."""

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint
        self._pipes: dict[str, InputPipe] = {}
        endpoint.configure(handlers={PIPE_MSG_TYPE: self._on_pipe_message})

    def create_input_pipe(self, pipe_id: JxtaID, group: str) -> InputPipe:
        key = str(pipe_id)
        if key in self._pipes:
            raise PipeError(f"input pipe {key} already exists")
        pipe = InputPipe(pipe_id=pipe_id, group=group, endpoint=self.endpoint)
        self._pipes[key] = pipe
        return pipe

    def close_pipe(self, pipe_id: JxtaID) -> None:
        self._pipes.pop(str(pipe_id), None)

    def get(self, pipe_id: JxtaID) -> InputPipe | None:
        return self._pipes.get(str(pipe_id))

    def _on_pipe_message(self, message: Message, src: str) -> None:
        wire = self.endpoint._wire
        if wire is not None:
            frame = wire.decode(message)  # cache hit after the boundary
            pipe_key = frame["pipe_id"]
            inner_elem = frame["inner"]
        else:
            pipe_key = message.get_text("pipe_id")
            inner_elem = message.get_xml("inner")
        pipe = self._pipes.get(pipe_key)
        if pipe is None:
            self.endpoint.metrics.incr("pipe.unknown")
            return None
        try:
            inner = Message.from_element(inner_elem)
        except JxtaError:
            # A pipe frame whose payload is not a frame at all: drop it
            # here instead of letting the parse error escape dispatch.
            self.endpoint.metrics.incr("pipe.bad_inner")
            if wire is not None:
                wire.count_reject(message.msg_type, "bad_inner")
            return None
        if wire is not None and not wire.check(inner):
            self.endpoint.metrics.incr("pipe.rejected")
            return None
        pipe.deliver(inner, src)
        return None


class OutputPipe:
    """The sending half, resolved from a :class:`PipeAdvertisement`."""

    def __init__(self, endpoint: Endpoint, advertisement: PipeAdvertisement) -> None:
        if advertisement.pipe_id is None or not advertisement.address:
            raise PipeError("pipe advertisement lacks id or address")
        self.endpoint = endpoint
        self.advertisement = advertisement

    def send(self, inner: Message) -> bool:
        """Wrap ``inner`` in a pipe frame and deliver best-effort."""
        outer = Message(PIPE_MSG_TYPE)
        outer.add_text("pipe_id", str(self.advertisement.pipe_id))
        outer.add_xml("inner", inner.to_element())
        return self.endpoint.send(self.advertisement.address, outer)
