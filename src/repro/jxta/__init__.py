"""From-scratch JXTA core simulation.

Implements the slice of JXTA that JXTA-Overlay (and therefore the paper's
security extension) relies on: identifiers (including crypto-based ids),
XML advertisements, messages, the endpoint service over the simulated
network, unicast pipes, discovery caches, peer groups, membership
services and the TLS/CBJX transport baselines.
"""

from repro.jxta.advertisements import (
    Advertisement,
    FileAdvertisement,
    GroupAdvertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    PresenceAdvertisement,
    StatsAdvertisement,
)
from repro.jxta.discovery import AdvertisementCache
from repro.jxta.endpoint import Endpoint
from repro.jxta.ids import (
    JxtaID,
    cbid_from_key,
    matches_key,
    random_group_id,
    random_peer_id,
    random_pipe_id,
)
from repro.jxta.messages import Message
from repro.jxta.peergroup import GroupTable, PeerGroup
from repro.jxta.pipes import InputPipe, OutputPipe, PipeRegistry

__all__ = [
    "Advertisement",
    "PeerAdvertisement",
    "PipeAdvertisement",
    "FileAdvertisement",
    "PresenceAdvertisement",
    "StatsAdvertisement",
    "GroupAdvertisement",
    "AdvertisementCache",
    "Endpoint",
    "Message",
    "JxtaID",
    "cbid_from_key",
    "matches_key",
    "random_peer_id",
    "random_pipe_id",
    "random_group_id",
    "GroupTable",
    "PeerGroup",
    "InputPipe",
    "OutputPipe",
    "PipeRegistry",
]
