"""Peer groups: overlapping sets of peers that may interact.

JXTA-Overlay organizes authenticated end users into overlapping groups;
only members of the same group may exchange messages (section 2.1).
Group state lives authoritatively on the broker; clients hold a local
view refreshed through broker functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GroupError
from repro.jxta.ids import JxtaID


@dataclass
class PeerGroup:
    """One group: identity plus current member peer ids.

    In a federated deployment each broker's :class:`GroupTable` holds
    the *local shard* of a group — the members homed on that broker —
    so ``members`` here is shard-local, not global.  ``epoch`` tracks
    the group-cast key epoch this shard has observed (bumped on every
    membership change, see :mod:`repro.crypto.groupkey`);
    ``member_since`` records the epoch at which each member joined so
    key hand-out and store-and-forward replay never reach back before a
    member's join.
    """

    group_id: JxtaID
    name: str
    description: str = ""
    members: set[str] = field(default_factory=set)  # peer id URNs
    epoch: int = 0
    member_since: dict[str, int] = field(default_factory=dict)

    def add_member(self, peer_id: JxtaID | str) -> None:
        pid = str(peer_id)
        self.members.add(pid)
        self.member_since.setdefault(pid, self.epoch)

    def remove_member(self, peer_id: JxtaID | str) -> None:
        pid = str(peer_id)
        self.members.discard(pid)
        self.member_since.pop(pid, None)

    def has_member(self, peer_id: JxtaID | str) -> bool:
        return str(peer_id) in self.members

    def joined_epoch(self, peer_id: JxtaID | str) -> int:
        """Epoch at which a member joined (0 for pre-epoch members)."""
        return self.member_since.get(str(peer_id), 0)

    def __len__(self) -> int:
        return len(self.members)


class GroupTable:
    """Name-indexed group collection with membership helpers."""

    def __init__(self) -> None:
        self._groups: dict[str, PeerGroup] = {}

    def create(self, group_id: JxtaID, name: str, description: str = "") -> PeerGroup:
        if name in self._groups:
            raise GroupError(f"group {name!r} already exists")
        group = PeerGroup(group_id=group_id, name=name, description=description)
        self._groups[name] = group
        return group

    def get(self, name: str) -> PeerGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise GroupError(f"unknown group {name!r}") from None

    def get_or_none(self, name: str) -> PeerGroup | None:
        return self._groups.get(name)

    def names(self) -> list[str]:
        return sorted(self._groups)

    def groups_of(self, peer_id: JxtaID | str) -> list[PeerGroup]:
        pid = str(peer_id)
        return [g for g in self._groups.values() if pid in g.members]

    def drop_member_everywhere(self, peer_id: JxtaID | str) -> int:
        """Remove a peer from all groups (logout); returns removal count."""
        pid = str(peer_id)
        n = 0
        for group in self._groups.values():
            if pid in group.members:
                group.remove_member(pid)
                n += 1
        return n

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, name: str) -> bool:
        return name in self._groups
