"""Discovery service: the advertisement cache and index.

Each peer holds a local cache; brokers hold the authoritative global
index that JXTA-Overlay's design centralizes on them (section 2.1: they
"maintain a global index of available resources").  Both are the same
data structure with replacement semantics keyed on
:meth:`Advertisement.key` and expiration driven by the virtual clock.

The index stores **raw XML elements**, not parsed advertisement objects:
signed advertisements must survive the cache byte-identically or their
signatures would break — exactly the property ref [15]'s scheme needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdvertisementError, DiscoveryError
from repro.jxta.advertisements import Advertisement
from repro.sim.clock import VirtualClock
from repro.xmllib import Element

#: default advertisement lifetime in virtual seconds (JXTA's default
#: local cache lifetime is measured in hours; we keep it configurable)
DEFAULT_LIFETIME = 3600.0


@dataclass
class CacheEntry:
    element: Element
    parsed: Advertisement
    published_at: float
    expires_at: float


class AdvertisementCache:
    """A replacement cache of advertisements with virtual-time expiry."""

    def __init__(self, clock: VirtualClock, lifetime: float = DEFAULT_LIFETIME) -> None:
        self.clock = clock
        self.lifetime = lifetime
        self._entries: dict[tuple[str, str, str], CacheEntry] = {}

    def publish(self, element: Element, lifetime: float | None = None) -> Advertisement:
        """Insert (or replace) an advertisement from its XML form.

        Returns the parsed advertisement.  Raises
        :class:`AdvertisementError` for unknown/malformed documents.
        """
        parsed = Advertisement.from_element(element)
        life = self.lifetime if lifetime is None else lifetime
        now = self.clock.now
        self._entries[parsed.key()] = CacheEntry(
            element=element.deep_copy(),
            parsed=parsed,
            published_at=now,
            expires_at=now + life,
        )
        return parsed

    def publish_advertisement(self, adv: Advertisement,
                              lifetime: float | None = None) -> Advertisement:
        """Convenience: publish a typed advertisement object."""
        return self.publish(adv.to_element(), lifetime=lifetime)

    def _live_entries(self) -> list[CacheEntry]:
        now = self.clock.now
        return [e for e in self._entries.values() if e.expires_at > now]

    def expire(self) -> int:
        """Drop expired entries; returns how many were removed."""
        now = self.clock.now
        stale = [k for k, e in self._entries.items() if e.expires_at <= now]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def remove(self, key: tuple[str, str, str]) -> bool:
        """Drop one entry by its replacement key (shard hand-off)."""
        return self._entries.pop(key, None) is not None

    def remove_peer(self, peer_id: str) -> int:
        """Drop every advertisement from one peer (disconnect/purge)."""
        stale = [k for k, e in self._entries.items() if str(e.parsed.peer_id) == peer_id]
        for k in stale:
            del self._entries[k]
        return len(stale)

    # -- queries -------------------------------------------------------------

    def find(self, adv_type: str | None = None, peer_id: str | None = None,
             group: str | None = None) -> list[CacheEntry]:
        """All live entries matching the given filters."""
        out = []
        for entry in self._live_entries():
            parsed = entry.parsed
            if adv_type is not None and parsed.TYPE != adv_type:
                continue
            if peer_id is not None and str(parsed.peer_id) != peer_id:
                continue
            if group is not None and getattr(parsed, "group", None) != group:
                continue
            out.append(entry)
        return out

    def find_one(self, adv_type: str, peer_id: str,
                 group: str | None = None) -> CacheEntry:
        """Exactly-one lookup; raises :class:`DiscoveryError` otherwise."""
        entries = self.find(adv_type=adv_type, peer_id=peer_id, group=group)
        if not entries:
            raise DiscoveryError(
                f"no live {adv_type} for peer {peer_id}"
                + (f" in group {group}" if group else ""))
        if len(entries) > 1:
            raise DiscoveryError(
                f"ambiguous {adv_type} lookup for peer {peer_id}: {len(entries)} hits")
        return entries[0]

    def elements(self, **filters: str | None) -> list[Element]:
        """Raw XML documents for wire responses (deep copies)."""
        return [e.element.deep_copy() for e in self.find(**filters)]

    def __len__(self) -> int:
        return len(self._live_entries())
