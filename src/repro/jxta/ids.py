"""JXTA identifiers: peer, pipe and group ids — including CBIDs.

JXTA names every resource with a URN.  Two flavours exist here:

* **random ids** (``urn:jxta:uuid-...``) — what plain JXTA-Overlay uses;
* **crypto-based ids, CBIDs** (``urn:jxta:cbid-...``, ref [20]) — the id
  *is* the hash of the owner's public key, so possession of the matching
  private key proves ownership of the id.  The paper's secureLogin step 7
  and the signed-advertisement scheme both rest on this binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PublicKey
from repro.errors import JxtaError

_UUID_PREFIX = "urn:jxta:uuid-"
_CBID_PREFIX = "urn:jxta:cbid-"

#: CBIDs use a truncated SHA-256 of the key fingerprint (16 bytes is the
#: conventional JXTA id payload size and plenty for collision resistance
#: at simulation scale).
CBID_BYTES = 16


@dataclass(frozen=True, order=True)
class JxtaID:
    """An opaque JXTA URN with a kind discriminator ("peer", "pipe"...)."""

    urn: str
    kind: str

    def __post_init__(self) -> None:
        if not (self.urn.startswith(_UUID_PREFIX) or self.urn.startswith(_CBID_PREFIX)):
            raise JxtaError(f"not a JXTA URN: {self.urn!r}")

    @property
    def is_cbid(self) -> bool:
        return self.urn.startswith(_CBID_PREFIX)

    @property
    def hex_payload(self) -> str:
        prefix = _CBID_PREFIX if self.is_cbid else _UUID_PREFIX
        return self.urn[len(prefix):]

    def __str__(self) -> str:
        return self.urn


def _random_urn(drbg: HmacDrbg) -> str:
    return _UUID_PREFIX + drbg.generate(CBID_BYTES).hex()


def random_peer_id(drbg: HmacDrbg) -> JxtaID:
    """A conventional (non-crypto-bound) peer id."""
    return JxtaID(_random_urn(drbg), "peer")


def random_pipe_id(drbg: HmacDrbg) -> JxtaID:
    return JxtaID(_random_urn(drbg), "pipe")


def random_group_id(drbg: HmacDrbg) -> JxtaID:
    return JxtaID(_random_urn(drbg), "group")


def cbid_from_key(pub: PublicKey, kind: str = "peer") -> JxtaID:
    """Derive a crypto-based identifier from a public key (ref [20])."""
    payload = pub.fingerprint()[:CBID_BYTES]
    return JxtaID(_CBID_PREFIX + payload.hex(), kind)


def parse_id(urn: str, kind: str) -> JxtaID:
    """Parse a URN received off the wire; raises :class:`JxtaError`."""
    if not isinstance(urn, str) or not urn:
        raise JxtaError("empty identifier")
    return JxtaID(urn, kind)


def matches_key(peer_id: JxtaID, pub: PublicKey) -> bool:
    """The CBID authenticity check: does ``peer_id`` bind to ``pub``?

    Returns ``False`` for non-CBID ids — a random id asserts no key
    binding, so it can never pass the check.
    """
    if not peer_id.is_cbid:
        return False
    return peer_id.hex_payload == pub.fingerprint()[:CBID_BYTES].hex()
