"""Membership services: JXTA's identity-management core service.

The paper (section 3) notes that all of JXTA's stock security hinges on
one particular membership service implementation, the *Personal Secure
Environment* (PSE), which only accepts Java keystores / X.509 — a
constraint the proposed extension avoids.  We model the service interface
and two implementations so that constraint is visible in code:

* :class:`NullMembership` — stock JXTA-Overlay: a username string is the
  whole identity (established out-of-band by the login primitive);
* :class:`PseMembership` — keystore-backed identities as PSE does; TLS
  and CBJX (the baselines) require this one, mirroring how real JXTA
  ties TLS/CBJX to PSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.crypto.rsa import KeyPair, PublicKey
from repro.errors import JxtaError


@dataclass(frozen=True)
class Identity:
    """An authenticated local identity within a peer group."""

    name: str
    public_key: PublicKey | None = None


class MembershipService(Protocol):
    """How a peer establishes and exposes its identity."""

    def current_identity(self) -> Identity | None: ...

    def apply(self, name: str, secret: str | None = None) -> Identity: ...

    def resign(self) -> None: ...


class NullMembership:
    """Anyone may claim any name; no cryptographic binding (stock JXTA)."""

    def __init__(self) -> None:
        self._identity: Identity | None = None

    def current_identity(self) -> Identity | None:
        return self._identity

    def apply(self, name: str, secret: str | None = None) -> Identity:
        self._identity = Identity(name=name)
        return self._identity

    def resign(self) -> None:
        self._identity = None


class PseMembership:
    """Keystore-backed identities: name -> key pair, PSE style."""

    def __init__(self) -> None:
        self._keystore: dict[str, KeyPair] = {}
        self._passphrases: dict[str, str] = {}
        self._identity: Identity | None = None

    def store_key(self, name: str, keys: KeyPair, passphrase: str) -> None:
        """Provision a keystore entry (the out-of-band enrolment step)."""
        self._keystore[name] = keys
        self._passphrases[name] = passphrase

    def keypair_of(self, name: str) -> KeyPair:
        try:
            return self._keystore[name]
        except KeyError:
            raise JxtaError(f"no keystore entry for {name!r}") from None

    def current_identity(self) -> Identity | None:
        return self._identity

    def apply(self, name: str, secret: str | None = None) -> Identity:
        if name not in self._keystore:
            raise JxtaError(f"no keystore entry for {name!r}")
        if self._passphrases[name] != (secret or ""):
            raise JxtaError("keystore passphrase mismatch")
        self._identity = Identity(name=name, public_key=self._keystore[name].public)
        return self._identity

    def resign(self) -> None:
        self._identity = None
