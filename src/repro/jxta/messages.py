"""JXTA wire messages.

A JXTA message is an ordered set of named elements.  We model it as an
XML document::

    <Message ns="jxta-overlay" type="login_req">
      <Elem name="username">alice</Elem>
      <Elem name="payload" enc="base64">...</Elem>
      <Elem name="adv"><PipeAdvertisement>...</PipeAdvertisement></Elem>
    </Message>

Element values are strings, bytes (base64-tagged) or nested XML elements.
``to_wire``/``from_wire`` produce/consume the exact bytes that cross the
simulated network, so taps see real serialized traffic and message sizes
are honest.
"""

from __future__ import annotations

import json
from typing import Any

from repro import perf
from repro.errors import FrameTooLargeError, JxtaError, XMLError, XMLParseError
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element, parse, serialize

MESSAGE_TAG = "Message"
ELEM_TAG = "Elem"

#: Default ceiling on the serialized size of a single frame.  Anything
#: larger is refused by :meth:`Message.from_wire` *before* XML parsing —
#: the global backstop against resource-exhaustion frames (the per-field
#: bounds in :mod:`repro.wire` are the fine-grained layer above this).
DEFAULT_MAX_WIRE_BYTES = 8 << 20

_max_wire_bytes = DEFAULT_MAX_WIRE_BYTES


def max_wire_bytes() -> int:
    """The currently configured frame-size ceiling in bytes."""
    return _max_wire_bytes


def set_max_wire_bytes(limit: int) -> int:
    """Reconfigure the frame-size ceiling; returns the previous value."""
    global _max_wire_bytes
    if limit < 1:
        raise ValueError("max wire bytes must be >= 1")
    previous = _max_wire_bytes
    _max_wire_bytes = limit
    return previous


class Message:
    """An ordered, named-element JXTA message."""

    def __init__(self, msg_type: str, ns: str = "jxta-overlay") -> None:
        if not msg_type:
            raise JxtaError("message type must be non-empty")
        self.msg_type = msg_type
        self.ns = ns
        self._elements: list[tuple[str, Any]] = []
        self._decoded: Any = None  # repro.wire decode cache; see invalidate()
        self._wire: bytes | None = None  # serialized-bytes cache

    # -- building ----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached views (decoded frame, serialized bytes) after a
        mutation."""
        self._decoded = None
        self._wire = None

    def add_text(self, name: str, value: str) -> "Message":
        if not isinstance(value, str):
            raise JxtaError(
                f"add_text({name!r}) requires str, got {type(value).__name__}")
        self._elements.append((name, value))
        self.invalidate()
        return self

    def add_bytes(self, name: str, value: bytes) -> "Message":
        self._elements.append((name, bytes(value)))
        self.invalidate()
        return self

    def add_xml(self, name: str, value: Element) -> "Message":
        if not isinstance(value, Element):
            raise JxtaError("add_xml requires an Element")
        self._elements.append((name, value))
        self.invalidate()
        return self

    def add_json(self, name: str, value: dict | list) -> "Message":
        """Convenience for structured payloads (envelopes, lists)."""
        self._elements.append((name, json.dumps(value, sort_keys=True)))
        self.invalidate()
        return self

    # -- reading -----------------------------------------------------------

    def names(self) -> list[str]:
        return [n for n, _ in self._elements]

    def has(self, name: str) -> bool:
        return any(n == name for n, _ in self._elements)

    def _get(self, name: str) -> Any:
        for n, v in self._elements:
            if n == name:
                return v
        raise JxtaError(f"message {self.msg_type!r} has no element {name!r}")

    def get_text(self, name: str) -> str:
        v = self._get(name)
        if not isinstance(v, str):
            raise JxtaError(f"element {name!r} is not text")
        return v

    def get_bytes(self, name: str) -> bytes:
        v = self._get(name)
        if not isinstance(v, bytes):
            raise JxtaError(f"element {name!r} is not binary")
        return v

    def get_xml(self, name: str) -> Element:
        v = self._get(name)
        if not isinstance(v, Element):
            raise JxtaError(f"element {name!r} is not XML")
        return v

    def get_json(self, name: str) -> Any:
        try:
            return json.loads(self.get_text(name))
        except json.JSONDecodeError as exc:
            raise JxtaError(f"element {name!r} is not valid JSON: {exc}") from exc

    # -- wire format ---------------------------------------------------------

    def to_element(self) -> Element:
        root = Element(MESSAGE_TAG, attrib={"ns": self.ns, "type": self.msg_type})
        for name, value in self._elements:
            if isinstance(value, Element):
                holder = root.add(ELEM_TAG, attrib={"name": name, "enc": "xml"})
                holder.append(value.deep_copy())
            elif isinstance(value, bytes):
                root.add(ELEM_TAG, attrib={"name": name, "enc": "base64"},
                         text=b64encode(value))
            else:
                root.add(ELEM_TAG, attrib={"name": name}, text=value)
        return root

    def to_wire(self) -> bytes:
        """Serialized frame bytes, memoized until the next mutation.

        A message resent verbatim (datagram retry, group fan-out, relay)
        reuses the buffer it was first serialized into — or, for a
        message that arrived off the wire, the exact buffer it arrived
        in — instead of re-walking the element tree.
        """
        if self._wire is not None:
            return self._wire
        wire = serialize(self.to_element()).encode("utf-8")
        if perf.FLAGS.wire_cache:
            self._wire = wire
        return wire

    @classmethod
    def from_element(cls, root: Element) -> "Message":
        if root.tag != MESSAGE_TAG:
            raise JxtaError(f"expected <{MESSAGE_TAG}>, got <{root.tag}>")
        msg_type = root.get("type")
        ns = root.get("ns") or "jxta-overlay"
        if not msg_type:
            raise JxtaError("message has no type attribute")
        msg = cls(msg_type, ns=ns)
        for holder in root.findall(ELEM_TAG):
            name = holder.get("name")
            if not name:
                raise JxtaError("message element has no name")
            enc = holder.get("enc")
            if enc == "xml":
                if len(holder.children) != 1:
                    raise JxtaError(f"xml element {name!r} must hold exactly one child")
                msg.add_xml(name, holder.children[0])
            elif enc == "base64":
                msg.add_bytes(name, b64decode(holder.text))
            elif enc is None:
                msg.add_text(name, holder.text)
            else:
                raise JxtaError(f"unknown element encoding {enc!r}")
        return msg

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        if len(wire) > _max_wire_bytes:
            raise FrameTooLargeError(
                f"frame of {len(wire)} bytes exceeds the "
                f"{_max_wire_bytes}-byte wire cap",
                size=len(wire), limit=_max_wire_bytes)
        try:
            root = parse(wire.decode("utf-8"))
        except (UnicodeDecodeError, XMLParseError, XMLError) as exc:
            raise JxtaError(f"undecodable message: {exc}") from exc
        message = cls.from_element(root)
        if perf.FLAGS.wire_cache:
            message._wire = bytes(wire)
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Message {self.ns}:{self.msg_type} elems={self.names()}>"
