"""JXTA advertisements: typed XML metadata documents.

Advertisements are *the* data structure of a JXTA network — peers learn
about each other exclusively through them (section 2.2 of the paper).
JXTA-Overlay clients periodically broadcast one advertisement per concern
per group: pipe location, shared files, statistics, presence.

Every advertisement type serializes to an XML element whose **root tag is
the advertisement type**.  This matters for the paper: the secure scheme
(ref [15]) signs advertisements *in place* so this root type is preserved
and untouched JXTA-Overlay code keeps dispatching on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Type

from repro.errors import AdvertisementError
from repro.jxta.ids import JxtaID, parse_id
from repro.xmllib import Element

#: registry: root tag -> advertisement class
_REGISTRY: dict[str, Type["Advertisement"]] = {}


def register_advertisement(cls: Type["Advertisement"]) -> Type["Advertisement"]:
    """Class decorator adding the type to the parse registry."""
    _REGISTRY[cls.TYPE] = cls
    return cls


@dataclass
class Advertisement:
    """Base class.  Subclasses define ``TYPE`` and field codecs."""

    TYPE: ClassVar[str] = "Advertisement"

    #: id of the peer that published this advertisement
    peer_id: JxtaID

    #: extra (tag, text) fields any layer may attach; preserved verbatim
    extras: dict[str, str] = field(default_factory=dict)

    def _body_fields(self) -> dict[str, str]:
        """Subclass hook: the typed payload fields."""
        return {}

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "Advertisement":
        return cls(peer_id=peer_id, extras=fields)

    # -- XML codec -----------------------------------------------------------

    def to_element(self) -> Element:
        root = Element(self.TYPE)
        root.add("PeerId", text=str(self.peer_id))
        for tag, text in self._body_fields().items():
            root.add(tag, text=text)
        for tag, text in self.extras.items():
            root.add(tag, text=text)
        return root

    @classmethod
    def from_element(cls, root: Element) -> "Advertisement":
        """Parse any registered advertisement type (dispatch on root tag).

        Unknown child elements (including <Signature>) are ignored here;
        the secure layer re-parses the raw element when it needs them.
        """
        target = _REGISTRY.get(root.tag)
        if target is None:
            raise AdvertisementError(f"unknown advertisement type <{root.tag}>")
        if cls is not Advertisement and target is not cls:
            raise AdvertisementError(
                f"expected a <{cls.TYPE}>, got a <{root.tag}>")
        peer_text = root.findtext("PeerId")
        if not peer_text:
            raise AdvertisementError(f"<{root.tag}> has no PeerId")
        peer_id = parse_id(peer_text, "peer")
        fields = {
            child.tag: child.text
            for child in root.children
            if child.tag not in ("PeerId", "Signature") and not child.children
        }
        return target._from_fields(peer_id, fields)

    @property
    def advertisement_type(self) -> str:
        return self.TYPE

    def key(self) -> tuple[str, str, str]:
        """Identity for discovery-index replacement semantics."""
        return (self.TYPE, str(self.peer_id), "")


def _take(fields: dict[str, str], tag: str, *, where: str) -> str:
    try:
        return fields.pop(tag)
    except KeyError:
        raise AdvertisementError(f"<{where}> is missing <{tag}>") from None


@register_advertisement
@dataclass
class PeerAdvertisement(Advertisement):
    """Who a peer is: name and network address."""

    TYPE: ClassVar[str] = "PeerAdvertisement"
    name: str = ""
    address: str = ""

    def _body_fields(self) -> dict[str, str]:
        return {"Name": self.name, "Address": self.address}

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "PeerAdvertisement":
        name = _take(fields, "Name", where=cls.TYPE)
        address = _take(fields, "Address", where=cls.TYPE)
        return cls(peer_id=peer_id, name=name, address=address, extras=fields)


@register_advertisement
@dataclass
class PipeAdvertisement(Advertisement):
    """Where to reach a peer's input pipe for one group."""

    TYPE: ClassVar[str] = "PipeAdvertisement"
    pipe_id: JxtaID | None = None
    group: str = ""
    address: str = ""
    pipe_type: str = "JxtaUnicast"

    def _body_fields(self) -> dict[str, str]:
        if self.pipe_id is None:
            raise AdvertisementError("PipeAdvertisement requires a pipe id")
        return {
            "PipeId": str(self.pipe_id),
            "Group": self.group,
            "Address": self.address,
            "PipeType": self.pipe_type,
        }

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "PipeAdvertisement":
        pipe_id = parse_id(_take(fields, "PipeId", where=cls.TYPE), "pipe")
        group = _take(fields, "Group", where=cls.TYPE)
        address = _take(fields, "Address", where=cls.TYPE)
        pipe_type = fields.pop("PipeType", "JxtaUnicast")
        return cls(peer_id=peer_id, pipe_id=pipe_id, group=group,
                   address=address, pipe_type=pipe_type, extras=fields)

    def key(self) -> tuple[str, str, str]:
        return (self.TYPE, str(self.peer_id), self.group)


@register_advertisement
@dataclass
class FileAdvertisement(Advertisement):
    """A file a peer offers to the group (name, size, content hash)."""

    TYPE: ClassVar[str] = "FileAdvertisement"
    file_name: str = ""
    size: int = 0
    sha256_hex: str = ""
    group: str = ""

    def _body_fields(self) -> dict[str, str]:
        return {
            "FileName": self.file_name,
            "Size": str(self.size),
            "Sha256": self.sha256_hex,
            "Group": self.group,
        }

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "FileAdvertisement":
        name = _take(fields, "FileName", where=cls.TYPE)
        size_text = _take(fields, "Size", where=cls.TYPE)
        try:
            size = int(size_text)
        except ValueError:
            raise AdvertisementError(f"bad file size {size_text!r}") from None
        sha = _take(fields, "Sha256", where=cls.TYPE)
        group = _take(fields, "Group", where=cls.TYPE)
        return cls(peer_id=peer_id, file_name=name, size=size,
                   sha256_hex=sha, group=group, extras=fields)

    def key(self) -> tuple[str, str, str]:
        return (self.TYPE, str(self.peer_id), f"{self.group}/{self.file_name}")


@register_advertisement
@dataclass
class PresenceAdvertisement(Advertisement):
    """Periodic liveness beacon; Timestamp is virtual seconds."""

    TYPE: ClassVar[str] = "PresenceAdvertisement"
    group: str = ""
    timestamp: float = 0.0
    status: str = "online"

    def _body_fields(self) -> dict[str, str]:
        return {
            "Group": self.group,
            "Timestamp": repr(self.timestamp),
            "Status": self.status,
        }

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "PresenceAdvertisement":
        group = _take(fields, "Group", where=cls.TYPE)
        ts_text = _take(fields, "Timestamp", where=cls.TYPE)
        try:
            ts = float(ts_text)
        except ValueError:
            raise AdvertisementError(f"bad timestamp {ts_text!r}") from None
        status = fields.pop("Status", "online")
        return cls(peer_id=peer_id, group=group, timestamp=ts,
                   status=status, extras=fields)

    def key(self) -> tuple[str, str, str]:
        return (self.TYPE, str(self.peer_id), self.group)


@register_advertisement
@dataclass
class StatsAdvertisement(Advertisement):
    """Peer statistics snapshot (JXTA-Overlay broadcasts these too)."""

    TYPE: ClassVar[str] = "StatsAdvertisement"
    group: str = ""
    messages_sent: int = 0
    files_shared: int = 0

    def _body_fields(self) -> dict[str, str]:
        return {
            "Group": self.group,
            "MessagesSent": str(self.messages_sent),
            "FilesShared": str(self.files_shared),
        }

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "StatsAdvertisement":
        group = _take(fields, "Group", where=cls.TYPE)
        try:
            sent = int(fields.pop("MessagesSent", "0"))
            shared = int(fields.pop("FilesShared", "0"))
        except ValueError as exc:
            raise AdvertisementError(f"bad stats payload: {exc}") from None
        return cls(peer_id=peer_id, group=group, messages_sent=sent,
                   files_shared=shared, extras=fields)

    def key(self) -> tuple[str, str, str]:
        return (self.TYPE, str(self.peer_id), self.group)


@register_advertisement
@dataclass
class GroupAdvertisement(Advertisement):
    """A published peer group (created through the broker)."""

    TYPE: ClassVar[str] = "GroupAdvertisement"
    group_id: JxtaID | None = None
    name: str = ""
    description: str = ""

    def _body_fields(self) -> dict[str, str]:
        if self.group_id is None:
            raise AdvertisementError("GroupAdvertisement requires a group id")
        return {
            "GroupId": str(self.group_id),
            "Name": self.name,
            "Description": self.description,
        }

    @classmethod
    def _from_fields(cls, peer_id: JxtaID, fields: dict[str, str]) -> "GroupAdvertisement":
        group_id = parse_id(_take(fields, "GroupId", where=cls.TYPE), "group")
        name = _take(fields, "Name", where=cls.TYPE)
        description = fields.pop("Description", "")
        return cls(peer_id=peer_id, group_id=group_id, name=name,
                   description=description, extras=fields)

    def key(self) -> tuple[str, str, str]:
        return (self.TYPE, self.name, "")


def advertisement_types() -> tuple[str, ...]:
    """The registered advertisement root tags."""
    return tuple(sorted(_REGISTRY))
