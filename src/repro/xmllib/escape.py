"""XML character escaping for text nodes and attribute values."""

from __future__ import annotations

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;", "\n": "&#10;", "\t": "&#9;", "\r": "&#13;"}

_ENTITY_MAP = {
    "amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'",
}


# str.translate with a precomputed table is the fastest pure-Python way
# to escape; these run on every serialized text node.
_TEXT_TABLE = str.maketrans(_TEXT_ESCAPES)
_ATTR_TABLE = str.maketrans(_ATTR_ESCAPES)


def escape_text(text: str) -> str:
    """Escape character data for a text node."""
    return text.translate(_TEXT_TABLE)


def escape_attr(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return text.translate(_ATTR_TABLE)


def unescape(text: str) -> str:
    """Resolve the five predefined entities plus numeric references."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise ValueError(f"unterminated entity reference at offset {i}")
        name = text[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITY_MAP:
            out.append(_ENTITY_MAP[name])
        else:
            raise ValueError(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)
