"""A small XML element tree.

JXTA advertisements and messages are XML metadata documents; the paper's
contribution signs and canonicalizes them.  We use our own element type
(rather than ``xml.etree``) so serialization, parsing and canonicalization
are all under the package's control and bit-for-bit stable — a property
XMLdsig depends on.

The model is deliberately simple: an element has a tag, ordered
attributes, an optional text payload, and ordered children.  Mixed content
(text interleaved with children) is not needed by any JXTA document and is
rejected at serialization time.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XMLError

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


def _check_name(name: str) -> str:
    if not name or name[0] not in _NAME_START or any(c not in _NAME_CHARS for c in name):
        raise XMLError(f"invalid XML name: {name!r}")
    return name


class Element:
    """An XML element node."""

    __slots__ = ("tag", "attrib", "text", "children")

    def __init__(self, tag: str, attrib: dict[str, str] | None = None,
                 text: str = "", children: list["Element"] | None = None) -> None:
        self.tag = _check_name(tag)
        self.attrib: dict[str, str] = dict(attrib) if attrib else {}
        for key in self.attrib:
            _check_name(key)
        self.text = text
        self.children: list[Element] = list(children) if children else []

    # -- construction -----------------------------------------------------

    def add(self, tag: str, attrib: dict[str, str] | None = None,
            text: str = "") -> "Element":
        """Create a child element, append it, and return it."""
        child = Element(tag, attrib=attrib, text=text)
        self.children.append(child)
        return child

    def append(self, child: "Element") -> "Element":
        if not isinstance(child, Element):
            raise XMLError("children must be Element instances")
        self.children.append(child)
        return child

    def remove(self, child: "Element") -> None:
        self.children.remove(child)

    def set(self, key: str, value: str) -> None:
        _check_name(key)
        self.attrib[key] = value

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.attrib.get(key, default)

    # -- navigation -------------------------------------------------------

    def find(self, tag: str) -> "Element | None":
        """First direct child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_required(self, tag: str) -> "Element":
        """Like :meth:`find` but raises :class:`XMLError` when absent."""
        child = self.find(tag)
        if child is None:
            raise XMLError(f"<{self.tag}> has no <{tag}> child")
        return child

    def findall(self, tag: str) -> list["Element"]:
        """All direct children with the given tag."""
        return [c for c in self.children if c.tag == tag]

    def findtext(self, tag: str, default: str = "") -> str:
        child = self.find(tag)
        return child.text if child is not None else default

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.iter()

    # -- comparison / copying ----------------------------------------------

    def deep_copy(self) -> "Element":
        return Element(
            self.tag,
            attrib=dict(self.attrib),
            text=self.text,
            children=[c.deep_copy() for c in self.children],
        )

    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality of tag, attributes, text and child order."""
        if (self.tag != other.tag or self.attrib != other.attrib
                or self.text != other.text
                or len(self.children) != len(other.children)):
            return False
        return all(a.structurally_equal(b)
                   for a, b in zip(self.children, other.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={len(self.attrib)} children={len(self.children)}>"
