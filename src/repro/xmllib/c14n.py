"""Canonical XML serialization (a pragmatic C14N subset).

XMLdsig digests and signs *canonicalized* octets so that semantically
identical documents produce identical signatures regardless of attribute
order, whitespace style or empty-element syntax.  Full W3C C14N handles
namespace inheritance corner cases we do not need; this subset implements
the rules that matter for our document set:

* attributes sorted lexicographically by name,
* empty elements written as ``<tag></tag>`` (never ``<tag/>``),
* text escaped minimally and identically to the serializer,
* no XML declaration, no insignificant whitespace between child elements.

Because both signer and verifier run this exact function over the parsed
tree, round-tripping a document through serialize->parse cannot change its
canonical form — property-tested in the suite.
"""

from __future__ import annotations

from repro.errors import XMLError
from repro.xmllib.element import Element
from repro.xmllib.escape import escape_attr, escape_text


def canonicalize(elem: Element) -> bytes:
    """Canonical octets of an element subtree (UTF-8)."""
    parts: list[str] = []
    _c14n_into(elem, parts)
    return "".join(parts).encode("utf-8")


def _c14n_into(elem: Element, parts: list[str]) -> None:
    attrs = "".join(
        f' {k}="{escape_attr(elem.attrib[k])}"' for k in sorted(elem.attrib)
    )
    parts.append(f"<{elem.tag}{attrs}>")
    if elem.text and elem.children:
        raise XMLError(f"<{elem.tag}> has mixed content; cannot canonicalize")
    if elem.text:
        parts.append(escape_text(elem.text))
    for child in elem.children:
        _c14n_into(child, parts)
    parts.append(f"</{elem.tag}>")
