"""XML text -> element tree: a small recursive-descent parser.

Supports the XML subset JXTA documents actually use: elements, attributes
(single or double quoted), character data, comments, processing
instructions / the XML declaration, and CDATA sections.  DTDs and external
entities are intentionally rejected — this is a security-focused package
and entity expansion is a classic attack surface.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmllib.element import Element
from repro.xmllib.escape import unescape

_WS = " \t\r\n"


class _Cursor:
    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_ws(self) -> None:
        while not self.eof() and self.text[self.pos] in _WS:
            self.pos += 1

    def expect(self, s: str) -> None:
        if not self.startswith(s):
            raise XMLParseError(
                f"expected {s!r} at offset {self.pos}: ...{self.text[self.pos:self.pos+24]!r}"
            )
        self.pos += len(s)

    def read_until(self, s: str) -> str:
        end = self.text.find(s, self.pos)
        if end == -1:
            raise XMLParseError(f"unterminated construct, expected {s!r}")
        out = self.text[self.pos:end]
        self.pos = end + len(s)
        return out

    def read_name(self) -> str:
        start = self.pos
        while not self.eof() and self.text[self.pos] not in _WS + "=/>\"'<":
            self.pos += 1
        if self.pos == start:
            raise XMLParseError(f"expected a name at offset {start}")
        return self.text[start:self.pos]


def parse(text: str) -> Element:
    """Parse an XML document (or fragment with one root element)."""
    cur = _Cursor(text)
    _skip_misc(cur)
    elem = _parse_element(cur)
    _skip_misc(cur)
    if not cur.eof():
        raise XMLParseError(f"trailing content after the root element at offset {cur.pos}")
    return elem


def _skip_misc(cur: _Cursor) -> None:
    """Skip whitespace, comments, and PIs/XML declaration between elements."""
    while True:
        cur.skip_ws()
        if cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>")
        elif cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->")
        elif cur.startswith("<!DOCTYPE") or cur.startswith("<!ENTITY"):
            raise XMLParseError("DTD/entity declarations are not allowed")
        else:
            return


def _parse_element(cur: _Cursor) -> Element:
    cur.expect("<")
    tag = cur.read_name()
    attrib: dict[str, str] = {}
    while True:
        cur.skip_ws()
        if cur.startswith("/>"):
            cur.advance(2)
            return Element(tag, attrib=attrib)
        if cur.startswith(">"):
            cur.advance(1)
            break
        name = cur.read_name()
        cur.skip_ws()
        cur.expect("=")
        cur.skip_ws()
        quote = cur.peek()
        if quote not in "\"'":
            raise XMLParseError(f"attribute value must be quoted at offset {cur.pos}")
        cur.advance(1)
        value = cur.read_until(quote)
        if name in attrib:
            raise XMLParseError(f"duplicate attribute {name!r} on <{tag}>")
        attrib[name] = unescape_checked(value, cur)
    # Content: either character data or child elements (no mixed content).
    children: list[Element] = []
    text_parts: list[str] = []
    while True:
        if cur.eof():
            raise XMLParseError(f"unexpected end of input inside <{tag}>")
        if cur.startswith("</"):
            cur.advance(2)
            closing = cur.read_name()
            cur.skip_ws()
            cur.expect(">")
            if closing != tag:
                raise XMLParseError(f"mismatched closing tag </{closing}> for <{tag}>")
            text = "".join(text_parts)
            if children and text.strip():
                raise XMLParseError(f"mixed content inside <{tag}> is unsupported")
            return Element(tag, attrib=attrib,
                           text="" if children else text, children=children)
        if cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->")
        elif cur.startswith("<![CDATA["):
            cur.advance(9)
            text_parts.append(cur.read_until("]]>"))
        elif cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>")
        elif cur.startswith("<!"):
            raise XMLParseError("DTD/entity declarations are not allowed")
        elif cur.startswith("<"):
            children.append(_parse_element(cur))
        else:
            start = cur.pos
            nxt = cur.text.find("<", cur.pos)
            if nxt == -1:
                raise XMLParseError(f"unexpected end of input inside <{tag}>")
            raw = cur.text[start:nxt]
            cur.pos = nxt
            text_parts.append(unescape_checked(raw, cur))


def unescape_checked(raw: str, cur: _Cursor) -> str:
    try:
        return unescape(raw)
    except ValueError as exc:
        raise XMLParseError(str(exc)) from exc
