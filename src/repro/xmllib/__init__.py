"""Minimal self-contained XML stack: element tree, parser, serializer, C14N.

JXTA represents advertisements and peer metadata as XML documents
(section 2.2 of the paper); the security extension signs them with
XMLdsig, which requires byte-stable canonicalization.  Everything here is
implemented from scratch so the canonical form is fully specified by this
package.
"""

from repro.xmllib.c14n import canonicalize
from repro.xmllib.element import Element
from repro.xmllib.parser import parse
from repro.xmllib.serializer import document, serialize

__all__ = ["Element", "parse", "serialize", "document", "canonicalize"]
