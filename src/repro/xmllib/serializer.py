"""Element tree -> XML text."""

from __future__ import annotations

from repro.errors import XMLError
from repro.xmllib.element import Element
from repro.xmllib.escape import escape_attr, escape_text


def serialize(elem: Element, indent: int | None = None) -> str:
    """Serialize an element tree.

    ``indent=None`` produces the compact single-line form used on the wire;
    an integer produces pretty-printed output for humans.  Attribute order
    is preserved as inserted (canonical ordering is the job of
    :mod:`repro.xmllib.c14n`).
    """
    parts: list[str] = []
    _serialize_into(elem, parts, indent, 0)
    return "".join(parts)


def _serialize_into(elem: Element, parts: list[str], indent: int | None,
                    depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    attrs = "".join(
        f' {k}="{escape_attr(v)}"' for k, v in elem.attrib.items()
    )
    if elem.text and elem.children:
        raise XMLError(
            f"<{elem.tag}> has both text and children (mixed content unsupported)"
        )
    if not elem.text and not elem.children:
        parts.append(f"{pad}<{elem.tag}{attrs}/>{newline}")
        return
    if elem.text:
        parts.append(f"{pad}<{elem.tag}{attrs}>{escape_text(elem.text)}</{elem.tag}>{newline}")
        return
    parts.append(f"{pad}<{elem.tag}{attrs}>{newline}")
    for child in elem.children:
        _serialize_into(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{elem.tag}>{newline}")


def document(elem: Element, indent: int | None = None) -> str:
    """Serialize with the XML declaration prepended."""
    body = serialize(elem, indent=indent)
    sep = "\n" if indent is not None else ""
    return f'<?xml version="1.0" encoding="UTF-8"?>{sep}{body}'
