"""Presence management helpers.

The broker already refreshes per-session ``last_seen`` on heartbeat
(:meth:`repro.overlay.broker.Broker.fn_presence`); this module adds the
periodic *sweeper* that evicts silent peers, mirroring JXTA-Overlay's
automatic presence management (one of the limitations of raw JXTA that
the middleware exists to fix).
"""

from __future__ import annotations

from repro.overlay.broker import Broker
from repro.sim.scheduler import EventHandle, Scheduler


class PresenceSweeper:
    """Periodically purge broker sessions that stopped beating."""

    def __init__(self, broker: Broker, scheduler: Scheduler,
                 max_age: float = 90.0, interval: float = 30.0) -> None:
        self.broker = broker
        self.max_age = max_age
        self.purged_total = 0
        self._handle: EventHandle = scheduler.schedule_periodic(interval, self._sweep)

    def _sweep(self) -> None:
        purged = self.broker.purge_stale(self.max_age)
        self.purged_total += len(purged)

    def cancel(self) -> None:
        self._handle.cancel()


class FederationSweeper:
    """Periodic anti-entropy driver for one broker's federation layer.

    Each tick expires stale sharded-directory rows and runs one
    digest/delta round against every member — this is what hands off
    entries published degraded during a partition once the wire heals.
    """

    def __init__(self, broker: Broker, scheduler: Scheduler,
                 interval: float = 30.0) -> None:
        self.broker = broker
        self.rounds = 0
        self._handle: EventHandle = scheduler.schedule_periodic(interval, self._sweep)

    def _sweep(self) -> None:
        self.broker.federation.sweep()
        self.rounds += 1

    def cancel(self) -> None:
        self._handle.cancel()
