"""The central user database (section 2.1).

A single entity stores all user configuration — username, password and
group membership — and **only brokers may access it**.  An administrator
provisions users out-of-band.  Passwords are stored salted-and-hashed
(the database itself was never the paper's weak point; the *transport* of
the password during login was).

The database also records which broker currently serves each logged-in
user, which is what lets overlapping groups span brokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.crypto.sha2 import sha256
from repro.errors import DatabaseError
from repro.utils.bytesutil import constant_time_eq


@dataclass
class UserRecord:
    username: str
    salt: bytes
    password_hash: bytes
    groups: set[str] = field(default_factory=set)
    #: address of the broker that authenticated the live session, if any
    active_broker: str | None = None


def _hash_password(salt: bytes, password: str) -> bytes:
    # Era-appropriate salted hash; iterations bumped well above 1 to make
    # offline guessing non-free while keeping tests fast.
    digest = salt + password.encode("utf-8")
    for _ in range(64):
        digest = sha256(digest)
    return digest


class UserDatabase:
    """Username/password/groups store with broker-facing operations."""

    def __init__(self, drbg: HmacDrbg) -> None:
        self._drbg = drbg
        self._users: dict[str, UserRecord] = {}
        self._group_registry: set[str] = set()

    # -- administration (out-of-band, per section 2.1) -------------------

    def register_user(self, username: str, password: str,
                      groups: set[str] | list[str] = ()) -> UserRecord:
        if not username:
            raise DatabaseError("username must be non-empty")
        if username in self._users:
            raise DatabaseError(f"user {username!r} already registered")
        salt = self._drbg.generate(16)
        record = UserRecord(
            username=username,
            salt=salt,
            password_hash=_hash_password(salt, password),
            groups=set(groups),
        )
        self._users[username] = record
        self._group_registry.update(record.groups)
        return record

    def remove_user(self, username: str) -> None:
        if username not in self._users:
            raise DatabaseError(f"unknown user {username!r}")
        del self._users[username]

    def set_password(self, username: str, password: str) -> None:
        record = self._require(username)
        record.salt = self._drbg.generate(16)
        record.password_hash = _hash_password(record.salt, password)

    def register_group(self, name: str) -> None:
        if not name:
            raise DatabaseError("group name must be non-empty")
        self._group_registry.add(name)

    def assign_group(self, username: str, group: str) -> None:
        record = self._require(username)
        record.groups.add(group)
        self._group_registry.add(group)

    def revoke_group(self, username: str, group: str) -> None:
        self._require(username).groups.discard(group)

    # -- broker-facing operations -----------------------------------------

    def check_credentials(self, username: str, password: str) -> bool:
        """Constant-time password check; unknown users also take the hash."""
        record = self._users.get(username)
        if record is None:
            # Burn the same work to avoid a trivial username oracle.
            _hash_password(b"\x00" * 16, password)
            return False
        return constant_time_eq(
            _hash_password(record.salt, password), record.password_hash)

    def groups_of(self, username: str) -> set[str]:
        return set(self._require(username).groups)

    def known_groups(self) -> set[str]:
        return set(self._group_registry)

    def mark_active(self, username: str, broker_address: str) -> None:
        self._require(username).active_broker = broker_address

    def mark_inactive(self, username: str) -> None:
        record = self._users.get(username)
        if record is not None:
            record.active_broker = None

    def active_broker_of(self, username: str) -> str | None:
        return self._require(username).active_broker

    def has_user(self, username: str) -> bool:
        return username in self._users

    def _require(self, username: str) -> UserRecord:
        try:
            return self._users[username]
        except KeyError:
            raise DatabaseError(f"unknown user {username!r}") from None

    def __len__(self) -> int:
        return len(self._users)
