"""The unified primitive result type.

Historically the Client Module primitives returned an inconsistent mix:
``send_msg_peer`` a bare ``bool``, ``send_msg_peer_group`` an ``int``
delivery count, ``request_file`` raw ``bytes`` (or raised).  With the
robustness layer there is more to report than one scalar — how many
attempts a call burned, whether it completed degraded (e.g. a partial
group delivery or a fail-over broker), and how much virtual time it
cost.  :class:`PrimitiveResult` carries all of that.

The explicit accessors are the API: ``result.ok`` answers "did the
primitive succeed", ``result.value`` is the payload (delivery count,
file bytes, sent flag), ``result.unwrap()`` is value-or-raise.
The ``__bool__`` / ``__int__`` shims that once made the object a
drop-in stand-in for the legacy bare returns went through their
deprecation cycle and are gone — truth-testing would collapse the
attempts/degraded story into one bit, which is exactly what this type
exists to avoid.  Sequence access (``len``/iteration/indexing) still
delegates to ``value`` for payload-carrying results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class PrimitiveResult:
    """Outcome of one Client Module primitive invocation.

    Attributes
    ----------
    ok:
        The primitive achieved its goal (full delivery, file verified...).
    value:
        The legacy bare return value (``bool`` sent-flag, ``int``
        delivery count, ``bytes`` content) — what the primitive used to
        return before the redesign.
    attempts:
        Wire attempts consumed, 1 when the first try succeeded.
    elapsed_ms:
        Virtual-clock milliseconds spent inside the primitive,
        backoff waits included.
    degraded:
        Completed, but not cleanly: retries were needed, a fallback
        broker answered, or a group delivery was partial.
    error:
        The last transport-class error seen (``None`` on clean success);
        kept even when ``ok`` is ``True`` so operators can see what the
        retries papered over.
    """

    ok: bool
    value: Any = None
    attempts: int = 1
    elapsed_ms: float = 0.0
    degraded: bool = False
    error: Exception | None = field(default=None, compare=False)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PrimitiveResult):
            return (self.ok, self.value, self.attempts, self.degraded) == \
                   (other.ok, other.value, other.attempts, other.degraded)
        return self.value == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    __hash__ = None  # mutable + value-delegating equality

    def __len__(self) -> int:
        return len(self.value)

    def __iter__(self):
        return iter(self.value)

    def __getitem__(self, item):
        return self.value[item]

    def unwrap(self) -> Any:
        """The legacy value on success; re-raises the recorded error on
        failure (or :class:`~repro.errors.PrimitiveError` if none)."""
        if self.ok:
            return self.value
        if self.error is not None:
            raise self.error
        from repro.errors import PrimitiveError
        raise PrimitiveError("primitive failed without a recorded error")
