"""The Control Module: the layer shared by clients and brokers.

Section 2.2: "The Control Module acts as an intermediate layer between
the Broker and Client Modules, providing the generic functionalities on
regards to group management and messaging."  Concretely it owns the
endpoint, the pipe registry, the local advertisement cache and the
message/advertisement plumbing that both sides use.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.errors import AdvertisementError, OverlayError
from repro.jxta.advertisements import Advertisement, PipeAdvertisement
from repro.jxta.discovery import AdvertisementCache
from repro.jxta.endpoint import Endpoint
from repro.jxta.ids import JxtaID, random_pipe_id
from repro.jxta.messages import Message
from repro.jxta.pipes import InputPipe, OutputPipe, PipeRegistry
from repro.jxta.transport.base import SecureTransport
from repro.net.base import Transport
from repro.overlay.events import EventBus
from repro.sim.metrics import Metrics
from repro.sim.network import SimNetwork
from repro.xmllib import Element

RESULTS_TAG = "Results"


def pack_results(elements: list[Element]) -> Element:
    """Wrap several advertisement documents for a query response."""
    holder = Element(RESULTS_TAG)
    for elem in elements:
        holder.append(elem)
    return holder


def unpack_results(holder: Element) -> list[Element]:
    if holder.tag != RESULTS_TAG:
        raise OverlayError(f"expected <{RESULTS_TAG}>, got <{holder.tag}>")
    return list(holder.children)


def merge_results(*element_lists: list[Element]) -> list[Element]:
    """Merge advertisement documents from several shards, deduplicated.

    Entries are keyed on :meth:`Advertisement.key` (the same replacement
    key the caches use); earlier lists win, so a broker merging a
    scatter-gather response keeps its local copy over a remote one.
    Unparseable documents are dropped.
    """
    merged: dict[tuple[str, str, str], Element] = {}
    for elements in element_lists:
        for element in elements:
            try:
                key = Advertisement.from_element(element).key()
            except (OverlayError, AdvertisementError):
                continue
            merged.setdefault(key, element)
    return list(merged.values())


class ControlModule:
    """Endpoint + pipes + advertisement cache for one overlay entity."""

    def __init__(self, network: SimNetwork | Transport, address: str,
                 drbg: HmacDrbg, adv_lifetime: float = 3600.0,
                 transport: SecureTransport | None = None) -> None:
        """``network`` may be the simulator or any
        :class:`~repro.net.base.Transport` backend (e.g. a
        :class:`~repro.net.tcp.TcpTransport`); the whole overlay stack
        above this module is backend-agnostic."""
        self.network = network
        self.clock = network.clock
        self.drbg = drbg
        self.address = address
        self.endpoint = Endpoint(network, address, transport=transport)
        self.metrics: Metrics = self.endpoint.metrics
        self.pipes = PipeRegistry(self.endpoint)
        self.cache = AdvertisementCache(self.clock, lifetime=adv_lifetime)
        self.events = EventBus()

    def close(self) -> None:
        self.endpoint.close()

    # -- pipe management ---------------------------------------------------

    def open_group_pipe(self, peer_id: JxtaID, group: str) -> tuple[InputPipe, PipeAdvertisement]:
        """Create the input pipe for one group plus its advertisement."""
        pipe_id = random_pipe_id(self.drbg)
        pipe = self.pipes.create_input_pipe(pipe_id, group)
        adv = PipeAdvertisement(
            peer_id=peer_id, pipe_id=pipe_id, group=group, address=self.address)
        return pipe, adv

    def output_pipe(self, adv: PipeAdvertisement) -> OutputPipe:
        return OutputPipe(self.endpoint, adv)

    # -- advertisement handling -----------------------------------------------

    def accept_advertisement(self, element: Element) -> Advertisement:
        """Cache a pushed/fetched advertisement document and emit the event."""
        parsed = self.cache.publish(element)
        self.events.emit("advertisement_received", advertisement=parsed)
        return parsed

    def cached_pipe_advertisement(self, peer_id: str, group: str) -> Element:
        """The raw cached pipe advertisement for (peer, group)."""
        return self.cached_pipe_element(peer_id, group).deep_copy()

    def cached_pipe_element(self, peer_id: str, group: str) -> Element:
        """The cache's own element for (peer, group) — **no copy**.

        Callers must treat the result as read-only: it is the live cache
        entry, and its object identity is what the secure client's
        validated-pipe memo keys on (a republished advertisement is a
        new object, so identity-misses force revalidation).
        """
        entry = self.cache.find_one("PipeAdvertisement", peer_id, group=group)
        return entry.element
