"""Per-peer statistics publication (StatsAdvertisement broadcasting).

JXTA-Overlay clients periodically broadcast statistics advertisements
alongside presence/pipe/file advertisements (section 2.2).  The numbers
come straight from the primitive invocation counters kept by
:mod:`repro.overlay.primitives`.
"""

from __future__ import annotations

from repro.jxta.advertisements import StatsAdvertisement
from repro.overlay.client import ClientPeer


def build_stats_advertisement(client: ClientPeer, group: str) -> StatsAdvertisement:
    """Snapshot a client's counters into a stats advertisement."""
    sent = (client.metrics.count("primitive.send_msg_peer")
            + client.metrics.count("primitive.secure_msg_peer"))
    shared = (client.metrics.count("primitive.publish_file")
              + client.metrics.count("primitive.secure_publish_file"))
    return StatsAdvertisement(
        peer_id=client.peer_id, group=group,
        messages_sent=sent, files_shared=shared)


def publish_stats(client: ClientPeer) -> int:
    """Publish a stats advertisement for every joined group."""
    published = 0
    for group in client.groups:
        adv = build_stats_advertisement(client, group)
        client._publish(adv.to_element())
        published += 1
    return published
