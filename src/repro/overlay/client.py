"""The Client Module: the primitives applications are built on.

Applications on JXTA-Overlay "are always based on the invocation of
Client Module primitives and the processing of events thrown by
functions" (section 2.2).  This class implements the plain (insecure)
primitive sets the paper discusses:

* **discovery**: ``connect``, ``login``, ``logout``, ``peer_status``,
  ``search_advertisements``
* **group**: ``create_group``, ``join_group``, ``leave_group``,
  ``list_groups``, ``group_members``
* **messenger**: ``send_msg_peer``, ``send_msg_peer_group``
* **file**: ``publish_file``, ``search_files``, ``request_file``
* **executable**: ``submit_task`` (the set the paper's further-work
  section flags as security-sensitive)

The plain protocol is deliberately era-faithful insecure: passwords in
clear, unauthenticated advertisements, unencrypted messages — the attack
tests demonstrate each weakness and the secure client in
:mod:`repro.core` fixes them.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro import obs, wire
from repro.crypto.drbg import HmacDrbg
from repro.crypto.sha2 import sha256
from repro.errors import (
    AuthenticationError,
    BrokerUnavailableError,
    CircuitOpenError,
    JxtaError,
    NetworkError,
    NotConnectedError,
    OverlayError,
    PrimitiveError,
    PrimitiveTimeoutError,
    ReproError,
    TransportError,
)
from repro.jxta.advertisements import (
    FileAdvertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    PresenceAdvertisement,
)
from repro.jxta.ids import JxtaID, random_peer_id
from repro.jxta.messages import Message
from repro.jxta.pipes import InputPipe
from repro.overlay.control import ControlModule, unpack_results
from repro.overlay.federation import fed_metric
from repro.overlay.filesharing import FileStore, chunked_fetch
from repro.overlay.linkcaps import LinkCapsMixin
from repro.overlay.policy import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUTS,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
    run_with_retry,
)
from repro.overlay.primitives import current_primitive, primitive
from repro.overlay.results import PrimitiveResult
from repro.net.base import Transport
from repro.sim.network import SimNetwork
from repro.sim.scheduler import EventHandle, Scheduler
from repro.xmllib import Element

TaskFunction = Callable[[str], str]

#: broker fail-reasons that mean "your session is gone" (e.g. the broker
#: crashed and restarted) rather than "your request is bad"
_SESSION_LOST_MARKERS = ("not logged in", "no matching authenticated session")


def _fail_reason(resp: Message) -> str:
    """Best-effort reason text from a ``*_fail`` response."""
    try:
        return str(wire.decode(resp).get("reason", ""))
    except wire.WireRejected:
        return ""


class ClientPeer(LinkCapsMixin):
    """A JXTA-Overlay client peer (one end-user application instance)."""

    def __init__(self, network: "SimNetwork | Transport", address: str,
                 drbg: HmacDrbg, name: str = "") -> None:
        self.control = ControlModule(network, address, drbg)
        self.name = name or address
        self.peer_id: JxtaID = random_peer_id(drbg)
        self.broker_address: str | None = None
        self.username: str | None = None
        self.groups: list[str] = []
        #: learned shard-key → owning-broker cache (federated deployments)
        self._shard_owners: dict[str, str] = {}
        self.input_pipes: dict[str, InputPipe] = {}     # group -> pipe
        self.files = FileStore()
        self.task_functions: dict[str, TaskFunction] = {}
        self._presence_handle: EventHandle | None = None
        # -- robustness policies (see docs/ROBUSTNESS.md) ------------------
        #: per-category retry defaults; override per call via ``retry=``
        self.retry_policies: dict[str, RetryPolicy] = dict(DEFAULT_RETRIES)
        #: per-category timeout budgets; override per call via ``timeout=``
        self.timeouts: dict[str, Timeout] = dict(DEFAULT_TIMEOUTS)
        #: circuit breaker shared by every broker request of this peer
        self.breaker = CircuitBreaker(self.clock, name=self.name)
        #: brokers :meth:`connect` may fail over to after the primary
        self.fallback_brokers: list[str] = []
        # Deterministic backoff-jitter stream, seeded independently of the
        # peer's protocol DRBG so adding retries never perturbs existing
        # nonce/key/id streams.
        self._retry_draw = HmacDrbg(
            seed=f"retry-jitter|{address}".encode()).uniform
        self._password: str | None = None  # remembered for auto re-login
        self._relogin_in_progress = False
        self._install_functions()

    # -- plumbing -----------------------------------------------------------

    @property
    def address(self) -> str:
        return self.control.address

    @property
    def events(self):
        return self.control.events

    @property
    def metrics(self):
        return self.control.metrics

    @property
    def clock(self):
        return self.control.clock

    def _install_functions(self) -> None:
        self.control.endpoint.configure(wire=True, handlers={
            "adv_push": self._fn_adv_push,
            "peer_joined": self._fn_peer_joined,
            "peer_left": self._fn_peer_left,
            "file_req": self._fn_file_request,
            "task_req": self._fn_task_request,
            "link_caps_req": self.fn_link_caps,
        })

    def _require_broker(self) -> str:
        if self.broker_address is None:
            raise NotConnectedError(f"{self.name}: no broker connection")
        return self.broker_address

    def _require_login(self) -> str:
        self._require_broker()
        if self.username is None:
            raise NotConnectedError(f"{self.name}: not logged in")
        return self.username

    def _broker_request(self, message: Message, *,
                        retry: RetryPolicy | None = None,
                        timeout: Timeout | None = None,
                        route_key: str | None = None) -> Message:
        """One request/response exchange with the connected broker.

        Transport failures are retried under the ``broker`` policy (or a
        per-call override), gated by this peer's circuit breaker.  When
        the broker answers but reports our session gone — it crashed and
        restarted, losing its in-memory state — and we remember the login
        credentials, the session is transparently re-established and the
        request re-sent once.

        ``route_key`` marks a sharded request (keyed publish or lookup in
        a federated deployment): the exchange becomes shard-aware, going
        straight to a remembered shard owner and following at most one
        ``fed_redirect`` from the home broker.  Single-broker deployments
        never see a redirect and behave exactly as before.
        """
        self._require_broker()
        retry = retry if retry is not None else self.retry_policies["broker"]
        timeout = timeout if timeout is not None else self.timeouts["broker"]
        if route_key is None:
            resp = self._broker_exchange(message, retry, timeout)
        else:
            resp = self._routed_exchange(message, route_key, retry, timeout)
        reason = self._session_lost_reason(resp)
        if reason is not None and self._can_relogin():
            obs.emit("on_degraded", peer=str(self.peer_id),
                     primitive=current_primitive() or "broker_request",
                     reason=f"broker session lost ({reason}); re-establishing")
            self._relogin_in_progress = True
            try:
                self._relogin()
            except ReproError:
                return resp  # recovery failed: surface the original outcome
            finally:
                self._relogin_in_progress = False
            if route_key is None:
                resp = self._broker_exchange(message, retry, timeout)
            else:
                resp = self._routed_exchange(message, route_key, retry, timeout)
        return resp

    def _exchange_at(self, address: str, message: Message,
                     retry: RetryPolicy, timeout: Timeout) -> Message:
        """One exchange with a specific broker (a shard owner).

        Deliberately not gated by :attr:`breaker`, which tracks the home
        broker's health: an unreachable shard owner degrades one keyed
        request, it must not open the circuit for everything else.
        """
        def attempt() -> Message:
            return self.control.endpoint.request(address, message)

        try:
            resp, _ = run_with_retry(
                attempt, clock=self.clock, retry=retry, timeout=timeout,
                draw=self._retry_draw, peer=str(self.peer_id))
        except NetworkError as exc:
            raise BrokerUnavailableError(
                f"{self.name}: shard owner {address!r} unreachable: {exc}"
            ) from exc
        return resp

    @staticmethod
    def _shard_rejected(resp: Message) -> bool:
        """A shard owner that doesn't know us yet (directory lag)."""
        return (resp.msg_type.endswith("_fail")
                and "not logged in" in _fail_reason(resp))

    def _routed_exchange(self, message: Message, route_key: str,
                         retry: RetryPolicy, timeout: Timeout) -> Message:
        """Shard-aware exchange: resolve the key's owner, ≤1 redirect hop.

        Order of attempts: the remembered owner for this key (if any),
        then the home broker, following one ``fed_redirect`` it may
        answer with.  If the owner is unreachable or rejects us, the home
        broker is asked to handle the request locally (``fed_no_redirect``)
        — a degraded completion the next anti-entropy sweep repairs.
        """
        home = self._require_broker()
        cached = self._shard_owners.get(route_key)
        if cached is not None and cached != home:
            try:
                resp = self._exchange_at(cached, message, retry, timeout)
            except (BrokerUnavailableError, CircuitOpenError):
                resp = None
            if (resp is not None and resp.msg_type != "fed_redirect"
                    and not self._shard_rejected(resp)):
                return resp
            self._shard_owners.pop(route_key, None)  # stale topology view
        resp = self._broker_exchange(message, retry, timeout)
        if resp.msg_type != "fed_redirect":
            return resp
        owner = wire.decode(resp)["owner"]
        fed_metric("fed.redirect_followed")
        try:
            followed = self._exchange_at(owner, message, retry, timeout)
        except (BrokerUnavailableError, CircuitOpenError):
            followed = None
        if (followed is not None and followed.msg_type != "fed_redirect"
                and not self._shard_rejected(followed)):
            self._shard_owners[route_key] = owner
            return followed
        fed_metric("fed.redirect_failed")
        obs.emit("on_degraded", peer=str(self.peer_id),
                 primitive=current_primitive() or "broker_request",
                 reason=f"shard owner {owner!r} unavailable; "
                        f"handled locally by {home!r}")
        if not message.has("fed_no_redirect"):
            message.add_text("fed_no_redirect", "1")
        return self._broker_exchange(message, retry, timeout)

    def _broker_exchange(self, message: Message, retry: RetryPolicy,
                         timeout: Timeout) -> Message:
        def attempt() -> Message:
            return self.control.endpoint.request(self._require_broker(), message)

        try:
            resp, _ = run_with_retry(
                attempt, clock=self.clock, retry=retry, timeout=timeout,
                breaker=self.breaker, draw=self._retry_draw,
                peer=str(self.peer_id))
        except CircuitOpenError:
            raise
        except NetworkError as exc:
            raise BrokerUnavailableError(
                f"{self.name}: broker unreachable: {exc}") from exc
        return resp

    @staticmethod
    def _session_lost_reason(resp: Message) -> str | None:
        if not resp.msg_type.endswith("_fail"):
            return None
        reason = _fail_reason(resp)
        if any(marker in reason for marker in _SESSION_LOST_MARKERS):
            return reason
        return None

    def _can_relogin(self) -> bool:
        return (not self._relogin_in_progress
                and self.username is not None
                and self._password is not None
                and self.broker_address is not None)

    def _relogin(self) -> None:
        """Re-establish the broker session with remembered credentials.

        The secure client overrides this to run secureConnection first,
        so a fresh ``sid`` protects the re-login exactly like the first
        one (the replay guard still rejects any pre-crash sid).
        """
        username, password = self.username, self._password
        assert username is not None and password is not None
        self.connect(self.broker_address, fallbacks=self.fallback_brokers)
        self.login(username, password)

    # ======================================================================
    # discovery primitives
    # ======================================================================

    @primitive("discovery")
    def connect(self, broker_address: str, *,
                fallbacks: Sequence[str] | None = None,
                retry: RetryPolicy | None = None,
                timeout: Timeout | None = None) -> str:
        """connect: locate a broker and open a connection (§4.2).

        The plain version performs NO broker authentication — any endpoint
        answering ``connect_req`` is believed.  Returns the broker name.

        Candidates are tried in order: ``broker_address`` first, then
        ``fallbacks`` (default: :attr:`fallback_brokers`).  Landing on a
        fallback counts as a degraded completion (``on_degraded``).
        """
        candidates = [broker_address,
                      *(fallbacks if fallbacks is not None
                        else self.fallback_brokers)]
        last_exc: Exception | None = None
        self._shard_owners.clear()  # a new home brings a new topology view
        for index, candidate in enumerate(candidates):
            self.broker_address = candidate
            try:
                resp = self._broker_request(Message("connect_req"),
                                            retry=retry, timeout=timeout)
            except NotConnectedError as exc:
                self.broker_address = None
                self.events.emit("connection_failed", broker=candidate)
                last_exc = exc
                continue
            if resp.msg_type != "connect_ok":
                self.broker_address = None
                self.events.emit("connection_failed", broker=candidate)
                raise OverlayError(
                    f"unexpected connect response {resp.msg_type!r}")
            if index:
                obs.emit("on_degraded", peer=str(self.peer_id),
                         primitive="connect",
                         reason=f"failed over to {candidate!r} "
                                f"(skipped {index} dead broker(s))")
            broker_name = wire.decode(resp)["broker_name"]
            self.events.emit("connected", broker=candidate,
                             broker_name=broker_name)
            obs.emit("on_connect", peer=str(self.peer_id), broker=candidate,
                     secure=False)
            return broker_name
        raise BrokerUnavailableError(
            f"{self.name}: no broker reachable among {candidates!r}"
        ) from last_exc

    @primitive("discovery")
    def login(self, username: str, password: str) -> list[str]:
        """login: authenticate the end user with username and password.

        Credentials travel in clear text (the paper's headline threat).
        On success: creates one input pipe per group, publishes the pipe
        advertisements through the broker, returns the group list.
        """
        self._require_broker()
        req = Message("login_req")
        req.add_text("username", username)
        req.add_text("password", password)
        req.add_xml("peer_adv", self._peer_advertisement().to_element())
        resp = self._broker_request(req)
        if resp.msg_type != "login_ok":
            reason = _fail_reason(resp)
            self.events.emit("login_failed", username=username, reason=reason)
            raise AuthenticationError(
                f"login rejected: {reason or resp.msg_type}")
        self.username = username
        self._password = password  # remembered for automatic re-login
        self.groups = list(wire.decode(resp)["groups"])
        for group in self.groups:
            self._open_and_publish_pipe(group)
        self.events.emit("logged_in", username=username, groups=list(self.groups))
        obs.emit("on_login", peer=str(self.peer_id), username=username,
                 groups=list(self.groups), secure=False)
        return list(self.groups)

    @primitive("discovery")
    def logout(self) -> None:
        """logout: leave the network and drop all session state."""
        username = self._require_login()
        self._broker_request(Message("logout_req"))
        self.stop_presence()
        for group in list(self.input_pipes):
            self.control.pipes.close_pipe(self.input_pipes.pop(group).pipe_id)
        self.username = None
        self._password = None
        self.groups = []
        self.broker_address = None
        self._shard_owners.clear()
        self.events.emit("logged_out", username=username)
        obs.emit("on_logout", peer=str(self.peer_id), username=username)

    @primitive("discovery")
    def peer_status(self, peer_id: str) -> dict[str, Any]:
        """peer_status: ask the broker whether a peer is online."""
        self._require_login()
        req = Message("peer_status_req")
        req.add_text("peer_id", peer_id)
        resp = self._broker_request(req, route_key=peer_id)
        frame = wire.decode(resp)
        status = {"peer_id": peer_id, "online": frame["online"] == "true"}
        if status["online"]:
            status["username"] = frame["username"]
            status["last_seen"] = float(frame["last_seen"])
        return status

    @primitive("discovery")
    def search_advertisements(self, *, adv_type: str | None = None,
                              peer_id: str | None = None,
                              group: str | None = None) -> list[Element]:
        """search_advertisements: query the broker's global index.

        Results are cached locally and returned as raw XML documents.
        """
        self._require_login()
        req = Message("query_req")
        if adv_type:
            req.add_text("adv_type", adv_type)
        if peer_id:
            req.add_text("peer_id", peer_id)
        if group:
            req.add_text("group", group)
        resp = self._broker_request(req, route_key=peer_id)
        elements = unpack_results(wire.decode(resp)["results"])
        for element in elements:
            try:
                self.control.accept_advertisement(element)
            except (OverlayError, JxtaError):
                self.metrics.incr("client.bad_search_result")
        return elements

    # ======================================================================
    # group primitives
    # ======================================================================

    @primitive("group")
    def create_group(self, name: str, description: str = "") -> None:
        """create_group: create and publish a new peer group via the broker."""
        self._require_login()
        req = Message("create_group_req")
        req.add_text("name", name)
        req.add_text("description", description)
        resp = self._broker_request(req)
        if resp.msg_type != "create_group_ok":
            raise OverlayError(f"create_group failed: {_fail_reason(resp)}")
        if name not in self.groups:
            self.groups.append(name)
            self._open_and_publish_pipe(name)
        self.events.emit("group_created", group=name)

    @primitive("group")
    def join_group(self, name: str) -> list[str]:
        """join_group: become a member; returns current member peer ids."""
        self._require_login()
        req = Message("join_group_req")
        req.add_text("name", name)
        resp = self._broker_request(req)
        if resp.msg_type != "join_group_ok":
            raise OverlayError(f"join_group failed: {_fail_reason(resp)}")
        if name not in self.groups:
            self.groups.append(name)
            self._open_and_publish_pipe(name)
        members = list(wire.decode(resp)["members"])
        self.events.emit("group_joined", group=name, members=members)
        return members

    @primitive("group")
    def leave_group(self, name: str) -> None:
        """leave_group: resign membership and close the group pipe."""
        self._require_login()
        req = Message("leave_group_req")
        req.add_text("name", name)
        resp = self._broker_request(req)
        if resp.msg_type != "leave_group_ok":
            raise OverlayError(f"leave_group failed: {_fail_reason(resp)}")
        if name in self.groups:
            self.groups.remove(name)
        pipe = self.input_pipes.pop(name, None)
        if pipe is not None:
            self.control.pipes.close_pipe(pipe.pipe_id)
        self.events.emit("group_left", group=name)

    @primitive("group")
    def list_groups(self) -> list[str]:
        """list_groups: every group published on the broker."""
        self._require_login()
        resp = self._broker_request(Message("list_groups_req"))
        return list(wire.decode(resp)["groups"])

    @primitive("group")
    def group_members(self, name: str) -> list[str]:
        """group_members: current member peer ids of a group."""
        self._require_login()
        req = Message("group_members_req")
        req.add_text("name", name)
        resp = self._broker_request(req)
        if resp.msg_type != "group_members_resp":
            raise OverlayError(f"group_members failed: {_fail_reason(resp)}")
        return list(wire.decode(resp)["members"])

    # ======================================================================
    # messenger primitives (§4.3)
    # ======================================================================

    def _resolve_pipe(self, peer_id: str, group: str) -> Element:
        """Find the target's pipe advertisement: local cache, then broker."""
        return self._resolve_pipe_entry(peer_id, group).deep_copy()

    def _resolve_pipe_entry(self, peer_id: str, group: str) -> Element:
        """Like :meth:`_resolve_pipe`, but returns the cache's element
        without copying (read-only; the secure client memoizes validation
        results against its identity)."""
        try:
            return self.control.cached_pipe_element(peer_id, group)
        except (OverlayError, JxtaError):
            pass
        self.search_advertisements(adv_type="PipeAdvertisement",
                                   peer_id=peer_id, group=group)
        return self.control.cached_pipe_element(peer_id, group)

    def _pipe_send(self, pipe, message: Message, retry: RetryPolicy,
                   timeout: Timeout) -> tuple[bool, int, Exception | None]:
        """Datagram send with retry: (delivered, attempts, last_error)."""

        def attempt() -> bool:
            if not pipe.send(message):
                raise TransportError("pipe datagram was not delivered")
            return True

        try:
            _, attempts = run_with_retry(
                attempt, clock=self.clock, retry=retry, timeout=timeout,
                retry_on=(TransportError, NetworkError),
                draw=self._retry_draw, peer=str(self.peer_id))
            return True, attempts, None
        except (TransportError, NetworkError, PrimitiveTimeoutError) as exc:
            return False, getattr(exc, "attempts", retry.max_attempts), exc

    @primitive("messenger")
    def send_msg_peer(self, peer_id: str, group: str, text: str, *,
                      retry: RetryPolicy | None = None,
                      timeout: Timeout | None = None) -> PrimitiveResult:
        """sendMsgPeer: a simple text message to one peer, no security.

        Plain text on the wire; no integrity, no source authenticity (the
        ``from`` fields are self-asserted and trivially spoofable).

        Returns a :class:`~repro.overlay.results.PrimitiveResult` whose
        truthiness equals delivery success.  Lost datagrams are retried
        under the ``messenger`` policy (or the per-call ``retry=``
        override); delivery failure is reported in the result, never
        raised.

        .. deprecated:: the historical bare ``bool`` return; rely on the
           result object (its ``__bool__`` shim keeps old callers alive).
        """
        self._require_login()
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        retry = retry if retry is not None else self.retry_policies["messenger"]
        timeout = timeout if timeout is not None else self.timeouts["messenger"]
        started = self.clock.now
        adv_elem = self._resolve_pipe(peer_id, group)
        adv = PipeAdvertisement.from_element(adv_elem)
        chat = Message("chat")
        chat.add_text("from_peer", str(self.peer_id))
        chat.add_text("from_user", self.username or "")
        chat.add_text("group", group)
        chat.add_text("text", text)
        sent, attempts, error = self._pipe_send(
            self.control.output_pipe(adv), chat, retry, timeout)
        if sent:
            obs.emit("on_msg_sent", peer=str(self.peer_id), to_peer=peer_id,
                     group=group, n_bytes=len(text.encode("utf-8")),
                     secure=False)
        if sent and attempts > 1:
            obs.emit("on_degraded", peer=str(self.peer_id),
                     primitive="send_msg_peer",
                     reason=f"delivered after {attempts} attempts")
        return PrimitiveResult(
            ok=sent, value=sent, attempts=attempts,
            elapsed_ms=(self.clock.now - started) * 1e3,
            degraded=attempts > 1 or not sent, error=error)

    @primitive("messenger")
    def send_msg_peer_group(self, group: str, text: str, *,
                            retry: RetryPolicy | None = None,
                            timeout: Timeout | None = None) -> PrimitiveResult:
        """sendMsgPeerGroup: iteratively sendMsgPeer to every member.

        Per-recipient isolation: one unreachable member no longer aborts
        the whole fan-out — it is counted and the call completes degraded.
        The result's ``value`` is the delivery count (the historical bare
        ``int`` return, now deprecated; ``result == n`` still compares
        against it).
        """
        self._require_login()
        started = self.clock.now
        delivered = failures = 0
        attempts = 1
        last_error: Exception | None = None
        for member in self.group_members(group):
            if member == str(self.peer_id):
                continue
            try:
                result = self.send_msg_peer(member, group, text,
                                            retry=retry, timeout=timeout)
            except (OverlayError, JxtaError, NetworkError) as exc:
                self.metrics.incr("client.group_send_miss")
                failures += 1
                last_error = exc
                continue
            attempts += result.attempts - 1
            if result.ok:
                delivered += 1
            else:
                self.metrics.incr("client.group_send_miss")
                failures += 1
                last_error = result.error
        if failures:
            obs.emit("on_degraded", peer=str(self.peer_id),
                     primitive="send_msg_peer_group",
                     reason=f"{failures} member(s) unreachable, "
                            f"{delivered} delivered")
        return PrimitiveResult(
            ok=failures == 0, value=delivered, attempts=attempts,
            elapsed_ms=(self.clock.now - started) * 1e3,
            degraded=failures > 0, error=last_error)

    # ======================================================================
    # file-sharing primitives
    # ======================================================================

    @primitive("file")
    def publish_file(self, group: str, file_name: str, content: bytes) -> FileAdvertisement:
        """publish_file: offer a file to a group via a FileAdvertisement."""
        self._require_login()
        if group not in self.groups:
            raise PrimitiveError(f"{self.name} is not a member of {group!r}")
        self.files.add(file_name, content)
        adv = FileAdvertisement(
            peer_id=self.peer_id, file_name=file_name, size=len(content),
            sha256_hex=sha256(content).hex(), group=group)
        self._publish(self._prepare_adv_element(adv))
        self.events.emit("file_published", group=group, file_name=file_name)
        return adv

    @primitive("file")
    def search_files(self, *, group: str | None = None,
                     peer_id: str | None = None) -> list[FileAdvertisement]:
        """search_files: list files offered in a group / by a peer.

        Both filters are keyword-only (they are optional and mutually
        orthogonal; positional use read ambiguously).
        """
        elements = self.search_advertisements(
            adv_type="FileAdvertisement", peer_id=peer_id, group=group)
        out = []
        for element in elements:
            out.append(FileAdvertisement.from_element(element))
        self.events.emit("file_list_received", files=[f.file_name for f in out])
        return out

    @primitive("file")
    def request_file(self, peer_id: str, group: str, file_name: str, *,
                     chunk_size: int = 16384,
                     retry: RetryPolicy | None = None,
                     timeout: Timeout | None = None) -> PrimitiveResult:
        """request_file: fetch a file directly from the owning peer.

        Chunked request/response transfer with a final SHA-256 check
        against the advertised digest when one is cached.  Each chunk
        round-trip is retried independently under the ``file`` policy,
        and the shared timeout budget spans the whole transfer.

        Returns a :class:`~repro.overlay.results.PrimitiveResult` whose
        ``value`` is the file content; the historical bare ``bytes``
        return is deprecated (``len(result)`` / ``result[i]`` /
        ``result == data`` all delegate to the content).  Integrity and
        lookup failures still raise.
        """
        self._require_login()
        retry = retry if retry is not None else self.retry_policies["file"]
        timeout = timeout if timeout is not None else self.timeouts["file"]
        started = self.clock.now
        adv_elem = self._resolve_pipe(peer_id, group)
        address = PipeAdvertisement.from_element(adv_elem).address
        total_attempts = 0

        def request(addr: str, message: Message) -> Message:
            nonlocal total_attempts
            resp, attempts = run_with_retry(
                lambda: self.control.endpoint.request(addr, message),
                clock=self.clock, retry=retry, timeout=timeout,
                draw=self._retry_draw, peer=str(self.peer_id))
            total_attempts += attempts
            return resp

        content = chunked_fetch(self.control.endpoint, address, file_name,
                                chunk_size, request=request)
        expected = None
        for entry in self.control.cache.find("FileAdvertisement", peer_id=peer_id, group=group):
            if entry.parsed.file_name == file_name:  # type: ignore[attr-defined]
                expected = entry.parsed.sha256_hex   # type: ignore[attr-defined]
        if expected is not None and sha256(content).hex() != expected:
            self.events.emit("file_transfer_failed", file_name=file_name,
                             reason="digest mismatch")
            raise OverlayError(f"file {file_name!r} failed its integrity check")
        self.events.emit("file_received", file_name=file_name, size=len(content))
        n_chunks = max(1, -(-len(content) // chunk_size))
        degraded = total_attempts > n_chunks
        if degraded:
            obs.emit("on_degraded", peer=str(self.peer_id),
                     primitive="request_file",
                     reason=f"{total_attempts - n_chunks} chunk retr"
                            f"{'ies' if total_attempts - n_chunks != 1 else 'y'}"
                            f" during transfer of {file_name!r}")
        return PrimitiveResult(
            ok=True, value=content, attempts=total_attempts,
            elapsed_ms=(self.clock.now - started) * 1e3, degraded=degraded)

    # ======================================================================
    # executable primitives (further-work set, §6)
    # ======================================================================

    def register_task(self, task_name: str, fn: TaskFunction) -> None:
        """Expose a named task other peers may invoke on this peer."""
        self.task_functions[task_name] = fn

    @primitive("executable")
    def submit_task(self, peer_id: str, group: str, task_name: str,
                    argument: str) -> str:
        """submit_task: remote task execution on another peer (plain).

        The paper singles these primitives out as especially sensitive;
        the plain version happily runs anything, authenticated by nothing.
        """
        self._require_login()
        adv_elem = self._resolve_pipe(peer_id, group)
        address = PipeAdvertisement.from_element(adv_elem).address
        req = Message("task_req")
        req.add_text("task", task_name)
        req.add_text("argument", argument)
        req.add_text("from_peer", str(self.peer_id))
        self.events.emit("task_submitted", peer_id=peer_id, task=task_name)
        resp = self.control.endpoint.request(address, req)
        if resp.msg_type != "task_resp":
            raise OverlayError(f"task failed: {_fail_reason(resp)}")
        result = wire.decode(resp)["result"]
        self.events.emit("task_result", peer_id=peer_id, task=task_name, result=result)
        return result

    # ======================================================================
    # presence
    # ======================================================================

    def start_presence(self, scheduler: Scheduler, interval: float = 30.0) -> None:
        """Begin periodic presence beacons to the broker (one per group)."""
        self._require_login()
        if self._presence_handle is not None:
            raise PrimitiveError("presence already running")
        self._presence_handle = scheduler.schedule_periodic(interval, self._beat)

    def stop_presence(self) -> None:
        if self._presence_handle is not None:
            self._presence_handle.cancel()
            self._presence_handle = None

    def _beat(self) -> None:
        if self.broker_address is None:
            return
        for group in self.groups:
            adv = PresenceAdvertisement(
                peer_id=self.peer_id, group=group, timestamp=self.clock.now)
            beat = Message("presence_beat")
            beat.add_xml("adv", adv.to_element())
            self.control.endpoint.send(self.broker_address, beat)
        self.events.emit("presence_update", groups=list(self.groups))

    # ======================================================================
    # internals
    # ======================================================================

    def _peer_advertisement(self) -> PeerAdvertisement:
        return PeerAdvertisement(
            peer_id=self.peer_id, name=self.name, address=self.address)

    def _prepare_adv_element(self, adv) -> Element:
        """Hook: how an advertisement becomes wire XML.  The secure client
        overrides this to attach an XMLdsig signature and credential."""
        return adv.to_element()

    def _open_and_publish_pipe(self, group: str) -> None:
        if group in self.input_pipes:
            return
        pipe, adv = self.control.open_group_pipe(self.peer_id, group)
        pipe.add_listener(self._on_pipe_message)
        self.input_pipes[group] = pipe
        element = self._prepare_adv_element(adv)
        self.control.cache.publish(element)
        self._publish(element)

    def _publish(self, element: Element) -> None:
        req = Message("publish_adv")
        req.add_xml("adv", element)
        resp = self._broker_request(req, route_key=str(self.peer_id))
        if resp.msg_type != "publish_ok":
            raise OverlayError(f"publish failed: {_fail_reason(resp)}")

    def _on_pipe_message(self, inner: Message, src: str) -> None:
        if inner.msg_type == "chat":
            frame = wire.decode(inner)  # cache hit after the pipe boundary
            self.events.emit(
                "message_received",
                from_peer=frame["from_peer"],
                from_user=frame["from_user"],
                group=frame["group"],
                text=frame["text"],
            )
            obs.emit("on_msg_received", peer=str(self.peer_id),
                     from_peer=frame["from_peer"],
                     group=frame["group"],
                     n_bytes=len(frame["text"].encode("utf-8")),
                     secure=False)
        else:
            self.metrics.incr("client.pipe_unknown")

    # -- incoming functions ---------------------------------------------------

    def _fn_adv_push(self, message: Message, src: str) -> None:
        try:
            self.control.accept_advertisement(wire.decode(message)["adv"])
        except (OverlayError, JxtaError):
            self.metrics.incr("client.bad_adv_push")
        return None

    def _fn_peer_joined(self, message: Message, src: str) -> None:
        frame = wire.decode(message)
        self.events.emit(
            "peer_joined_group",
            group=frame["group"],
            peer_id=frame["peer_id"],
            username=frame["username"],
        )
        return None

    def _fn_peer_left(self, message: Message, src: str) -> None:
        frame = wire.decode(message)
        group = frame["group"]
        peer_id = frame["peer_id"]
        self.control.cache.remove_peer(peer_id)
        self.events.emit("peer_left_group", group=group, peer_id=peer_id)
        return None

    def _fn_file_request(self, message: Message, src: str) -> Message:
        return self.files.handle_request(message)

    def _fn_task_request(self, message: Message, src: str) -> Message:
        frame = wire.decode(message)
        task_name = frame["task"]
        fn = self.task_functions.get(task_name)
        out = Message("task_resp")
        if fn is None:
            out = Message("task_fail")
            out.add_text("reason", f"unknown task {task_name!r}")
            return out
        try:
            result = fn(frame["argument"])
        except Exception as exc:  # a task crashing must not kill the peer
            out = Message("task_fail")
            out.add_text("reason", f"task raised: {exc}")
            return out
        out.add_text("result", result)
        return out
