"""File-sharing substrate: local store and the chunked transfer protocol.

JXTA-Overlay supports group file sharing (section 1); files are announced
with :class:`~repro.jxta.advertisements.FileAdvertisement` and fetched
directly from the owning peer in fixed-size chunks.
"""

from __future__ import annotations

from typing import Callable

from repro import wire
from repro.crypto.sha2 import sha256
from repro.errors import NetworkError, OverlayError
from repro.jxta.endpoint import Endpoint
from repro.jxta.messages import Message


class FileStore:
    """The files a peer currently shares, by name."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}

    def add(self, name: str, content: bytes) -> None:
        if not name:
            raise OverlayError("file name must be non-empty")
        self._files[name] = bytes(content)

    def remove(self, name: str) -> None:
        self._files.pop(name, None)

    def get(self, name: str) -> bytes:
        try:
            return self._files[name]
        except KeyError:
            raise OverlayError(f"not sharing a file named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._files)

    def digest(self, name: str) -> str:
        return sha256(self.get(name)).hex()

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    # -- serving side of the transfer protocol ------------------------------

    def handle_request(self, message: Message) -> Message:
        """Answer one ``file_req`` chunk request."""
        frame = wire.decode(message)
        name = frame["file_name"]
        offset = frame["offset"]
        length = frame["length"]
        if name not in self._files:
            fail = Message("file_fail")
            fail.add_text("reason", f"no file named {name!r}")
            return fail
        if offset < 0 or length <= 0:
            fail = Message("file_fail")
            fail.add_text("reason", "bad chunk range")
            return fail
        content = self._files[name]
        chunk = content[offset:offset + length]
        out = Message("file_resp")
        out.add_text("file_name", name)
        out.add_text("offset", str(offset))
        out.add_text("total", str(len(content)))
        out.add_bytes("data", chunk)
        out.add_text("eof", "true" if offset + len(chunk) >= len(content) else "false")
        return out


def chunked_fetch(endpoint: Endpoint, address: str, file_name: str,
                  chunk_size: int = 16384, max_chunks: int = 1 << 16, *,
                  request: Callable[[str, Message], Message] | None = None) -> bytes:
    """Client side: pull a file chunk by chunk from ``address``.

    ``request`` lets the caller substitute the round-trip used per chunk
    (the client passes a retry-wrapped one); it defaults to
    ``endpoint.request``, keeping this module policy-free.

    Raises :class:`OverlayError` on refusal or a malformed stream and
    :class:`NetworkError` if the peer becomes unreachable mid-transfer.
    """
    if chunk_size <= 0:
        raise OverlayError("chunk size must be positive")
    if request is None:
        request = endpoint.request
    received = bytearray()
    offset = 0
    for _ in range(max_chunks):
        req = Message("file_req")
        req.add_text("file_name", file_name)
        req.add_text("offset", str(offset))
        req.add_text("length", str(chunk_size))
        resp = request(address, req)
        if resp.msg_type == "file_fail":
            raise OverlayError(
                f"file transfer refused: {wire.decode(resp).get('reason', '')}")
        if resp.msg_type != "file_resp":
            raise OverlayError(f"unexpected transfer response {resp.msg_type!r}")
        frame = wire.decode(resp)
        data = frame["data"]
        total = frame["total"]
        received += data
        offset += len(data)
        if frame["eof"] == "true":
            if len(received) != total:
                raise OverlayError(
                    f"transfer ended early: {len(received)}/{total} bytes")
            return bytes(received)
        if not data:
            raise OverlayError("peer sent an empty non-final chunk")
    raise OverlayError(f"file {file_name!r} exceeded {max_chunks} chunks")
