"""Broker federation: the sharded, message-only inter-broker layer.

The paper's broker tier "controls access to the network … and propagates
peer information across group members" (§2.1).  Early revisions of this
reproduction modelled that tier as a toy: brokers held direct Python
references to each other and replicated the *entire* resource index to
every peer via unsigned ``index_sync`` datagrams.  This module replaces
that with a real federated subsystem:

* **membership by address** — brokers know each other only by network
  address plus an advertisement-style member record; every inter-broker
  exchange is a :class:`~repro.jxta.messages.Message` frame over the
  simulated network, so fault plans (loss, partitions, crashes) apply to
  federation traffic exactly like client traffic;
* **consistent-hash sharding** — the resource index and the presence
  directory are partitioned across brokers by a :class:`HashRing` keyed
  on the advertisement's peer id.  Publish and lookup route to the shard
  owner; a non-owner answers with a ``fed_redirect`` the client follows
  (at most one hop).  A single broker is a ring of size one: every key
  is local and behaviour is exactly the pre-federation one;
* **digest-based anti-entropy** — linking brokers no longer copies the
  full index.  Each side offers a per-entry digest map of what it holds
  that the other *owns* (``fed_digest``), receives back the keys the
  owner actually needs, and ships only those in batched ``fed_delta``
  frames.  The same exchange runs periodically (see
  :class:`~repro.overlay.presence.FederationSweeper`) and heals
  partitions: entries published degraded at a non-owner while the owner
  was unreachable are handed off once the wire comes back.

The plain variant here performs *membership* checks only (era-faithful:
nothing is signed).  The secure stack subclasses this in
:mod:`repro.core.secure_federation`, signing every federation frame
under the broker's admin-issued credential so a rogue endpoint cannot
poison the shard it does not own.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro import obs, perf, wire
from repro.crypto.sha2 import sha256
from repro.errors import JxtaError, NetworkError, OverlayError
from repro.jxta.advertisements import Advertisement
from repro.jxta.messages import Message
from repro.overlay.control import merge_results, pack_results, unpack_results
from repro.xmllib import Element, canonicalize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (broker imports us)
    from repro.overlay.broker import Broker

#: virtual nodes per broker on the hash ring; enough that a handful of
#: brokers split a few hundred keys within a small constant of 1/N each
VNODES = 128

#: advertisements per ``fed_delta`` frame during anti-entropy — the
#: fallback when the broker has no :class:`~repro.net.linkq.LinkPolicy`
#: (``enable_link_batching`` makes it a configurable knob,
#: ``LinkPolicy.delta_batch``)
DELTA_BATCH = 32

#: directory entries from a crashed/unreachable home broker expire after
#: this many virtual seconds without a re-up (sweeps refresh live ones)
DIRECTORY_MAX_AGE = 600.0


#: ``fed.*`` counter handles, interned on first use (hot routing paths).
_FED_COUNTERS: dict[str, obs.InternedCounter] = {}


def fed_metric(name: str, by: int = 1) -> None:
    """Counter increment guarded on the registry switch (hot paths)."""
    counter = _FED_COUNTERS.get(name)
    if counter is None:
        counter = _FED_COUNTERS[name] = obs.InternedCounter(name)
    counter.incr(by)


def entry_key(parsed: Advertisement) -> str:
    """The wire form of a cache entry's replacement key."""
    return "|".join(parsed.key())


def entry_digest(element: Element) -> str:
    """Content digest used by the anti-entropy exchange."""
    return sha256(canonicalize(element)).hex()[:16]


class HashRing:
    """Consistent hashing with virtual nodes over broker addresses.

    Keys and node addresses are hashed onto the same 64-bit circle; a
    key is owned by the first node point at or after it.  Adding or
    removing one broker moves only the keys in the arcs it gains or
    loses (≈1/N of the space), which is what keeps link-time anti-entropy
    a *delta* instead of a full copy.
    """

    #: Memoized owner lookups are capped so an adversarial key stream
    #: cannot grow the cache without bound; a full cache is simply
    #: cleared (lookups stay correct, they just recompute).
    OWNER_CACHE_MAX = 4096

    def __init__(self, vnodes: int = VNODES) -> None:
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []  # sorted (hash, address)
        self._nodes: set[str] = set()
        self._owner_cache: dict[str, str] = {}

    @staticmethod
    def _hash(label: str) -> int:
        return int.from_bytes(sha256(label.encode("utf-8"))[:8], "big")

    def add(self, address: str) -> None:
        if address in self._nodes:
            return
        self._nodes.add(address)
        for i in range(self.vnodes):
            self._points.append((self._hash(f"node|{address}|{i}"), address))
        self._points.sort()
        self._owner_cache.clear()

    def remove(self, address: str) -> None:
        if address not in self._nodes:
            return
        self._nodes.discard(address)
        self._points = [p for p in self._points if p[1] != address]
        self._owner_cache.clear()

    def owner(self, key: str) -> str:
        """The broker owning ``key`` — memoized until membership changes.

        Every lookup costs a SHA-256 plus a bisect; the shard owner of a
        given key only ever changes when a broker joins or leaves, so
        ``add``/``remove`` are the exact (and only) invalidation points.
        """
        if perf.FLAGS.ring_memo:
            cached = self._owner_cache.get(key)
            if cached is not None:
                return cached
        address = self.owner_uncached(key)
        if perf.FLAGS.ring_memo:
            if len(self._owner_cache) >= self.OWNER_CACHE_MAX:
                self._owner_cache.clear()
            self._owner_cache[key] = address
        return address

    def owner_uncached(self, key: str) -> str:
        """The reference lookup (hash + bisect every call)."""
        if not self._points:
            raise OverlayError("hash ring is empty")
        point = self._hash(f"key|{key}")
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, address: str) -> bool:
        return address in self._nodes


@dataclass
class MemberRecord:
    """What one broker knows about a federated peer broker."""

    address: str
    broker_id: str = ""
    name: str = ""

    def to_json(self) -> dict:
        return {"address": self.address, "broker_id": self.broker_id,
                "name": self.name}

    @classmethod
    def from_json(cls, data: dict) -> "MemberRecord":
        return cls(address=str(data["address"]),
                   broker_id=str(data.get("broker_id", "")),
                   name=str(data.get("name", "")))


@dataclass
class DirectoryEntry:
    """Shard-owner view of one logged-in peer, fed by ``fed_presence``."""

    peer_id: str
    username: str
    address: str
    home: str          # broker address the session lives on
    last_seen: float


class Federation:
    """Per-broker federation state machine (plain, membership-checked).

    Owns the hash ring, the member table, the sharded presence
    directory, and every ``fed_*`` frame.  The broker installs thin
    delegating handlers so a subclass (the signing secure variant) can
    replace the whole object after construction.
    """

    def __init__(self, broker: "Broker",
                 directory_max_age: float = DIRECTORY_MAX_AGE) -> None:
        self.broker = broker
        self.ring = HashRing()
        self.ring.add(broker.address)
        self.members: dict[str, MemberRecord] = {}
        self.directory: dict[str, DirectoryEntry] = {}
        self.directory_max_age = directory_max_age

    # -- plumbing ----------------------------------------------------------

    @property
    def endpoint(self):
        return self.broker.control.endpoint

    @property
    def cache(self):
        return self.broker.control.cache

    @property
    def clock(self):
        return self.broker.control.clock

    @property
    def delta_batch(self) -> int:
        """Advertisements per anti-entropy delta frame (policy knob)."""
        policy = getattr(self.broker, "link_policy", None)
        return policy.delta_batch if policy is not None else DELTA_BATCH

    def owner_of(self, shard_key: str) -> str:
        return self.ring.owner(shard_key)

    def is_local(self, shard_key: str) -> bool:
        return self.owner_of(shard_key) == self.broker.address

    def self_record(self) -> MemberRecord:
        return MemberRecord(address=self.broker.address,
                            broker_id=str(self.broker.peer_id),
                            name=self.broker.name)

    def roster(self) -> list[dict]:
        """Every member record we know, ourselves included."""
        records = [self.self_record()] + list(self.members.values())
        return [r.to_json() for r in records]

    # -- security hooks (identity in the plain, era-faithful stack) --------

    def seal(self, message: Message) -> Message:
        """Attach sender authentication to an outgoing federation frame."""
        return message

    def authorize(self, message: Message, src: str, *,
                  link: bool = False, sync: bool = False) -> bool:
        """Admission control for an incoming federation frame.

        ``link=True`` frames (link handshake, membership gossip) are how
        brokers *become* members, so they skip the membership check; the
        secure subclass still demands a valid broker signature on them.
        ``sync=True`` marks legacy ``index_sync`` traffic so its rejects
        are counted under their own reason.
        """
        if link:
            return True
        if src in self.members:
            return True
        fed_metric("fed.reject.foreign_index_sync" if sync
                   else "fed.reject.not_member")
        return False

    def redirect(self, owner: str) -> Message:
        """The shard-miss response a client follows (at most one hop)."""
        fed_metric("fed.redirects")
        out = Message("fed_redirect")
        out.add_text("owner", owner)
        return self.seal(out)

    def _send(self, dst: str, message: Message) -> bool:
        return self.endpoint.send(dst, self.seal(message))

    def _request(self, dst: str, message: Message) -> Message:
        return self.endpoint.request(dst, self.seal(message))

    def broadcast(self, message: Message, *, exclude: tuple = ()) -> int:
        """Seal once, datagram every federation member, inside one cork.

        The relay fan-out of group-cast: the frame is sealed a single
        time and reused verbatim for every member, and the sends ride
        the link queues as coalesced datagrams on batching transports
        (mirroring :meth:`_ship_deltas`).  Returns how many members the
        frame was handed to the transport for.
        """
        targets = [a for a in self.members if a not in exclude]
        if not targets:
            return 0
        sealed = self.seal(message)
        sent = 0
        with self.endpoint.corked():
            for address in sorted(targets):
                if self.endpoint.send(address, sealed):
                    sent += 1
        fed_metric("fed.broadcast.sent", sent)
        return sent

    def _gauges(self) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.set_gauge("fed.members", len(self.members))
            registry.set_gauge("fed.owned_entries", len(self.cache))

    # -- membership --------------------------------------------------------

    def link(self, target) -> None:
        """Federate with another broker, by address or broker object.

        Message-only: a ``fed_link_req``/``fed_link_ok`` exchange swaps
        member rosters, then a digest-based sync hands over exactly the
        entries whose ownership moved — never the full index.
        """
        address = getattr(target, "address", None) or str(target)
        if address == self.broker.address:
            raise OverlayError("a broker cannot peer with itself")
        if address in self.members:
            return
        # Optimistic pre-add so the responder's inline hand-off frames
        # pass our membership check while we await the link response.
        self.members[address] = MemberRecord(address=address)
        self.ring.add(address)
        req = Message("fed_link_req")
        req.add_json("members", self.roster())
        try:
            resp = self._request(address, req)
            ok = (resp.msg_type == "fed_link_ok"
                  and self.authorize(resp, address, link=True))
        except NetworkError:
            ok = False
        if not ok:
            self.members.pop(address, None)
            self.ring.remove(address)
            raise OverlayError(
                f"broker at {address!r} refused or failed federation link")
        added = self._merge_members(wire.decode(resp)["members"])
        self._gauges()
        for new_address in dict.fromkeys([address, *added]):
            self.sync_with(new_address)

    def unlink(self, target) -> None:
        """Dissolve one federation link (pairwise, not gossiped)."""
        address = getattr(target, "address", None) or str(target)
        if address not in self.members:
            return
        self.members.pop(address, None)
        self.ring.remove(address)
        self._send(address, Message("fed_unlink"))
        self._gauges()

    def _merge_members(self, records: Iterable[dict],
                       announce: bool = True) -> list[str]:
        """Fold a received roster in; gossip onward only when it grew."""
        added: list[str] = []
        for data in records:
            try:
                record = MemberRecord.from_json(data)
            except (KeyError, TypeError):
                fed_metric("fed.reject.malformed")
                continue
            if record.address == self.broker.address:
                continue
            known = self.members.get(record.address)
            if known is not None:
                if record.broker_id and not known.broker_id:
                    self.members[record.address] = record
                continue
            self.members[record.address] = record
            self.ring.add(record.address)
            added.append(record.address)
        if added and announce:
            gossip = Message("fed_members")
            gossip.add_json("members", self.roster())
            sealed = self.seal(gossip)
            for address in self.members:
                self.endpoint.send(address, sealed)
        if added:
            self._gauges()
        return added

    # -- routing the broker's own publications -----------------------------

    def route_publish(self, element: Element, shard_key: str | None = None) -> None:
        """Index a broker-originated advertisement at its shard owner.

        Used for login peer advertisements and group advertisements.  A
        remote owner gets the entry via a single-element ``fed_delta``;
        while the owner is unreachable the entry is held locally and the
        next anti-entropy sweep completes the hand-off.
        """
        parsed = self.cache.publish(element)
        if shard_key is None:
            shard_key = str(parsed.peer_id)
        owner = self.owner_of(shard_key)
        if owner == self.broker.address:
            return
        if self._push_delta(owner, [element.deep_copy()]):
            self.cache.remove(parsed.key())
            fed_metric("fed.sync.remote_publish")
        else:
            fed_metric("fed.sync.degraded_publish")

    def note_degraded_publish(self) -> None:
        """A client published here because the shard owner was down."""
        fed_metric("fed.sync.degraded_publish")

    def _push_delta(self, address: str, elements: list[Element]) -> bool:
        req = Message("fed_delta")
        req.add_xml("advs", pack_results(elements))
        try:
            resp = self._request(address, req)
        except NetworkError:
            return False
        if resp.msg_type != "fed_delta_ok" or not self.authorize(
                resp, address, link=True):
            return False
        fed_metric("fed.sync.entries_sent", len(elements))
        return True

    # -- presence directory -------------------------------------------------

    def presence_up(self, peer_id: str, username: str, address: str,
                    last_seen: float) -> None:
        op = {"op": "up", "peer_id": peer_id, "username": username,
              "address": address, "home": self.broker.address,
              "last_seen": last_seen}
        self._presence_ops([op])

    def presence_down(self, peer_id: str) -> None:
        self._presence_ops([{"op": "down", "peer_id": peer_id,
                             "home": self.broker.address}])

    def _presence_ops(self, ops: list[dict]) -> None:
        local: list[dict] = []
        by_owner: dict[str, list[dict]] = {}
        for op in ops:
            owner = self.owner_of(op["peer_id"])
            if owner == self.broker.address:
                local.append(op)
            else:
                by_owner.setdefault(owner, []).append(op)
        for op in local:
            self._apply_presence_op(op)
        for owner, batch in by_owner.items():
            msg = Message("fed_presence")
            msg.add_json("ops", batch)
            self._send(owner, msg)

    def _apply_presence_op(self, op: dict) -> None:
        try:
            peer_id = str(op["peer_id"])
            kind = op["op"]
        except (KeyError, TypeError):
            fed_metric("fed.reject.malformed")
            return
        if kind == "up":
            self.directory[peer_id] = DirectoryEntry(
                peer_id=peer_id,
                username=str(op.get("username", "")),
                address=str(op.get("address", "")),
                home=str(op.get("home", "")),
                last_seen=float(op.get("last_seen", self.clock.now)))
            fed_metric("fed.presence.up")
        elif kind == "down":
            self.directory.pop(peer_id, None)
            self.cache.remove_peer(peer_id)
            fed_metric("fed.presence.down")
        else:
            fed_metric("fed.reject.malformed")

    # -- anti-entropy -------------------------------------------------------

    def _ship_deltas(self, address: str, need: list[str],
                     sendable: dict[str, Element],
                     digests: dict[str, str]) -> bool:
        """Ship the entries ``address`` asked for, then confirm receipt.

        Delta frames are best-effort datagrams issued inside a corked
        section, so on a batching transport the whole hand-off rides the
        link's send queue as a few coalesced wire units instead of one
        request round trip per :attr:`delta_batch` entries.  One
        confirming ``fed_digest`` round replaces the per-batch acks: the
        hand-off only counts (and local copies are only retired) if the
        owner's digest answer shows it now holds every shipped entry.
        """
        step = self.delta_batch
        with self.endpoint.corked():
            for start in range(0, len(need), step):
                batch = [sendable[k].deep_copy()
                         for k in need[start:start + step]]
                req = Message("fed_delta")
                req.add_xml("advs", pack_results(batch))
                if not self._send(address, req):
                    return False
                fed_metric("fed.sync.entries_sent", len(batch))
        confirm = Message("fed_digest")
        confirm.add_json("entries", {k: digests[k] for k in need})
        cresp = self._request(address, confirm)
        if cresp.msg_type != "fed_digest_resp" or not self.authorize(
                cresp, address, link=True):
            return False
        still_missing = set(wire.decode(cresp)["need"]) & set(need)
        return not still_missing

    def sync_with(self, address: str) -> bool:
        """One digest/delta round toward ``address`` (a shard owner).

        Offers digests of every local entry that broker owns, ships only
        the entries it reports missing or different, re-ups the presence
        of local sessions it owns, and — once the owner confirms — drops
        the local copies (the hand-off that keeps each entry single-homed).
        """
        if address not in self.members:
            return False
        fed_metric("fed.sync.rounds")
        sendable: dict[str, Element] = {}
        digests: dict[str, str] = {}
        for entry in self.cache.find():
            if self.owner_of(str(entry.parsed.peer_id)) != address:
                continue
            key = entry_key(entry.parsed)
            sendable[key] = entry.element
            digests[key] = entry_digest(entry.element)
        ups = []
        for session in self.broker.connected.values():
            if self.owner_of(session.peer_id) == address:
                ups.append({"op": "up", "peer_id": session.peer_id,
                            "username": session.username,
                            "address": session.address,
                            "home": self.broker.address,
                            "last_seen": session.last_seen})
        moved = [pid for pid in self.directory
                 if self.owner_of(pid) == address]
        for pid in moved:
            entry = self.directory[pid]
            ups.append({"op": "up", "peer_id": pid,
                        "username": entry.username, "address": entry.address,
                        "home": entry.home, "last_seen": entry.last_seen})
        try:
            if digests:
                dreq = Message("fed_digest")
                dreq.add_json("entries", digests)
                dresp = self._request(address, dreq)
                if dresp.msg_type != "fed_digest_resp" or not self.authorize(
                        dresp, address, link=True):
                    fed_metric("fed.sync.failed")
                    return False
                fed_metric("fed.sync.digest_keys", len(digests))
                need = [k for k in wire.decode(dresp)["need"] if k in sendable]
                if need and not self._ship_deltas(address, need, sendable,
                                                  digests):
                    fed_metric("fed.sync.failed")
                    return False
            if ups:
                msg = Message("fed_presence")
                msg.add_json("ops", ups)
                self._send(address, msg)
                fed_metric("fed.presence.refreshed", len(ups))
        except NetworkError:
            fed_metric("fed.sync.failed")
            return False
        # The owner confirmed it holds (or already held) every offered
        # entry: retire the local copies and the moved directory rows.
        for key_str, element in sendable.items():
            parsed = Advertisement.from_element(element)
            self.cache.remove(parsed.key())
        if sendable:
            fed_metric("fed.sync.handoff_removed", len(sendable))
        for pid in moved:
            self.directory.pop(pid, None)
        return True

    def sweep(self) -> None:
        """Periodic anti-entropy: expire stale directory rows, sync all."""
        now = self.clock.now
        for pid, entry in list(self.directory.items()):
            if (entry.home != self.broker.address
                    and now - entry.last_seen > self.directory_max_age):
                self.directory.pop(pid, None)
                fed_metric("fed.presence.expired")
        for address in list(self.members):
            self.sync_with(address)
        self._gauges()

    # -- scatter for unkeyed queries ----------------------------------------

    def scatter_query(self, local_elements: list[Element],
                      adv_type: str | None, group: str | None) -> list[Element]:
        """Merge a type/group query across every shard (no key to route)."""
        gathered = [local_elements]
        for address in list(self.members):
            req = Message("fed_query")
            if adv_type:
                req.add_text("adv_type", adv_type)
            if group:
                req.add_text("group", group)
            fed_metric("fed.scatter")
            try:
                resp = self._request(address, req)
            except NetworkError:
                fed_metric("fed.scatter_miss")
                continue
            if resp.msg_type != "fed_query_resp" or not self.authorize(
                    resp, address, link=True):
                fed_metric("fed.scatter_miss")
                continue
            try:
                gathered.append(unpack_results(wire.decode(resp)["results"]))
            except (OverlayError, JxtaError):
                fed_metric("fed.reject.malformed")
        return merge_results(*gathered)

    # -- incoming frame handlers (installed via the broker) ------------------

    def fn_link_req(self, message: Message, src: str) -> Message | None:
        if not self.authorize(message, src, link=True):
            return None
        try:
            roster = wire.decode(message)["members"]
        except JxtaError:
            fed_metric("fed.reject.malformed")
            return None
        self._merge_members(roster)
        out = Message("fed_link_ok")
        out.add_json("members", self.roster())
        sealed = self.seal(out)
        # Inline hand-off: the initiator pre-registered us, so our digest
        # and delta frames pass its membership check mid-handshake.
        self.sync_with(src)
        return sealed

    def fn_members(self, message: Message, src: str) -> None:
        if not self.authorize(message, src, link=True):
            return None
        try:
            self._merge_members(wire.decode(message)["members"])
        except JxtaError:
            fed_metric("fed.reject.malformed")
        return None

    def fn_unlink(self, message: Message, src: str) -> None:
        if not self.authorize(message, src):
            return None
        self.members.pop(src, None)
        self.ring.remove(src)
        self._gauges()
        return None

    def fn_digest(self, message: Message, src: str) -> Message | None:
        if not self.authorize(message, src):
            return None
        try:
            offered = wire.decode(message)["entries"]
        except JxtaError:
            fed_metric("fed.reject.malformed")
            return None
        held: dict[str, str] = {}
        for entry in self.cache.find():
            held[entry_key(entry.parsed)] = entry_digest(entry.element)
        need = [key for key, digest in sorted(offered.items())
                if held.get(key) != digest]
        out = Message("fed_digest_resp")
        out.add_json("need", need)
        return self.seal(out)

    def fn_delta(self, message: Message, src: str) -> Message | None:
        if not self.authorize(message, src):
            return None
        try:
            elements = unpack_results(wire.decode(message)["advs"])
        except (OverlayError, JxtaError):
            fed_metric("fed.reject.malformed")
            return None
        accepted = 0
        for element in elements:
            try:
                self.cache.publish(element)
                accepted += 1
            except (OverlayError, JxtaError):
                fed_metric("fed.reject.malformed")
        fed_metric("fed.sync.entries_received", accepted)
        out = Message("fed_delta_ok")
        out.add_text("accepted", str(accepted))
        return self.seal(out)

    def fn_presence(self, message: Message, src: str) -> None:
        if not self.authorize(message, src):
            return None
        try:
            ops = wire.decode(message)["ops"]
        except JxtaError:
            fed_metric("fed.reject.malformed")
            return None
        for op in ops:
            self._apply_presence_op(op)
        return None

    def fn_query(self, message: Message, src: str) -> Message | None:
        """Scatter leg of an unkeyed query: answer from the local shard."""
        if not self.authorize(message, src):
            return None
        frame = wire.decode(message)
        adv_type = frame.get("adv_type")
        group = frame.get("group")
        elements = self.cache.elements(adv_type=adv_type, group=group)
        out = Message("fed_query_resp")
        out.add_xml("results", pack_results(elements))
        return self.seal(out)
