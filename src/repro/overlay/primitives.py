"""The primitive catalogue and invocation bookkeeping.

JXTA-Overlay exposes its functionality as *primitives* (invoked by client
applications) whose messages trigger *functions* on brokers and peers.
The paper (section 6) counts about 122 primitives; this reproduction
implements the sets the paper discusses — discovery, messenger, group,
file-sharing and (as the announced further work) executable primitives —
plus their secure variants.

The :func:`primitive` decorator tags Client Module methods, records
invocations in the peer's metrics, and lets the test-suite and
documentation enumerate exactly what is offered.  It is also the
per-primitive observability choke point: every invocation records
``overlay.<primitive>.calls`` / ``.errors``, a wall-clock
``.latency_ms`` histogram, and — because the simulator is synchronous —
exact per-invocation ``.bytes_sent`` / ``.frames_sent`` attribution
taken as deltas of the global network counters.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import obs

F = TypeVar("F", bound=Callable)

#: name -> descriptor of every registered primitive
CATALOGUE: dict[str, "PrimitiveInfo"] = {}

#: innermost-first stack of primitives currently executing (the simulator
#: is single-threaded, so a module-level stack is race-free)
_ACTIVE: list[str] = []


def current_primitive() -> str | None:
    """Name of the innermost primitive currently executing, if any.

    The retry runner in :mod:`repro.overlay.policy` uses this to
    attribute ``overlay.<primitive>.retries`` without every call site
    having to thread its own name through the policy layer.
    """
    return _ACTIVE[-1] if _ACTIVE else None


@dataclass(frozen=True)
class PrimitiveInfo:
    name: str
    category: str          # discovery | messenger | group | file | executable
    secure: bool           # is this the secured variant?
    doc: str


def primitive(category: str, secure: bool = False) -> Callable[[F], F]:
    """Register a Client Module method as a JXTA-Overlay primitive."""

    def decorate(func: F) -> F:
        info = PrimitiveInfo(
            name=func.__name__,
            category=category,
            secure=secure,
            doc=(func.__doc__ or "").strip().splitlines()[0] if func.__doc__ else "",
        )
        CATALOGUE[info.name] = info

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            self.metrics.incr(f"primitive.{info.name}")
            registry = obs.get_registry()
            _ACTIVE.append(info.name)
            try:
                if not registry.enabled:
                    return func(self, *args, **kwargs)
                registry.incr(f"overlay.{info.name}.calls")
                bytes0 = registry.counter("net.bytes_sent").value
                frames0 = registry.counter("net.frames_sent").value
                t0 = time.perf_counter()
                try:
                    return func(self, *args, **kwargs)
                except Exception:
                    registry.incr(f"overlay.{info.name}.errors")
                    raise
                finally:
                    registry.observe(f"overlay.{info.name}.latency_ms",
                                     (time.perf_counter() - t0) * 1e3)
                    registry.observe(
                        f"overlay.{info.name}.bytes_sent",
                        registry.counter("net.bytes_sent").value - bytes0)
                    registry.observe(
                        f"overlay.{info.name}.frames_sent",
                        registry.counter("net.frames_sent").value - frames0)
            finally:
                _ACTIVE.pop()

        wrapper.primitive_info = info  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def catalogue_by_category() -> dict[str, list[PrimitiveInfo]]:
    out: dict[str, list[PrimitiveInfo]] = {}
    for info in CATALOGUE.values():
        out.setdefault(info.category, []).append(info)
    for infos in out.values():
        infos.sort(key=lambda i: i.name)
    return out


def secure_variants() -> dict[str, PrimitiveInfo]:
    return {n: i for n, i in CATALOGUE.items() if i.secure}
