"""The JXTA-Overlay middleware: Client, Broker and Control modules.

This package reproduces the *insecure* middleware of section 2 of the
paper — the thing the security extension in :mod:`repro.core` is bolted
onto.  Its protocol is deliberately era-faithful: clear-text passwords,
self-asserted identities, unauthenticated advertisements.
"""

from repro.overlay.broker import Broker, ConnectedPeer
from repro.overlay.client import ClientPeer
from repro.overlay.control import ControlModule
from repro.overlay.database import UserDatabase
from repro.overlay.events import EVENT_CATALOGUE, EventBus
from repro.overlay.filesharing import FileStore, chunked_fetch
from repro.overlay.presence import PresenceSweeper
from repro.overlay.primitives import CATALOGUE, PrimitiveInfo, primitive

__all__ = [
    "Broker",
    "ConnectedPeer",
    "ClientPeer",
    "ControlModule",
    "UserDatabase",
    "EventBus",
    "EVENT_CATALOGUE",
    "FileStore",
    "chunked_fetch",
    "PresenceSweeper",
    "CATALOGUE",
    "PrimitiveInfo",
    "primitive",
]
