"""Robustness policies: retries, timeout budgets, circuit breaking.

JXTA-Overlay is best-effort middleware on a lossy network, but the
primitives in :mod:`repro.overlay.client` were originally written
retry-free against a lossless in-process path.  This module supplies the
policy layer the client wires in:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter,
  waited out on the **virtual** clock so retries cost simulated time,
  never wall time;
* :class:`Timeout` — a virtual-clock budget for one whole primitive
  invocation (all attempts included);
* :class:`CircuitBreaker` — guards broker requests: after a run of
  consecutive transport failures it opens and fails fast
  (:class:`~repro.errors.CircuitOpenError`) until a virtual-time cooldown
  lets a half-open probe through.

Every retry records ``overlay.<primitive>.retries`` (attributed to the
innermost active primitive), every backoff wait records
``policy.retry.backoff_ms``, and breaker transitions are exported as the
``policy.breaker.state`` gauge plus the ``on_breaker_state`` hook — see
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro import obs
from repro.errors import (
    CircuitOpenError,
    NetworkError,
    PrimitiveTimeoutError,
)
from repro.net.linkq import LinkPolicy
from repro.overlay.primitives import current_primitive
from repro.sim.clock import VirtualClock

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: how often to retry and how long to wait.

    ``max_attempts`` counts the first try; ``max_attempts=1`` disables
    retries.  The wait before attempt ``n+1`` is
    ``base_delay_s * multiplier**(n-1)`` capped at ``max_delay_s``, plus
    up to ``jitter`` of itself drawn from the supplied deterministic
    uniform draw (the sim RNG), so identical seeds replay identically.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, failed_attempts: int,
              draw: Callable[[], float] | None = None) -> float:
        """Backoff before the next attempt, after ``failed_attempts`` >= 1."""
        if failed_attempts < 1:
            raise ValueError("delay() is asked after at least one failure")
        base = min(self.base_delay_s * self.multiplier ** (failed_attempts - 1),
                   self.max_delay_s)
        if self.jitter > 0 and draw is not None:
            base += base * self.jitter * draw()
        return base


#: Retries disabled: a single attempt, old best-effort semantics.
NO_RETRY = RetryPolicy(max_attempts=1)

#: Per-category defaults the client installs (overridable per call).
DEFAULT_RETRIES: dict[str, RetryPolicy] = {
    "broker": RetryPolicy(max_attempts=4, base_delay_s=0.1),
    "messenger": RetryPolicy(max_attempts=4, base_delay_s=0.05),
    "file": RetryPolicy(max_attempts=4, base_delay_s=0.05),
}


@dataclass(frozen=True)
class Timeout:
    """A virtual-clock budget covering every attempt of one invocation."""

    budget_s: float

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError("timeout budget must be positive")

    def deadline(self, clock: VirtualClock) -> float:
        return clock.now + self.budget_s


#: Default per-category timeout budgets, in virtual seconds.
DEFAULT_TIMEOUTS: dict[str, Timeout] = {
    "broker": Timeout(30.0),
    "messenger": Timeout(30.0),
    "file": Timeout(120.0),
}


#: Default link-layer scheduling knobs (batching caps, adaptive flush
#: window, bounded-queue overflow policy, compression floor) — see
#: :class:`repro.net.linkq.LinkPolicy`.  Re-exported here because the
#: link queues are a robustness surface: their overflow handling feeds
#: the same circuit breakers this module defines.
DEFAULT_LINK_POLICY = LinkPolicy()


def link_breaker_factory(clock: VirtualClock,
                         failure_threshold: int = 5,
                         reset_timeout_s: float = 30.0):
    """Per-destination breakers for a link scheduler.

    Returns the ``breaker_factory`` callable
    :meth:`~repro.net.linkq.LinkScheduler` expects: each destination
    gets its own :class:`CircuitBreaker`, so a dead link trips
    fail-fast drops without affecting traffic to healthy peers.
    """

    def factory(dst: str) -> CircuitBreaker:
        return CircuitBreaker(clock, failure_threshold=failure_threshold,
                              reset_timeout_s=reset_timeout_s,
                              name=f"link:{dst}")

    return factory


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cooldown.

    States follow the classic machine: ``closed`` (normal operation),
    ``open`` (fail fast until ``reset_timeout_s`` of virtual time has
    passed), ``half_open`` (one probe allowed; success closes, failure
    re-opens).  All timing runs on the virtual clock.
    """

    CLOSED, HALF_OPEN, OPEN = "closed", "half_open", "open"
    _STATE_GAUGE = {"closed": 0, "half_open": 1, "open": 2}

    def __init__(self, clock: VirtualClock, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0, name: str = "broker") -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.open_total = 0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        registry = obs.get_registry()
        if registry.enabled:
            registry.set_gauge("policy.breaker.state", self._STATE_GAUGE[state])
            registry.incr("policy.breaker.transitions")
        obs.emit("on_breaker_state", name=self.name, state=state)

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` while open."""
        if self.state == self.OPEN:
            if self.clock.now - self.opened_at >= self.reset_timeout_s:
                self._transition(self.HALF_OPEN)
            else:
                raise CircuitOpenError(
                    f"circuit {self.name!r} is open "
                    f"({self.consecutive_failures} consecutive failures)")

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (self.state == self.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.opened_at = self.clock.now
            if self.state != self.OPEN:
                self.open_total += 1
            self._transition(self.OPEN)


def run_with_retry(attempt: Callable[[], T], *, clock: VirtualClock,
                   retry: RetryPolicy, timeout: Timeout | None = None,
                   breaker: CircuitBreaker | None = None,
                   retry_on: tuple[type[BaseException], ...] = (NetworkError,),
                   draw: Callable[[], float] | None = None,
                   peer: str = "", label: str = "") -> tuple[T, int]:
    """Run ``attempt`` under a retry policy; returns (result, attempts).

    Transport-class failures (``retry_on``) are retried with backoff
    waited out on the virtual clock; anything else propagates untouched.
    The breaker, when given, gates the invocation once at entry and is
    fed one outcome per invocation: success, or a single failure when
    every attempt is spent (a retried-then-recovered call is a success).
    Exceeding the timeout budget raises :class:`PrimitiveTimeoutError`;
    exhausting the attempts re-raises the last transport error.  Either
    way the raised exception carries the count as ``exc.attempts``.
    """
    deadline = timeout.deadline(clock) if timeout is not None else None
    primitive = current_primitive() or label or "call"
    if breaker is not None:
        breaker.before_call()
    attempts = 0
    while True:
        attempts += 1
        try:
            result = attempt()
        except retry_on as exc:
            if attempts >= retry.max_attempts:
                if breaker is not None:
                    breaker.record_failure()
                exc.attempts = attempts
                raise
            delay = retry.delay(attempts, draw)
            if deadline is not None and clock.now + delay > deadline:
                if breaker is not None:
                    breaker.record_failure()
                timeout_exc = PrimitiveTimeoutError(
                    f"{primitive}: timeout budget of {timeout.budget_s}s "
                    f"exhausted after {attempts} attempts")
                timeout_exc.attempts = attempts
                raise timeout_exc from exc
            registry = obs.get_registry()
            if registry.enabled:
                registry.incr(f"overlay.{primitive}.retries")
                registry.observe("policy.retry.backoff_ms", delay * 1e3)
            obs.emit("on_retry", peer=peer, primitive=primitive,
                     attempt=attempts, reason=str(exc))
            clock.advance(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result, attempts
