"""Link-capability negotiation shared by brokers and client peers.

Modeled on the resumption-suite negotiation: on connect, either side
may advertise which batch-payload codecs it can decode and the highest
zlib level it is willing to spend (``link_caps_req``); the responder
answers with the codec and level it actually selected
(``link_caps_ok``) and seeds its *own* outbound compression toward the
requester with the same level, so one round trip configures the link
symmetrically.  A responder without a link scheduler (or with
compression disabled by policy) answers ``codec="none"``, which keeps
the exchange harmless against any endpoint.

The mixin assumes the host class provides ``self.control`` (a
:class:`~repro.overlay.control.ControlModule`), ``self.address`` and
``self.clock`` — exactly the surface :class:`~repro.overlay.broker.Broker`
and :class:`~repro.overlay.client.ClientPeer` share.
"""

from __future__ import annotations

from repro import wire
from repro.errors import NetworkError
from repro.jxta.messages import Message
from repro.overlay.policy import (
    DEFAULT_LINK_POLICY,
    LinkPolicy,
    link_breaker_factory,
)

#: batch-payload codecs this implementation can decode, best first
SUPPORTED_CODECS = ("zlib",)


class LinkCapsMixin:
    """Opt-in link batching plus the capability exchange, both sides."""

    #: link-layer tuning; ``None`` until :meth:`enable_link_batching`
    link_policy: LinkPolicy | None = None

    def enable_link_batching(self, policy: LinkPolicy | None = None, *,
                             breaker_factory=None):
        """Install a link scheduler on this entity's transport.

        Returns the scheduler (or ``None`` on a backend without a link
        layer).  Batching stays off for everyone who does not call
        this — the legacy one-frame-per-send wire is the default.
        """
        policy = policy if policy is not None else DEFAULT_LINK_POLICY
        self.link_policy = policy
        if breaker_factory is None:
            breaker_factory = link_breaker_factory(self.clock)
        return self.control.endpoint.configure_links(
            policy, breaker_factory=breaker_factory)

    def negotiate_link(self, dst: str) -> int:
        """Run the capability exchange toward ``dst``.

        Offers every supported codec at this side's policy level and
        applies whatever the responder selected to this side's outbound
        queue for the link.  Returns the negotiated zlib level (0 when
        either side declined or the exchange failed).
        """
        policy = self.link_policy
        if policy is None or policy.compress_level <= 0:
            return 0
        req = Message("link_caps_req")
        req.add_json("codecs", list(SUPPORTED_CODECS))
        req.add_text("level", str(policy.compress_level))
        try:
            resp = self.control.endpoint.request(dst, req)
        except NetworkError:
            return 0
        if resp.msg_type != "link_caps_ok":
            return 0
        try:
            frame = wire.decode(resp)
        except Exception:
            return 0
        if frame["codec"] not in SUPPORTED_CODECS:
            return 0
        level = min(int(frame["level"]), policy.compress_level)
        if level <= 0:
            return 0
        self._apply_link_compression(dst, level)
        return level

    def fn_link_caps(self, message: Message, src: str) -> Message:
        """Responder side of the exchange (registered on both roles)."""
        frame = wire.decode(message)
        offered_codecs = frame["codecs"]
        offered_level = int(frame["level"])
        policy = self.link_policy
        level = 0
        if (policy is not None and policy.compress_level > 0
                and offered_level > 0
                and isinstance(offered_codecs, list)
                and "zlib" in offered_codecs):
            level = min(offered_level, policy.compress_level)
        if level > 0 and not self._apply_link_compression(src, level):
            level = 0
        out = Message("link_caps_ok")
        out.add_text("codec", "zlib" if level > 0 else "none")
        out.add_text("level", str(level))
        return out

    def _apply_link_compression(self, dst: str, level: int) -> bool:
        """Seed outbound compression toward ``dst``; False if no scheduler."""
        net = self.control.endpoint.net
        setter = getattr(net, "set_link_compression", None)
        if setter is None or getattr(net, "scheduler", None) is None:
            return False
        setter(self.address, dst, level)
        return True
