"""The Broker Module.

Brokers (section 2.1) control access to the network, authenticate end
users against the central database, maintain the global resource index,
propagate peer information across group members (beyond broadcast/NAT
boundaries), and act as well-known beacons for joining peers.

Every public ``fn_*`` method is a *function* in JXTA-Overlay's
terminology: it runs as the result of a message sent by a client-side
primitive.  The plain protocol here is deliberately faithful to the
paper's threat analysis — the login password crosses the wire in clear
text, nothing is signed — so the security extension in
:mod:`repro.core` has the real vulnerabilities to fix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, wire
from repro.crypto.drbg import HmacDrbg
from repro.errors import GroupError, JxtaError, OverlayError
from repro.jxta.advertisements import Advertisement, GroupAdvertisement, PeerAdvertisement
from repro.jxta.ids import JxtaID, parse_id, random_group_id, random_peer_id
from repro.jxta.messages import Message
from repro.jxta.peergroup import GroupTable
from repro.overlay.control import ControlModule, pack_results
from repro.overlay.database import UserDatabase
from repro.overlay.federation import Federation
from repro.overlay.linkcaps import LinkCapsMixin
from repro.net.base import Transport
from repro.sim.network import SimNetwork
from repro.xmllib import Element


@dataclass
class ConnectedPeer:
    """Broker-side session state for one authenticated client."""

    peer_id: str
    username: str
    address: str
    last_seen: float


class Broker(LinkCapsMixin):
    """A JXTA-Overlay broker."""

    def __init__(self, network: SimNetwork | Transport, address: str,
                 database: UserDatabase, drbg: HmacDrbg, name: str = "") -> None:
        self.control = ControlModule(network, address, drbg)
        self.database = database
        self.name = name or address
        self.peer_id = random_peer_id(drbg)
        self.groups = GroupTable()
        self.connected: dict[str, ConnectedPeer] = {}  # peer_id -> session
        self._addr_index: dict[str, str] = {}  # address -> peer_id
        self.federation = Federation(self)
        self._install_functions()

    # -- plumbing ------------------------------------------------------------

    @property
    def address(self) -> str:
        return self.control.address

    @property
    def metrics(self):
        return self.control.metrics

    @property
    def clock(self):
        return self.control.clock

    def _install(self, functions: dict) -> None:
        """Declare broker functions with call/latency observability."""
        self.control.endpoint.configure(wire=True, handlers={
            msg_type: obs.timed_handler(f"broker.fn.{msg_type}", handler)
            for msg_type, handler in functions.items()})

    def _install_functions(self) -> None:
        self._install({
            "connect_req": self.fn_connect,
            "login_req": self.fn_login,
            "logout_req": self.fn_logout,
            "publish_adv": self.fn_publish_adv,
            "query_req": self.fn_query,
            "create_group_req": self.fn_create_group,
            "join_group_req": self.fn_join_group,
            "leave_group_req": self.fn_leave_group,
            "list_groups_req": self.fn_list_groups,
            "group_members_req": self.fn_group_members,
            "peer_status_req": self.fn_peer_status,
            "presence_beat": self.fn_presence,
            "index_sync": self.fn_index_sync,
            "link_caps_req": self.fn_link_caps,
            # Federation frames delegate through ``self.federation`` at
            # call time so the secure stack can swap the object after
            # construction.
            "fed_link_req": self.fn_fed_link_req,
            "fed_members": self.fn_fed_members,
            "fed_unlink": self.fn_fed_unlink,
            "fed_digest": self.fn_fed_digest,
            "fed_delta": self.fn_fed_delta,
            "fed_presence": self.fn_fed_presence,
            "fed_query": self.fn_fed_query,
        })

    def link_broker(self, other: "Broker | str") -> None:
        """Federate with another broker, by object or by address (§2.1).

        All inter-broker traffic is carried as message frames over the
        simulated network; linking swaps member rosters and runs one
        digest-based anti-entropy round that ships only the entries whose
        shard ownership moved — never a full index copy.
        """
        self.federation.link(other)

    def unlink_broker(self, other: "Broker | str") -> None:
        """Dissolve this broker's federation link with ``other``."""
        self.federation.unlink(other)

    # -- helpers ---------------------------------------------------------------

    def _ok(self, msg_type: str) -> Message:
        return Message(msg_type)

    def _fail(self, msg_type: str, reason: str) -> Message:
        out = Message(msg_type)
        out.add_text("reason", reason)
        return out

    def _session_for_address(self, address: str) -> ConnectedPeer | None:
        peer_id = self._addr_index.get(address)
        if peer_id is None:
            return None
        session = self.connected.get(peer_id)
        if session is None or session.address != address:
            return None
        return session

    def _require_session(self, src: str) -> ConnectedPeer:
        session = self._session_for_address(src)
        if session is None:
            raise OverlayError(f"no authenticated session for {src!r}")
        return session

    def _push_to_group_members(self, group_name: str, message: Message,
                               exclude_peer: str | None = None) -> int:
        """Propagate data to every connected member of a group."""
        group = self.groups.get_or_none(group_name)
        if group is None:
            return 0
        pushed = 0
        for member_id in sorted(group.members):
            if member_id == exclude_peer:
                continue
            session = self.connected.get(member_id)
            if session is None:
                continue
            if self.control.endpoint.send(session.address, message):
                pushed += 1
        return pushed

    def _group_membership_changed(self, group_name: str,
                                  joined: str | None = None,
                                  left: str | None = None,
                                  churn: bool = False) -> None:
        """Hook: a member joined/left a local group shard.

        ``churn`` marks a dropped session (the member's database
        membership persists) as opposed to an explicit leave.  The plain
        broker has no group-cast state; the secure broker overrides this
        to rotate the group's epoch key.
        """

    # -- federation frame delegates ------------------------------------------

    def fn_fed_link_req(self, message: Message, src: str) -> Message | None:
        return self.federation.fn_link_req(message, src)

    def fn_fed_members(self, message: Message, src: str) -> None:
        return self.federation.fn_members(message, src)

    def fn_fed_unlink(self, message: Message, src: str) -> None:
        return self.federation.fn_unlink(message, src)

    def fn_fed_digest(self, message: Message, src: str) -> Message | None:
        return self.federation.fn_digest(message, src)

    def fn_fed_delta(self, message: Message, src: str) -> Message | None:
        return self.federation.fn_delta(message, src)

    def fn_fed_presence(self, message: Message, src: str) -> None:
        return self.federation.fn_presence(message, src)

    def fn_fed_query(self, message: Message, src: str) -> Message | None:
        return self.federation.fn_query(message, src)

    # -- functions: discovery set ------------------------------------------------

    def fn_connect(self, message: Message, src: str) -> Message:
        """connect: a client located us and asks to open a connection."""
        self.metrics.incr("fn.connect")
        out = self._ok("connect_ok")
        out.add_text("broker_id", str(self.peer_id))
        out.add_text("broker_name", self.name)
        return out

    def fn_login(self, message: Message, src: str) -> Message:
        """login: check username/password against the central database.

        The plain protocol: credentials arrive IN CLEAR TEXT (the paper's
        headline vulnerability).  On success the peer is registered into
        its groups and its peer advertisement is indexed and propagated.
        """
        self.metrics.incr("fn.login")
        frame = wire.decode(message)
        username = frame["username"]
        password = frame["password"]
        if not self.database.check_credentials(username, password):
            self.metrics.incr("fn.login.rejected")
            return self._fail("login_fail", "bad username or password")
        peer_adv_elem = frame["peer_adv"]
        try:
            parsed = Advertisement.from_element(peer_adv_elem)
        except (OverlayError, JxtaError) as exc:
            return self._fail("login_fail", f"bad peer advertisement: {exc}")
        if not isinstance(parsed, PeerAdvertisement):
            return self._fail("login_fail", "expected a PeerAdvertisement")
        peer_id = str(parsed.peer_id)
        groups = self.register_session(peer_id, username, src)
        self.federation.route_publish(peer_adv_elem)
        out = self._ok("login_ok")
        out.add_json("groups", groups)
        out.add_text("peer_id", peer_id)
        return out

    def register_session(self, peer_id: str, username: str, address: str) -> list[str]:
        """Post-authentication bookkeeping shared by plain and secure login:
        session record, group membership, and peer_joined propagation."""
        groups = sorted(self.database.groups_of(username))
        self.connected[peer_id] = ConnectedPeer(
            peer_id=peer_id, username=username, address=address,
            last_seen=self.clock.now)
        self._addr_index[address] = peer_id
        self.database.mark_active(username, self.address)
        self.federation.presence_up(peer_id, username, address, self.clock.now)
        for group_name in groups:
            self._ensure_group(group_name).add_member(peer_id)
            self._group_membership_changed(group_name, joined=peer_id)
            joined = Message("peer_joined")
            joined.add_text("group", group_name)
            joined.add_text("peer_id", peer_id)
            joined.add_text("username", username)
            self._push_to_group_members(group_name, joined, exclude_peer=peer_id)
        return groups

    def bulk_admit(self, peer_id: str, username: str, address: str) -> list[str]:
        """Install an authenticated session without the join broadcast.

        The population-scale admission path used by the scenario
        engine's actor pool: it produces the same session, address-index
        and group-roster state as :meth:`register_session`, but models a
        peer whose join has already converged — no ``peer_joined``
        fan-out, no presence gossip, no group-cast epoch rotation.  With
        a hundred thousand scripted actors those per-member broadcasts
        are quadratic; scenario *wire* joins still exercise the full
        ``fn_login`` path for the sampled fraction of the population.
        """
        groups = sorted(self.database.groups_of(username))
        self.connected[peer_id] = ConnectedPeer(
            peer_id=peer_id, username=username, address=address,
            last_seen=self.clock.now)
        self._addr_index[address] = peer_id
        self.database.mark_active(username, self.address)
        for group_name in groups:
            self._ensure_group(group_name).add_member(peer_id)
        self.metrics.incr("fn.bulk_admit")
        return groups

    def bulk_evict(self, address: str) -> bool:
        """Drop a session installed by :meth:`bulk_admit` (or any session)
        without the leave broadcast — the converse of bulk admission,
        modelling churn whose departure gossip already settled."""
        session = self._session_for_address(address)
        if session is None:
            return False
        self.groups.drop_member_everywhere(session.peer_id)
        self.database.mark_inactive(session.username)
        self.connected.pop(session.peer_id, None)
        if self._addr_index.get(session.address) == session.peer_id:
            del self._addr_index[session.address]
        self.metrics.incr("fn.bulk_evict")
        return True

    def fn_logout(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.logout")
        session = self._session_for_address(src)
        if session is None:
            return self._fail("logout_fail", "not logged in")
        self._disconnect(session)
        return self._ok("logout_ok")

    def restart(self) -> None:
        """Simulate a crash-restart: all in-RAM session state is lost.

        Every connected peer's session evaporates (group membership and
        presence included) without any ``peer_left`` notification — the
        process died, nobody was told.  Durable state (the user database,
        the advertisement cache, registered groups) survives, matching a
        broker whose database and index live on disk.  Clients discover
        the loss when their next request fails with ``not logged in`` and
        are expected to re-login (see ``docs/ROBUSTNESS.md``).
        """
        for session in list(self.connected.values()):
            self.groups.drop_member_everywhere(session.peer_id)
            self.database.mark_inactive(session.username)
        self.connected.clear()
        self._addr_index.clear()
        self.federation.directory.clear()
        self.metrics.incr("fn.restarts")

    def _disconnect(self, session: ConnectedPeer) -> None:
        for group in self.groups.groups_of(session.peer_id):
            left = Message("peer_left")
            left.add_text("group", group.name)
            left.add_text("peer_id", session.peer_id)
            self._push_to_group_members(group.name, left, exclude_peer=session.peer_id)
            self._group_membership_changed(group.name, left=session.peer_id,
                                           churn=True)
        self.groups.drop_member_everywhere(session.peer_id)
        self.control.cache.remove_peer(session.peer_id)
        self.database.mark_inactive(session.username)
        self.connected.pop(session.peer_id, None)
        if self._addr_index.get(session.address) == session.peer_id:
            del self._addr_index[session.address]
        self.federation.presence_down(session.peer_id)

    def fn_peer_status(self, message: Message, src: str) -> Message:
        """Discovery-set: is a given peer online, and since when?

        A local session answers authoritatively; otherwise the question
        belongs to the peer's shard owner — non-owners redirect, owners
        answer from the sharded presence directory.
        """
        self.metrics.incr("fn.peer_status")
        frame = wire.decode(message)
        peer_id = frame["peer_id"]
        session = self.connected.get(peer_id)
        out = self._ok("peer_status_resp")
        out.add_text("peer_id", peer_id)
        if session is not None:
            out.add_text("online", "true")
            out.add_text("username", session.username)
            out.add_text("last_seen", repr(session.last_seen))
            return out
        owner = self.federation.owner_of(peer_id)
        if owner != self.address and not frame.has("fed_no_redirect"):
            return self.federation.redirect(owner)
        entry = self.federation.directory.get(peer_id)
        out.add_text("online", "true" if entry else "false")
        if entry:
            out.add_text("username", entry.username)
            out.add_text("last_seen", repr(entry.last_seen))
        return out

    def fn_presence(self, message: Message, src: str) -> Message | None:
        """Heartbeat datagram: refresh last_seen and cache the presence adv."""
        self.metrics.incr("fn.presence")
        session = self._session_for_address(src)
        if session is None:
            return None
        session.last_seen = self.clock.now
        frame = wire.decode(message)
        if frame.has("adv"):
            try:
                self.control.cache.publish(frame["adv"])
            except (OverlayError, JxtaError):
                self.metrics.incr("fn.presence.bad_adv")
        return None

    def purge_stale(self, max_age: float) -> list[str]:
        """Drop sessions silent for longer than ``max_age`` (beacon duty)."""
        now = self.clock.now
        stale = [s for s in self.connected.values() if now - s.last_seen > max_age]
        for session in stale:
            self._disconnect(session)
        self.metrics.incr("fn.purged", len(stale))
        return [s.peer_id for s in stale]

    # -- functions: advertisement index -------------------------------------------

    def fn_publish_adv(self, message: Message, src: str) -> Message:
        """Index an advertisement at its shard owner and push to its group.

        Honest brokers tie publication to the publishing peer's identity:
        a local session, or — for a client that followed a redirect here —
        the sharded presence directory entry matching the source address.
        Forgery of OTHER peers' advs happens via direct push between
        peers, which has no such check.
        """
        self.metrics.incr("fn.publish_adv")
        frame = wire.decode(message)
        element = frame["adv"]
        try:
            parsed = Advertisement.from_element(element)
        except (OverlayError, JxtaError) as exc:
            return self._fail("publish_fail", str(exc))
        adv_peer = str(parsed.peer_id)
        session = self._session_for_address(src)
        if session is not None:
            authed_peer = session.peer_id
        else:
            entry = self.federation.directory.get(adv_peer)
            if entry is None or entry.address != src:
                return self._fail("publish_fail", "not logged in")
            authed_peer = entry.peer_id
        if adv_peer != authed_peer:
            return self._fail("publish_fail", "advertisement peer id mismatch")
        owner = self.federation.owner_of(adv_peer)
        if owner != self.address:
            if not frame.has("fed_no_redirect"):
                return self.federation.redirect(owner)
            # Owner unreachable from the client: accept locally; the next
            # anti-entropy sweep hands the entry off to its shard owner.
            self.federation.note_degraded_publish()
        try:
            self.control.cache.publish(element)
        except (OverlayError, JxtaError) as exc:
            return self._fail("publish_fail", str(exc))
        group_name = getattr(parsed, "group", None)
        if group_name:
            push = Message("adv_push")
            push.add_xml("adv", element)
            self._push_to_group_members(group_name, push, exclude_peer=authed_peer)
        return self._ok("publish_ok")

    def fn_index_sync(self, message: Message, src: str) -> None:
        """Receive a legacy index update — linked brokers only.

        Frames from addresses that are not federation members are dropped
        and counted; arbitrary endpoints must not write the index.
        """
        self.metrics.incr("fn.index_sync")
        if not self.federation.authorize(message, src, sync=True):
            self.metrics.incr("fn.index_sync.dropped")
            return None
        try:
            self.control.cache.publish(wire.decode(message)["adv"])
        except (OverlayError, JxtaError):
            self.metrics.incr("fn.index_sync.bad")
        return None

    def fn_query(self, message: Message, src: str) -> Message:
        """Look up advertisements in the sharded global index.

        Keyed lookups (by peer id) route to the shard owner via a
        redirect; unkeyed type/group queries scatter-gather across the
        federation and merge the shards' answers.
        """
        self.metrics.incr("fn.query")
        frame = wire.decode(message)
        adv_type = frame.get("adv_type")
        peer_id = frame.get("peer_id")
        group = frame.get("group")
        if peer_id is not None:
            owner = self.federation.owner_of(peer_id)
            if owner != self.address and not frame.has("fed_no_redirect"):
                return self.federation.redirect(owner)
            elements = self.control.cache.elements(
                adv_type=adv_type, peer_id=peer_id, group=group)
        else:
            elements = self.control.cache.elements(adv_type=adv_type, group=group)
            if self.federation.members:
                elements = self.federation.scatter_query(elements, adv_type, group)
        out = self._ok("query_resp")
        out.add_xml("results", pack_results(elements))
        return out

    # -- functions: group set ---------------------------------------------------

    def _ensure_group(self, name: str):
        group = self.groups.get_or_none(name)
        if group is None:
            group = self.groups.create(random_group_id(self.control.drbg), name)
        return group

    def fn_create_group(self, message: Message, src: str) -> Message:
        """Create and publish a new peer group."""
        self.metrics.incr("fn.create_group")
        session = self._session_for_address(src)
        if session is None:
            return self._fail("create_group_fail", "not logged in")
        frame = wire.decode(message)
        name = frame["name"]
        description = frame.get("description", "")
        if not name:
            return self._fail("create_group_fail", "group name must be non-empty")
        if name in self.groups:
            return self._fail("create_group_fail", f"group {name!r} already exists")
        group = self.groups.create(random_group_id(self.control.drbg), name, description)
        self.database.register_group(name)
        self.database.assign_group(session.username, name)
        group.add_member(session.peer_id)
        self._group_membership_changed(name, joined=session.peer_id)
        adv = GroupAdvertisement(
            peer_id=self.peer_id, group_id=group.group_id,
            name=name, description=description)
        element = adv.to_element()
        self.federation.route_publish(element)
        out = self._ok("create_group_ok")
        out.add_xml("group_adv", element)
        return out

    def fn_join_group(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.join_group")
        session = self._session_for_address(src)
        if session is None:
            return self._fail("join_group_fail", "not logged in")
        name = wire.decode(message)["name"]
        group = self.groups.get_or_none(name)
        if group is None:
            return self._fail("join_group_fail", f"unknown group {name!r}")
        group.add_member(session.peer_id)
        self.database.assign_group(session.username, name)
        self._group_membership_changed(name, joined=session.peer_id)
        joined = Message("peer_joined")
        joined.add_text("group", name)
        joined.add_text("peer_id", session.peer_id)
        joined.add_text("username", session.username)
        self._push_to_group_members(name, joined, exclude_peer=session.peer_id)
        out = self._ok("join_group_ok")
        out.add_json("members", sorted(group.members))
        return out

    def fn_leave_group(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.leave_group")
        session = self._session_for_address(src)
        if session is None:
            return self._fail("leave_group_fail", "not logged in")
        name = wire.decode(message)["name"]
        try:
            group = self.groups.get(name)
        except GroupError:
            return self._fail("leave_group_fail", f"unknown group {name!r}")
        group.remove_member(session.peer_id)
        self.database.revoke_group(session.username, name)
        self._group_membership_changed(name, left=session.peer_id)
        left = Message("peer_left")
        left.add_text("group", name)
        left.add_text("peer_id", session.peer_id)
        self._push_to_group_members(name, left, exclude_peer=session.peer_id)
        return self._ok("leave_group_ok")

    def fn_list_groups(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.list_groups")
        out = self._ok("list_groups_resp")
        out.add_json("groups", self.groups.names())
        return out

    def fn_group_members(self, message: Message, src: str) -> Message:
        self.metrics.incr("fn.group_members")
        name = wire.decode(message)["name"]
        group = self.groups.get_or_none(name)
        if group is None:
            return self._fail("group_members_fail", f"unknown group {name!r}")
        out = self._ok("group_members_resp")
        out.add_json("members", sorted(group.members))
        return out
