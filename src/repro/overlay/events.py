"""The JXTA-Overlay event system.

Applications built on the Client Module react to *events thrown by
functions* executed on message reception (section 2.2).  We model this as
a small synchronous event bus; event names are listed centrally so tests
can assert against the catalogue.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.errors import OverlayError

EventListener = Callable[..., None]

#: the events the client module can emit (the paper counts 84 across all
#: function sets; this catalogue covers the sets we implement)
EVENT_CATALOGUE = (
    "connected",            # broker connection established
    "connection_failed",
    "logged_in",            # authentication succeeded; groups known
    "login_failed",
    "logged_out",
    "group_created",
    "group_joined",
    "group_left",
    "peer_joined_group",    # another member appeared in one of our groups
    "peer_left_group",
    "advertisement_received",
    "message_received",     # messenger primitives delivered a chat message
    "secure_message_received",
    "message_rejected",     # secure layer refused a message (tamper, key...)
    "file_published",
    "file_list_received",
    "file_received",
    "file_transfer_failed",
    "task_submitted",
    "task_result",
    "presence_update",
    "broker_rejected",      # secureConnection refused the broker
    "credential_issued",
)


class EventBus:
    """Synchronous pub/sub keyed on catalogue event names."""

    def __init__(self, strict: bool = True) -> None:
        self._listeners: dict[str, list[EventListener]] = defaultdict(list)
        self._strict = strict
        self.history: list[tuple[str, dict[str, Any]]] = []

    def _check(self, event: str) -> None:
        if self._strict and event not in EVENT_CATALOGUE:
            raise OverlayError(f"unknown event {event!r}")

    def subscribe(self, event: str, listener: EventListener) -> None:
        self._check(event)
        self._listeners[event].append(listener)

    def unsubscribe(self, event: str, listener: EventListener) -> None:
        self._listeners[event].remove(listener)

    def emit(self, event: str, **payload: Any) -> None:
        self._check(event)
        self.history.append((event, payload))
        for listener in list(self._listeners[event]):
            listener(**payload)

    def events_named(self, event: str) -> list[dict[str, Any]]:
        return [p for e, p in self.history if e == event]

    def clear_history(self) -> None:
        self.history.clear()
