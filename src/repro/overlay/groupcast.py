"""Broker-mediated secure group fan-out (group-cast).

The paper's ``secureMsgPeerGroup`` (§4.3) iterates from the *sender*:
resolve + seal + push once per member, so per-sender cost grows linearly
with the group.  Group-cast inverts the shape::

    sender --group_cast--> home broker --fed_group_cast--> member shards
                                 |                               |
                           group_deliver                   group_deliver
                                 v                               v
                          local subscribers              local subscribers

* The sender seals **once** under the group's current *epoch key*
  (:mod:`repro.crypto.groupkey`) and sends one ``group_cast`` frame.
* Its home broker checks the session + membership, stamps a local
  sequence number, delivers to its own subscribers, and relays the
  ciphertext verbatim to every federated broker as ``fed_group_cast``
  datagrams inside one corked section — on a batching transport the
  whole relay rides the link queues as coalesced wire units.
* Delivery is **interest-based**: clients opt in per group with
  ``group_sub`` / ``group_unsub``, so idle members cost nothing.
* Each broker keeps a bounded **store-and-forward** backlog per group
  and replays frames a re-subscribing member missed (``since`` high
  water mark), filtered by the member's key entitlement.

Epoch authority: the federation's shard owner of ``group|<name>`` mints
random epoch secrets, one per membership change.  Other brokers pull
secrets over the authenticated ``fed_group_epoch_req/ok`` exchange —
each secret individually envelope-sealed to the requesting broker's
admin-certified key — and hand them to *entitled* local members (from
their join epoch onward, never earlier).  Relaying brokers never need
the key at all: they forward ciphertext.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs, wire
from repro.crypto import envelope
from repro.crypto.groupkey import EPOCH_SECRET_LEN, GroupKeyRing
from repro.errors import DecryptionError, JxtaError, NetworkError, OverlayError
from repro.jxta.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.secure_broker import SecureBroker

# client <-> home broker
GROUP_SUB = "group_sub"
GROUP_SUB_OK = "group_sub_ok"
GROUP_SUB_FAIL = "group_sub_fail"
GROUP_UNSUB = "group_unsub"
GROUP_UNSUB_OK = "group_unsub_ok"
GROUP_CAST = "group_cast"
GROUP_CAST_OK = "group_cast_ok"
GROUP_CAST_FAIL = "group_cast_fail"
GROUP_DELIVER = "group_deliver"

# broker <-> broker (signed fed_* frames)
FED_GROUP_CAST = "fed_group_cast"
FED_GROUP_EPOCH = "fed_group_epoch"
FED_GROUP_EPOCH_REQ = "fed_group_epoch_req"
FED_GROUP_EPOCH_OK = "fed_group_epoch_ok"
FED_GROUP_EPOCH_FAIL = "fed_group_epoch_fail"

#: AAD for epoch secrets envelope-sealed broker-to-broker
EPOCH_AAD = b"jxta-overlay-group-epoch-secret"

#: group-cast shard keys live in their own ring namespace
_SHARD_PREFIX = "group|"


@dataclass
class _Stored:
    """One backlog entry of the store-and-forward queue."""

    seq: int
    epoch: int
    from_peer: str
    env: dict
    at: float


@dataclass
class _Shard:
    """Per-group state on one broker."""

    ring: GroupKeyRing
    #: raw epoch secrets (to hand to entitled clients / peer brokers)
    secrets: dict[int, bytes] = field(default_factory=dict)
    #: interest registrations: peer_id -> client address
    subscribers: dict[str, str] = field(default_factory=dict)
    #: first epoch each locally-homed member may read from
    entitled: dict[str, int] = field(default_factory=dict)
    #: bounded store-and-forward queue, oldest first
    backlog: deque = field(default_factory=deque)
    #: local delivery sequence (per broker, per group)
    seq: int = 0


class Groupcast:
    """Group-cast state machine of one :class:`SecureBroker`."""

    def __init__(self, broker: "SecureBroker") -> None:
        self.broker = broker
        self.drbg = broker.control.drbg.fork(b"groupcast")
        self._shards: dict[str, _Shard] = {}

    # -- plumbing ----------------------------------------------------------

    @property
    def fed(self):
        return self.broker.federation

    def reset(self) -> None:
        """Crash-restart: every shard (keys, interest, backlog) is RAM."""
        self._shards.clear()

    def _shard(self, group: str) -> _Shard:
        shard = self._shards.get(group)
        if shard is None:
            shard = _Shard(ring=GroupKeyRing(
                group, suite=self.broker.policy.envelope_suite,
                history=self.broker.policy.group_epoch_history))
            self._shards[group] = shard
        return shard

    def _owner_address(self, group: str) -> str:
        return self.fed.owner_of(_SHARD_PREFIX + group)

    def _is_owner(self, group: str) -> bool:
        return self._owner_address(group) == self.broker.address

    def _fail(self, msg_type: str, reason: str, code: str = "") -> Message:
        out = Message(msg_type)
        out.add_text("reason", reason)
        if code:
            out.add_text("code", code)
            obs.get_registry().incr(f"groupcast.reject.{code}")
        return out

    def _install_secret(self, shard: _Shard, epoch: int, secret: bytes) -> None:
        shard.ring.install(epoch, secret)
        shard.secrets[epoch] = secret
        while len(shard.secrets) > shard.ring.history:
            del shard.secrets[min(shard.secrets)]

    # -- epoch rotation ----------------------------------------------------

    def on_membership_change(self, group: str, joined: str | None = None,
                             left: str | None = None,
                             churn: bool = False) -> None:
        """Rotate the group's epoch key (every membership change).

        ``churn`` distinguishes a dropped session from an explicit
        leave: a churned member keeps its *entitlement* (its database
        membership persists, so on reconnect the backlog replays what it
        missed), while a leaver loses access to everything after its
        departure epoch — forward secrecy is against *departure*, not
        against a flaky link.
        """
        broker = self.broker
        if not broker.policy.enable_group_cast:
            return
        shard = self._shard(group)
        registry = obs.get_registry()
        if left is not None:
            shard.subscribers.pop(left, None)
            if not churn:
                shard.entitled.pop(left, None)
        if self._is_owner(group):
            epoch = shard.ring.epoch + 1
            self._install_secret(shard, epoch, self.drbg.generate(EPOCH_SECRET_LEN))
            self._announce(group, epoch)
            registry.incr("groupcast.rotate")
        elif self._pull_epochs(group, rotate=True):
            registry.incr("groupcast.rotate")
        else:
            # Owner unreachable: keep serving under the old epoch rather
            # than wedging the group; the next successful pull catches up.
            registry.incr("groupcast.rotate.degraded")
        self._sync_group_meta(group, shard, joined)
        if joined is not None and shard.ring.epoch:
            shard.entitled.setdefault(joined, shard.ring.epoch)

    def _sync_group_meta(self, group: str, shard: _Shard,
                         joined: str | None) -> None:
        """Mirror the shard's epoch into the broker's group table."""
        record = self.broker.groups.get_or_none(group)
        if record is not None and shard.ring.epoch:
            record.epoch = shard.ring.epoch
            if joined is not None:
                record.member_since[joined] = shard.ring.epoch

    def _announce(self, group: str, epoch: int, exclude: tuple = ()) -> None:
        note = Message(FED_GROUP_EPOCH)
        note.add_text("group", group)
        note.add_text("epoch", str(epoch))
        self.fed.broadcast(note, exclude=exclude)

    def _pull_epochs(self, group: str, rotate: bool = False) -> bool:
        """Fetch the group's epoch secrets from its shard owner."""
        broker = self.broker
        owner = self._owner_address(group)
        if owner == broker.address:
            return True
        req = Message(FED_GROUP_EPOCH_REQ)
        req.add_text("group", group)
        if rotate:
            req.add_text("rotate", "1")
        registry = obs.get_registry()
        try:
            resp = self.fed._request(owner, req)
        except (NetworkError, OverlayError, JxtaError):
            registry.incr("groupcast.epoch.pull_failed")
            return False
        if (resp.msg_type != FED_GROUP_EPOCH_OK
                or not self.fed.authorize(resp, owner, link=True)):
            registry.incr("groupcast.epoch.pull_failed")
            return False
        frame = wire.decode(resp)
        shard = self._shard(group)
        own_key = broker.keystore.keys.private
        for epoch_text, env in sorted(frame["secrets"].items(),
                                      key=lambda kv: int(kv[0])):
            epoch = int(epoch_text)
            if epoch in shard.secrets:
                continue
            try:
                secret = envelope.open_(own_key, env, aad=EPOCH_AAD)
            except (DecryptionError, ValueError, TypeError, KeyError):
                registry.incr("groupcast.epoch.bad_secret")
                continue
            if len(secret) != EPOCH_SECRET_LEN:
                registry.incr("groupcast.epoch.bad_secret")
                continue
            self._install_secret(shard, epoch, secret)
        registry.incr("groupcast.epoch.pull")
        return shard.ring.epoch > 0

    def ensure_keys(self, group: str) -> _Shard:
        """The shard, with epochs pulled from the owner when behind."""
        shard = self._shard(group)
        if not self._is_owner(group) and shard.ring.epoch == 0:
            self._pull_epochs(group)
        return shard

    def secrets_for(self, group: str, peer_id: str) -> dict[int, bytes]:
        """The epoch secrets ``peer_id`` is entitled to (join onward)."""
        shard = self.ensure_keys(group)
        floor = shard.entitled.get(peer_id, 0)
        return {epoch: secret for epoch, secret in sorted(shard.secrets.items())
                if epoch >= floor}

    # -- federation handlers (signed fed_* frames) -------------------------

    def fn_fed_epoch_req(self, message: Message, src: str) -> Message:
        """Serve (and on request mint) epoch secrets — shard owner only."""
        broker = self.broker
        registry = obs.get_registry()
        if not self.fed.authorize(message, src, link=True):
            registry.incr("groupcast.fed.unauthorized")
            return self.fed.seal(self._fail(FED_GROUP_EPOCH_FAIL,
                                            "unauthorized"))
        frame = wire.decode(message)
        group = frame["group"]
        if not self._is_owner(group):
            return self.fed.seal(self._fail(FED_GROUP_EPOCH_FAIL,
                                            "not the shard owner"))
        shard = self._shard(group)
        if frame.has("rotate") or shard.ring.epoch == 0:
            epoch = shard.ring.epoch + 1
            self._install_secret(shard, epoch, self.drbg.generate(EPOCH_SECRET_LEN))
            self._sync_group_meta(group, shard, None)
            self._announce(group, epoch, exclude=(src,))
        peer_key = getattr(self.fed, "peer_keys", {}).get(src)
        if peer_key is None:
            return self.fed.seal(self._fail(FED_GROUP_EPOCH_FAIL,
                                            "no verified key for requester"))
        policy = broker.policy
        sealed = {str(epoch): envelope.seal(
            peer_key, secret, drbg=self.drbg, suite=policy.envelope_suite,
            wrap=policy.envelope_wrap, aad=EPOCH_AAD)
            for epoch, secret in shard.secrets.items()}
        registry.incr("groupcast.epoch.serve")
        out = Message(FED_GROUP_EPOCH_OK)
        out.add_text("group", group)
        out.add_text("epoch", str(shard.ring.epoch))
        out.add_json("secrets", sealed)
        return self.fed.seal(out)

    def fn_fed_epoch(self, message: Message, src: str) -> None:
        """Rotation announcement: refresh eagerly if we host the group."""
        broker = self.broker
        if not self.fed.authorize(message, src):
            return None
        if not broker.policy.enable_group_cast:
            return None
        group = wire.decode(message)["group"]
        if broker.groups.get_or_none(group) is None:
            return None
        self._pull_epochs(group)
        return None

    def fn_fed_cast(self, message: Message, src: str) -> None:
        """A peer broker relayed a group frame: deliver to our shard."""
        broker = self.broker
        registry = obs.get_registry()
        if not self.fed.authorize(message, src):
            registry.incr("groupcast.fed.unauthorized")
            return None
        if not broker.policy.enable_group_cast:
            return None
        frame = wire.decode(message)
        group = frame["group"]
        registry.incr("groupcast.relay.received")
        shard = self._shards.get(group)
        if shard is None and broker.groups.get_or_none(group) is None:
            # No local members, no interest: drop without creating state.
            registry.incr("groupcast.relay.ignored")
            return None
        shard = self._shard(group)
        entry = self._store(shard, int(frame["epoch"]), frame["from_peer"],
                            frame["envelope"])
        self._deliver_local(group, shard, entry, exclude=frame["from_peer"])
        return None

    # -- client-facing handlers --------------------------------------------

    def fn_sub(self, message: Message, src: str) -> Message:
        """Register interest; replay the backlog past ``since``."""
        broker = self.broker
        broker.metrics.incr("fn.group_sub")
        if not broker.policy.enable_group_cast:
            return self._fail(GROUP_SUB_FAIL, "group cast is disabled",
                              code="disabled")
        session = broker._session_for_address(src)
        if session is None:
            return self._fail(GROUP_SUB_FAIL, "not logged in",
                              code="no_session")
        frame = wire.decode(message)
        group = frame["group"]
        record = broker.groups.get_or_none(group)
        if record is None or not record.has_member(session.peer_id):
            return self._fail(GROUP_SUB_FAIL,
                              f"not a member of {group!r}", code="not_member")
        shard = self.ensure_keys(group)
        shard.subscribers[session.peer_id] = src
        since = int(frame.get("since") or 0)
        replayed = self._replay(group, shard, session.peer_id, src, since)
        obs.get_registry().incr("groupcast.sub")
        out = Message(GROUP_SUB_OK)
        out.add_text("group", group)
        out.add_text("epoch", str(shard.ring.epoch))
        out.add_text("replayed", str(replayed))
        return out

    def fn_unsub(self, message: Message, src: str) -> Message:
        broker = self.broker
        broker.metrics.incr("fn.group_unsub")
        group = wire.decode(message)["group"]
        session = broker._session_for_address(src)
        if session is not None:
            shard = self._shards.get(group)
            if shard is not None:
                shard.subscribers.pop(session.peer_id, None)
        obs.get_registry().incr("groupcast.unsub")
        out = Message(GROUP_UNSUB_OK)
        out.add_text("group", group)
        return out

    def fn_cast(self, message: Message, src: str) -> Message:
        """The O(1) send: one frame in, local fan-out + federation relay."""
        broker = self.broker
        broker.metrics.incr("fn.group_cast")
        registry = obs.get_registry()
        if not broker.policy.enable_group_cast:
            return self._fail(GROUP_CAST_FAIL, "group cast is disabled",
                              code="disabled")
        session = broker._session_for_address(src)
        if session is None:
            return self._fail(GROUP_CAST_FAIL, "not logged in",
                              code="no_session")
        frame = wire.decode(message)
        group = frame["group"]
        record = broker.groups.get_or_none(group)
        if record is None or not record.has_member(session.peer_id):
            return self._fail(GROUP_CAST_FAIL,
                              f"not a member of {group!r}", code="not_member")
        epoch = int(frame["epoch"])
        shard = self.ensure_keys(group)
        if epoch < shard.ring.epoch:
            return self._fail(
                GROUP_CAST_FAIL,
                f"epoch {epoch} was rotated out (current {shard.ring.epoch})",
                code="stale_epoch")
        if epoch > shard.ring.epoch:
            self._pull_epochs(group)
        if epoch != shard.ring.epoch or epoch == 0:
            return self._fail(
                GROUP_CAST_FAIL,
                f"unknown epoch {epoch} (current {shard.ring.epoch})",
                code="unknown_epoch")
        entry = self._store(shard, epoch, session.peer_id, frame["envelope"])
        delivered = self._deliver_local(group, shard, entry,
                                        exclude=session.peer_id)
        relayed = self._relay(group, entry)
        registry.incr("groupcast.cast")
        out = Message(GROUP_CAST_OK)
        out.add_text("seq", str(entry.seq))
        out.add_text("delivered", str(delivered))
        out.add_text("relayed", str(relayed))
        return out

    # -- fan-out machinery -------------------------------------------------

    def _store(self, shard: _Shard, epoch: int, from_peer: str,
               env: dict) -> _Stored:
        """Stamp a local seq and retain the frame for replay (bounded)."""
        broker = self.broker
        shard.seq += 1
        entry = _Stored(seq=shard.seq, epoch=epoch, from_peer=from_peer,
                        env=env, at=broker.clock.now)
        depth = broker.policy.group_replay_depth
        if depth <= 0:
            return entry
        self._prune(shard)
        shard.backlog.append(entry)
        registry = obs.get_registry()
        while len(shard.backlog) > depth:
            shard.backlog.popleft()
            registry.incr("groupcast.store.evicted")
        return entry

    def _prune(self, shard: _Shard) -> None:
        horizon = self.broker.clock.now - self.broker.policy.group_replay_ttl
        registry = obs.get_registry()
        while shard.backlog and shard.backlog[0].at < horizon:
            shard.backlog.popleft()
            registry.incr("groupcast.store.expired")

    def _deliver_frame(self, group: str, entry: _Stored) -> Message:
        deliver = Message(GROUP_DELIVER)
        deliver.add_text("group", group)
        deliver.add_text("epoch", str(entry.epoch))
        deliver.add_text("seq", str(entry.seq))
        deliver.add_text("from_peer", entry.from_peer)
        deliver.add_json("envelope", entry.env)
        return deliver

    def _deliver_local(self, group: str, shard: _Shard, entry: _Stored,
                       exclude: str | None = None) -> int:
        """Push one frame to every local subscriber, inside one cork."""
        broker = self.broker
        if not shard.subscribers:
            return 0
        deliver = self._deliver_frame(group, entry)
        endpoint = broker.control.endpoint
        delivered = 0
        with endpoint.corked():
            for peer_id, address in list(shard.subscribers.items()):
                if peer_id == exclude:
                    continue
                if peer_id not in broker.connected:
                    del shard.subscribers[peer_id]
                    continue
                if endpoint.send(address, deliver):
                    delivered += 1
        if delivered:
            obs.get_registry().incr("groupcast.delivered", delivered)
        return delivered

    def _relay(self, group: str, entry: _Stored) -> int:
        """Fan the ciphertext out to every federated broker (sealed once)."""
        relay = Message(FED_GROUP_CAST)
        relay.add_text("group", group)
        relay.add_text("epoch", str(entry.epoch))
        relay.add_text("seq", str(entry.seq))
        relay.add_text("from_peer", entry.from_peer)
        relay.add_text("origin", self.broker.address)
        relay.add_json("envelope", entry.env)
        relayed = self.fed.broadcast(relay)
        if relayed:
            obs.get_registry().incr("groupcast.relayed", relayed)
        return relayed

    def _replay(self, group: str, shard: _Shard, peer_id: str, address: str,
                since: int) -> int:
        """Store-and-forward: resend what a re-subscriber missed."""
        if not shard.backlog:
            return 0
        self._prune(shard)
        floor = shard.entitled.get(peer_id, 0)
        endpoint = self.broker.control.endpoint
        replayed = 0
        with endpoint.corked():
            for entry in shard.backlog:
                if entry.seq <= since or entry.epoch < floor:
                    continue
                if entry.from_peer == peer_id:
                    continue
                if endpoint.send(address, self._deliver_frame(group, entry)):
                    replayed += 1
        if replayed:
            obs.get_registry().incr("groupcast.replayed", replayed)
        return replayed
