"""Hot-path optimization switches (the ablation surface of E-HOTPATH).

Five PRs each added a per-message layer — obs counters, fault/policy
wrappers, seal/resume crypto, consistent-hash routing, the ``repro.wire``
boundary — and the hot-path pass that measured their stacked cost landed
a set of targeted optimizations.  Every one of them is **behaviour
preserving** (same bytes on the wire, same accept/reject decisions, same
metric values) and individually switchable here, so the benchmark can
measure the legacy path against the optimized path *in the same
process* and tests can diff the two implementations against each other.

The switches:

* ``chacha_vector`` — the reformed ChaCha20 keystream: one combined
  keystream call per AEAD operation (Poly1305 OTK block fused into the
  batch) and the row-vectorized double-round (`repro.crypto.chacha20`).
* ``pipe_validation_memo`` — identity-keyed memoization of validated
  signed pipe advertisements in the secure client (revocation and
  validity windows still checked on every hit).
* ``wire_cache`` — serialized-bytes reuse on
  :class:`~repro.jxta.messages.Message`: ``to_wire`` memoizes its output
  and ``from_wire`` seeds the cache with the received buffer, both
  invalidated by any mutation.
* ``compiled_decoders`` — per-:class:`~repro.wire.schema.FrameSpec`
  precompiled decode closures used by the dispatch boundary instead of
  the per-field interpretive loop (the interpretive ``FrameSpec.decode``
  remains the reference the tests compare against).
* ``ring_memo`` — consistent-hash owner lookups memoized per key,
  invalidated whenever ring membership changes.
* ``interned_metrics`` — hot counters/histograms resolved once to
  instrument objects instead of going through a string-keyed dict
  lookup per increment.

``set_all(False)`` is the pre-optimization ("legacy") configuration;
``set_all(True)`` is the default.  Flags are plain module-global
attribute reads on the hot path — one load per check.
"""

from __future__ import annotations

from contextlib import contextmanager

#: Every switch name, in the order the bench ablation reports them.
FLAG_NAMES = (
    "chacha_vector",
    "pipe_validation_memo",
    "wire_cache",
    "compiled_decoders",
    "ring_memo",
    "interned_metrics",
)


class Flags:
    """The mutable switch set.  One process-global instance, ``FLAGS``."""

    __slots__ = FLAG_NAMES

    def __init__(self, enabled: bool = True) -> None:
        for name in FLAG_NAMES:
            setattr(self, name, enabled)

    def set_all(self, enabled: bool) -> "Flags":
        for name in FLAG_NAMES:
            setattr(self, name, enabled)
        return self

    def to_dict(self) -> dict[str, bool]:
        return {name: getattr(self, name) for name in FLAG_NAMES}

    def apply(self, **flags: bool) -> "Flags":
        for name, value in flags.items():
            if name not in FLAG_NAMES:
                raise ValueError(f"unknown perf flag {name!r}")
            setattr(self, name, value)
        return self


#: The process-global switch set consulted by the hot paths.
FLAGS = Flags(enabled=True)


def set_all(enabled: bool) -> Flags:
    """Flip every optimization on (default) or off (legacy path)."""
    return FLAGS.set_all(enabled)


@contextmanager
def flags(**overrides: bool):
    """Temporarily override switches (bench ablations, differential tests).

    ``with perf.flags(chacha_vector=False): ...`` — or ``all=False`` to
    start from the legacy configuration and then apply the rest.
    """
    saved = FLAGS.to_dict()
    try:
        base = overrides.pop("all", None)
        if base is not None:
            FLAGS.set_all(bool(base))
        FLAGS.apply(**overrides)
        yield FLAGS
    finally:
        FLAGS.apply(**saved)
