"""Active man-in-the-middle: frame tampering and substitution.

Complements the passive eavesdropper: interceptors that rewrite message
content in flight.  Against plain chat the victim receives the altered
text with no way to notice; against secureMsgPeer the envelope/signature
checks reject the tampered message.

Interceptors are pure frame functions, so they install on any
:class:`~repro.net.adversary.AdversarySurface` — the simulator or the
TCP transport — through :class:`TamperCampaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.net.adversary import Interceptor, adversary_surface
from repro.net.base import Frame


def byte_substitution(needle: bytes, replacement: bytes) -> Interceptor:
    """Replace ``needle`` with ``replacement`` in every frame payload."""

    def interceptor(frame: Frame) -> Frame:
        if needle in frame.payload:
            return replace(frame, payload=frame.payload.replace(needle, replacement))
        return frame

    return interceptor


def bit_flipper(dst_filter: str | None = None, position: int = -1) -> Interceptor:
    """Flip one bit of matching frames (integrity-check exerciser)."""

    def interceptor(frame: Frame) -> Frame:
        if dst_filter is not None and frame.dst != dst_filter:
            return frame
        payload = bytearray(frame.payload)
        if not payload:
            return frame
        payload[position] ^= 0x01
        return replace(frame, payload=bytes(payload))

    return interceptor


@dataclass
class DroppingInterceptor:
    """Drops frames matching a destination (availability attack)."""

    dst_filter: str
    dropped: list[Frame] = field(default_factory=list)

    def __call__(self, frame: Frame) -> Frame | None:
        if frame.dst == self.dst_filter:
            self.dropped.append(frame)
            return None
        return frame


class TamperCampaign:
    """Convenience wrapper: install interceptors, count effects, remove.

    Accepts whatever the attacker sits on — a
    :class:`~repro.sim.network.SimNetwork` or any transport backend.
    """

    def __init__(self, backend) -> None:
        self.surface = adversary_surface(backend)
        self._installed: list[Interceptor] = []

    def install(self, interceptor: Interceptor) -> Interceptor:
        self.surface.add_interceptor(interceptor)
        self._installed.append(interceptor)
        return interceptor

    def teardown(self) -> None:
        for interceptor in self._installed:
            self.surface.remove_interceptor(interceptor)
        self._installed.clear()

    def __enter__(self) -> "TamperCampaign":
        return self

    def __exit__(self, *exc: object) -> None:
        self.teardown()
