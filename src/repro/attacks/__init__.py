"""Adversary models for the §2.3 threat analysis.

Each module implements one of the paper's stated JXTA-Overlay
vulnerabilities as executable code, so the test suite can demonstrate
that (a) the plain primitives really are vulnerable and (b) the secure
primitives really close the hole.
"""

from repro.attacks.eavesdropper import Eavesdropper
from repro.attacks.fake_broker import FakeBroker, spoof_dns
from repro.attacks.forger import (
    forge_file_advertisement,
    forge_pipe_advertisement,
    forge_signed_advertisement,
    tamper_signed_advertisement,
)
from repro.attacks.mitm import (
    DroppingInterceptor,
    TamperCampaign,
    bit_flipper,
    byte_substitution,
)
from repro.attacks.replay import LoginReplayer

__all__ = [
    "Eavesdropper",
    "FakeBroker",
    "spoof_dns",
    "LoginReplayer",
    "forge_pipe_advertisement",
    "forge_file_advertisement",
    "forge_signed_advertisement",
    "tamper_signed_advertisement",
    "byte_substitution",
    "bit_flipper",
    "DroppingInterceptor",
    "TamperCampaign",
]
