"""Adversary models for the §2.3 threat analysis.

Each module implements one of the paper's stated JXTA-Overlay
vulnerabilities as executable code, so the test suite can demonstrate
that (a) the plain primitives really are vulnerable and (b) the secure
primitives really close the hole.

Every adversary runs on the :class:`~repro.net.base.Transport`
contract: taps and interceptors install through
:func:`repro.net.adversary.adversary_surface`, active endpoints ride
:class:`~repro.jxta.endpoint.Endpoint`, so the same attack code drives
the simulator and real TCP sockets identically
(``tests/attacks/test_transport_parity.py``).  The population-scale
adversaries (sybil flood, eclipse, frame storm) live in
:mod:`repro.scenario.adversaries` and compose with these through the
scenario engine.
"""

from repro.attacks.eavesdropper import Eavesdropper
from repro.attacks.fake_broker import FakeBroker, spoof_dns
from repro.attacks.forger import (
    forge_file_advertisement,
    forge_pipe_advertisement,
    forge_signed_advertisement,
    tamper_signed_advertisement,
)
from repro.attacks.mitm import (
    DroppingInterceptor,
    TamperCampaign,
    bit_flipper,
    byte_substitution,
)
from repro.attacks.replay import LoginReplayer

__all__ = [
    "Eavesdropper",
    "FakeBroker",
    "spoof_dns",
    "LoginReplayer",
    "forge_pipe_advertisement",
    "forge_file_advertisement",
    "forge_signed_advertisement",
    "tamper_signed_advertisement",
    "byte_substitution",
    "bit_flipper",
    "DroppingInterceptor",
    "TamperCampaign",
]
