"""Login replay attack (§4.2.2's motivation).

"Otherwise, an attacker can reuse any authentication attempt from other
client peers to impersonate them.  The attacker need not know the content
of the encrypted message to perform this kind of attack; it is enough
that it contains a valid username and password that will be accepted by
the broker."

The attacker records login frames off the wire (it *cannot* read them)
and replays them verbatim from its own address.  Against a hypothetical
sid-less secure login this would succeed; against the paper's protocol
the broker consumed the sid during the victim's login, so the replay is
rejected.

Capture and replay both run on the transport contract: the tap attaches
to any :class:`~repro.net.adversary.AdversarySurface` and the replays
go out through the backend's own ``request``, so the attack works
unchanged over the simulator and real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError, ReproError
from repro.jxta.messages import Message
from repro.net.adversary import adversary_surface
from repro.net.base import Frame


@dataclass
class LoginReplayer:
    """Tap that records login frames and can replay them later."""

    attacker_address: str
    captured: list[Frame] = field(default_factory=list)
    login_types: tuple[str, ...] = ("login_req", "secure_login_req")

    def observe(self, frame: Frame) -> None:
        try:
            msg = Message.from_wire(frame.payload)
        except ReproError:
            return
        if msg.msg_type in self.login_types:
            self.captured.append(frame)

    def attach(self, backend) -> "LoginReplayer":
        adversary_surface(backend).add_tap(self)
        return self

    def replay_all(self, backend) -> list[Message]:
        """Resend every captured login blob from the attacker's address.

        ``backend`` is whatever carries frames — a SimNetwork or any
        transport; both expose ``request(src, dst, payload)``.  Returns
        the broker's responses (the attacker's haul: a
        ``login_ok``/``secure_login_ok`` here would mean impersonation).
        """
        responses = []
        # snapshot: the tap is still attached, so the replays themselves
        # get captured — iterating the live list would never terminate
        for frame in list(self.captured):
            try:
                raw = backend.request(self.attacker_address, frame.dst,
                                      frame.payload)
            except NetworkError:
                continue
            try:
                responses.append(Message.from_wire(raw))
            except ReproError:
                continue
        return responses

    @staticmethod
    def successes(responses: list[Message]) -> list[Message]:
        return [r for r in responses if r.msg_type in ("login_ok", "secure_login_ok")]
