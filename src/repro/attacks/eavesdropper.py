"""Passive eavesdropper (§2.3 threat 1: "transmitted data may be easily
eavesdropped, since no data privacy is provided").

A transport tap that records every frame and scans the observed bytes
for plaintext strings.  Against the plain primitives it harvests
passwords and chat text; against the secure primitives it sees only
envelopes.

The tap installs on any :class:`~repro.net.adversary.AdversarySurface`:
hand :meth:`attach` a :class:`~repro.sim.network.SimNetwork`, a
:class:`~repro.net.sim.SimTransport` or a
:class:`~repro.net.tcp.TcpTransport` and the same eavesdropper observes
the same frames (``tests/attacks/test_transport_parity.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.adversary import adversary_surface
from repro.net.base import Frame


@dataclass
class Eavesdropper:
    """Records all traffic; offers plaintext-search helpers."""

    frames: list[Frame] = field(default_factory=list)

    def observe(self, frame: Frame) -> None:
        self.frames.append(frame)

    def attach(self, backend) -> "Eavesdropper":
        """Start observing ``backend`` (a network or any transport)."""
        adversary_surface(backend).add_tap(self)
        return self

    def detach(self, backend) -> None:
        adversary_surface(backend).remove_tap(self)

    # -- analysis -------------------------------------------------------------

    def saw_bytes(self, needle: bytes) -> bool:
        """Did the literal byte string cross the wire in the clear?"""
        return any(needle in f.payload for f in self.frames)

    def saw_text(self, needle: str) -> bool:
        return self.saw_bytes(needle.encode("utf-8"))

    def frames_between(self, src: str, dst: str) -> list[Frame]:
        return [f for f in self.frames if f.src == src and f.dst == dst]

    def harvest_credentials(self) -> list[tuple[str, str]]:
        """Scrape (username, password) pairs from observed login requests.

        Works exactly as a 2009 packet sniffer would: find login_req
        messages and read their clear-text elements.  Secure logins never
        match because the credentials are inside an envelope.
        """
        from repro.errors import ReproError
        from repro.jxta.messages import Message

        found = []
        for frame in self.frames:
            try:
                msg = Message.from_wire(frame.payload)
            except ReproError:
                continue
            if msg.msg_type == "login_req" and msg.has("username") and msg.has("password"):
                found.append((msg.get_text("username"), msg.get_text("password")))
        return found

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.frames)

    def __len__(self) -> int:
        return len(self.frames)
