"""Advertisement forgery (§2.3 threat 2).

"Any legitimate user may forge advertisements with no fear of reprisal.
No integrity or source authenticity is maintained.  Such advertisements
will be distributed and accepted by all group members."

The forger is itself a *legitimate* (authenticated) user — the threat is
insider misbehaviour, not network intrusion.  It crafts advertisements
claiming to be another peer, e.g. redirecting the victim's input pipe to
the forger's own address (message hijacking) or advertising a poisoned
file under the victim's identity.
"""

from __future__ import annotations

from repro.core.signed_advertisement import sign_advertisement
from repro.jxta.advertisements import FileAdvertisement, PipeAdvertisement
from repro.jxta.ids import JxtaID, parse_id, random_pipe_id
from repro.crypto.drbg import HmacDrbg
from repro.crypto.sha2 import sha256
from repro.xmllib import Element


def forge_pipe_advertisement(victim_peer_id: str, group: str,
                             attacker_address: str,
                             drbg: HmacDrbg) -> Element:
    """A pipe advertisement that hijacks the victim's messages.

    Anyone resolving the victim's pipe from this forgery will deliver
    their (plain) messages to the attacker's endpoint instead.
    """
    adv = PipeAdvertisement(
        peer_id=parse_id(victim_peer_id, "peer"),
        pipe_id=random_pipe_id(drbg),
        group=group,
        address=attacker_address)
    return adv.to_element()


def forge_file_advertisement(victim_peer_id: str, group: str,
                             file_name: str, poisoned_content: bytes) -> Element:
    """A file offer published under the victim's identity."""
    adv = FileAdvertisement(
        peer_id=parse_id(victim_peer_id, "peer"),
        file_name=file_name,
        size=len(poisoned_content),
        sha256_hex=sha256(poisoned_content).hex(),
        group=group)
    return adv.to_element()


def forge_signed_advertisement(victim_peer_id: str, group: str,
                               attacker_address: str,
                               attacker_keystore, drbg: HmacDrbg) -> Element:
    """The attacker's best try against the *secure* scheme: sign the
    forged advertisement with its own (legitimately credentialed) key.

    Validation still fails: the advertisement's PeerId is the victim's
    CBID, which can never match the attacker credential's subject — the
    CBID binding is exactly what makes the id unforgeable.
    """
    element = forge_pipe_advertisement(victim_peer_id, group,
                                       attacker_address, drbg)
    sign_advertisement(element, attacker_keystore.keys.private,
                       attacker_keystore.chain, drbg=drbg)
    return element


def tamper_signed_advertisement(element: Element, new_address: str) -> Element:
    """Modify a field of a legitimately signed advertisement in transit."""
    copy = element.deep_copy()
    target = copy.find("Address")
    if target is None:
        target = copy.add("Address")
    target.text = new_address
    return copy
