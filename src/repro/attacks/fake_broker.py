"""Fake broker / DNS-spoofing attack (§2.3 threat 3).

"Client peers never check the broker legitimacy before authenticating.
There is no guarantee that a broker is a legitimate one even in the case
of well-known identifiers, since traffic may be redirected to a fake one
via methods such as DNS spoofing."

Two pieces:

* :class:`FakeBroker` — a malicious endpoint that answers the broker
  protocol and harvests whatever credentials clients send it.  Against
  plain ``login`` it captures the password; against ``secureConnection``
  it can only present a credential the administrator never signed (or a
  stolen-but-keyless legitimate credential), which clients reject.
* :func:`spoof_dns` — an interceptor that redirects traffic aimed at the
  real broker to the fake one, modelling cache poisoning.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import secure_connection as sc
from repro.core.credentials import Credential, self_signed_credential
from repro.core.keystore import Keystore
from repro.crypto.drbg import HmacDrbg
from repro.jxta.endpoint import Endpoint
from repro.jxta.messages import Message
from repro.net.adversary import Interceptor
from repro.net.base import Frame


class FakeBroker:
    """Impersonates a broker; records every credential clients leak.

    ``network`` is any endpoint backend — a
    :class:`~repro.sim.network.SimNetwork` or a transport; the fake
    broker is an ordinary endpoint and needs no simulator internals.
    """

    def __init__(self, network, address: str, drbg: HmacDrbg,
                 name: str = "totally-legit-broker",
                 stolen_credential: Credential | None = None) -> None:
        self.endpoint = Endpoint(network, address)
        self.drbg = drbg
        self.name = name
        #: harvested (username, password) pairs from plain logins
        self.harvested: list[tuple[str, str]] = []
        #: secure login envelopes we received but cannot open
        self.opaque_blobs: list[dict] = []
        # The fake broker's own key + self-signed "credential" — the best
        # forgery possible without SK_Adm.
        self.keystore = Keystore.generate(1024, drbg.fork(b"fake-keys"))
        forged = self_signed_credential(
            self.keystore.keys.private, self.keystore.keys.public,
            name=name, not_before=0.0, not_after=1e12,
            drbg=drbg.fork(b"forge"))
        self.keystore.install_anchor(forged)
        if stolen_credential is not None:
            # An attacker does not respect keystore invariants: it presents
            # a credential for a key it does not hold.
            self.keystore.chain = [stolen_credential]
        else:
            self.keystore.install_chain([forged])
        self.endpoint.on("connect_req", self._fn_connect)
        self.endpoint.on("login_req", self._fn_login)
        self.endpoint.on(sc.CONNECT_REQ, self._fn_secure_connect)
        self.endpoint.on("secure_login_req", self._fn_secure_login)

    # -- plain protocol: the attack that WORKS -----------------------------

    def _fn_connect(self, message: Message, src: str) -> Message:
        out = Message("connect_ok")
        out.add_text("broker_id", "urn:jxta:uuid-" + "00" * 16)
        out.add_text("broker_name", self.name)
        return out

    def _fn_login(self, message: Message, src: str) -> Message:
        # Harvest, then accept so the victim suspects nothing.
        self.harvested.append(
            (message.get_text("username"), message.get_text("password")))
        out = Message("login_ok")
        out.add_json("groups", [])
        out.add_text("peer_id", "urn:jxta:uuid-" + "00" * 16)
        return out

    # -- secure protocol: the attack that FAILS ------------------------------

    def _fn_secure_connect(self, message: Message, src: str) -> Message:
        """Answer with our forged/stolen chain.  With a forged chain the
        admin signature check fails; with a stolen legitimate credential
        the challenge signature cannot verify (we lack SK_Br)."""
        chall = message.get_bytes("chall")
        return sc.build_connect_response(
            chall, sid="ffff" * 16, broker_key=self.keystore.keys.private,
            broker_chain=self.keystore.chain,
            scheme="rsa-pss-sha256", drbg=self.drbg)

    def _fn_secure_login(self, message: Message, src: str) -> Message:
        # All we can do is hoard ciphertext we cannot decrypt.
        self.opaque_blobs.append(message.get_json("envelope"))
        out = Message("secure_login_fail")
        out.add_text("reason", "try again later")
        return out


def spoof_dns(real_broker: str, fake_broker: str) -> Interceptor:
    """An interceptor redirecting ``real_broker``-bound frames to the fake.

    Models DNS cache poisoning: the client *believes* it is talking to the
    well-known broker address.
    """

    def interceptor(frame: Frame) -> Frame | None:
        if frame.dst == real_broker:
            return replace(frame, dst=fake_broker)
        return frame

    return interceptor
