"""Byte-string helpers: integer codecs, XOR, constant-time comparison.

These are the primitive operations the from-scratch crypto layer is built
on.  They are deliberately tiny and heavily tested.
"""

from __future__ import annotations

import hmac as _hmac


def i2b(n: int) -> bytes:
    """Encode a non-negative integer as a minimal-length big-endian string.

    ``i2b(0)`` returns ``b"\\x00"`` (one byte), matching the PKCS#1 I2OSP
    convention of never returning the empty string for a valid integer.
    """
    if n < 0:
        raise ValueError("i2b requires a non-negative integer")
    length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def i2b_fixed(n: int, length: int) -> bytes:
    """Encode ``n`` big-endian into exactly ``length`` bytes (I2OSP).

    Raises :class:`OverflowError` if ``n`` does not fit.
    """
    if n < 0:
        raise ValueError("i2b_fixed requires a non-negative integer")
    return n.to_bytes(length, "big")


def b2i(data: bytes) -> int:
    """Decode a big-endian byte string into an integer (OS2IP)."""
    return int.from_bytes(data, "big")


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Implemented over big integers: CPython's int XOR runs in C, making
    this ~30x faster than a per-byte generator for the block-sized inputs
    the crypto layer feeds it.
    """
    n = len(a)
    if n != len(b):
        raise ValueError(f"xor_bytes length mismatch: {n} != {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe equality for MACs, password digests and padding checks.

    Delegates to :func:`hmac.compare_digest`, which is the constant-time
    primitive the CPython runtime provides; a pure-Python re-implementation
    could not actually guarantee constant time under the interpreter.
    """
    return _hmac.compare_digest(a, b)
