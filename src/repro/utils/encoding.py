"""Base64 / hex helpers.

JXTA encodes binary payloads inside XML documents using Base64 (RFC 3548,
ref [14] of the paper).  We wrap the stdlib codec so every call site uses
``str`` on the XML side and ``bytes`` on the crypto side, with consistent
error reporting.
"""

from __future__ import annotations

import base64
import binascii

from repro.errors import EncodingError


def b64encode(data: bytes) -> str:
    """Encode bytes as standard Base64 text (no line wrapping)."""
    return base64.b64encode(data).decode("ascii")


def b64decode(text: str) -> bytes:
    """Decode Base64 text, raising :class:`EncodingError` on bad input."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
        raise EncodingError(f"invalid base64 payload: {exc}") from exc


def to_hex(data: bytes) -> str:
    """Encode bytes as lowercase hex text."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Decode hex text, raising :class:`EncodingError` on bad input."""
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise EncodingError(f"invalid hex payload: {exc}") from exc
