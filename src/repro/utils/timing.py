"""Wall-clock measurement helpers for the benchmark harness.

:class:`TimingSample` is a thin veneer over
:class:`repro.obs.metrics.Histogram` — mean/median/stdev/percentiles all
come from the shared histogram engine instead of a second copy of the
statistics math (which lived here before ``repro.obs`` existed).
"""

from __future__ import annotations

import time

from repro.obs.metrics import Histogram


class Stopwatch:
    """Accumulating stopwatch over ``time.perf_counter``.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class TimingSample:
    """A set of repeated wall-clock measurements of one operation."""

    def __init__(self, label: str, times: list[float] | None = None) -> None:
        self.label = label
        self._hist = Histogram(name=label)
        for value in times or ():
            self._hist.observe(value)

    @property
    def histogram(self) -> Histogram:
        """The backing histogram (exposes percentiles, summary(), ...)."""
        return self._hist

    @property
    def times(self) -> list[float]:
        return list(self._hist.samples)

    def add(self, seconds: float) -> None:
        self._hist.observe(seconds)

    @property
    def mean(self) -> float:
        return self._hist.mean

    @property
    def median(self) -> float:
        return self._hist.percentile(50.0)

    @property
    def stdev(self) -> float:
        return self._hist.stdev

    @property
    def best(self) -> float:
        return self._hist.min_value

    @property
    def p95(self) -> float:
        return self._hist.p95

    def __len__(self) -> int:
        return self._hist.count


def measure(func, repeat: int = 5, label: str = "") -> TimingSample:
    """Call ``func()`` ``repeat`` times and collect per-call wall time."""
    sample = TimingSample(label=label or getattr(func, "__name__", "op"))
    for _ in range(repeat):
        t0 = time.perf_counter()
        func()
        sample.add(time.perf_counter() - t0)
    return sample
