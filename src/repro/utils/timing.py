"""Wall-clock measurement helpers for the benchmark harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field


class Stopwatch:
    """Accumulating stopwatch over ``time.perf_counter``.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class TimingSample:
    """A set of repeated wall-clock measurements of one operation."""

    label: str
    times: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.times.append(seconds)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times) if self.times else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.times) if self.times else 0.0

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    @property
    def best(self) -> float:
        return min(self.times) if self.times else 0.0

    def __len__(self) -> int:
        return len(self.times)


def measure(func, repeat: int = 5, label: str = "") -> TimingSample:
    """Call ``func()`` ``repeat`` times and collect per-call wall time."""
    sample = TimingSample(label=label or getattr(func, "__name__", "op"))
    for _ in range(repeat):
        t0 = time.perf_counter()
        func()
        sample.add(time.perf_counter() - t0)
    return sample
