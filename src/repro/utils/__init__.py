"""Small shared utilities used by every other subpackage."""

from repro.utils.bytesutil import (
    b2i,
    constant_time_eq,
    i2b,
    i2b_fixed,
    xor_bytes,
)
from repro.utils.encoding import b64decode, b64encode, from_hex, to_hex
from repro.utils.timing import Stopwatch

__all__ = [
    "b2i",
    "i2b",
    "i2b_fixed",
    "xor_bytes",
    "constant_time_eq",
    "b64encode",
    "b64decode",
    "to_hex",
    "from_hex",
    "Stopwatch",
]
