"""repro — a from-scratch reproduction of "A Security-aware Approach to
JXTA-Overlay Primitives" (Arnedo-Moreno, Matsuo, Barolli, Xhafa; ICPP
Workshops 2009).

Layers, bottom-up:

* :mod:`repro.crypto`   — RSA/PKCS#1, AES, ChaCha20-Poly1305, SHA-256,
  HMAC, HMAC-DRBG, hybrid envelopes (all from scratch; oracles in tests)
* :mod:`repro.xmllib`   — element tree, parser, serializer, C14N
* :mod:`repro.dsig`     — XMLdsig enveloped signatures
* :mod:`repro.sim`      — virtual clock, scheduler, link-modeled network
* :mod:`repro.jxta`     — JXTA core: ids/CBIDs, advertisements, pipes,
  discovery, TLS/CBJX transport baselines
* :mod:`repro.overlay`  — JXTA-Overlay middleware (Client/Broker/Control)
* :mod:`repro.core`     — the paper's contribution: secureConnection,
  secureLogin, signed advertisements, secureMsgPeer(+Group), and the §6
  further-work extensions
* :mod:`repro.attacks`  — executable §2.3 threat models
* :mod:`repro.bench`    — the §5 evaluation (E1, E2/Figure 2) + ablations

Quickstart: see ``examples/quickstart.py`` or the README.
"""

__version__ = "1.0.0"

from repro.core import Administrator, SecureBroker, SecureClientPeer, SecurityPolicy
from repro.overlay import Broker, ClientPeer, UserDatabase
from repro.scenario import BuiltScenario, Scenario
from repro.sim import SimNetwork, VirtualClock

__all__ = [
    "__version__",
    "Administrator",
    "SecureBroker",
    "SecureClientPeer",
    "SecurityPolicy",
    "Broker",
    "ClientPeer",
    "UserDatabase",
    "SimNetwork",
    "VirtualClock",
    "Scenario",
    "BuiltScenario",
]
