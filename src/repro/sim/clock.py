"""Virtual time.

The simulator measures two kinds of time:

* **network time** — modeled analytically from link latency/bandwidth and
  advanced explicitly by the network layer;
* **CPU time** — *measured* from the real crypto work the entities perform
  (this package really signs/encrypts everything) and folded into virtual
  time through a configurable ``cpu_scale`` factor.

``cpu_scale`` is how we impersonate the paper's 1.20 GHz Pentium M: a
scale > 1 makes our CPU look proportionally slower.  Benchmarks report
*relative* overheads, which are insensitive to the scale; the scale only
matters for where the crossover with network latency lands (Figure 2),
and is an explicit experiment parameter.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class VirtualClock:
    """A monotonically advancing virtual clock."""

    def __init__(self, cpu_scale: float = 1.0) -> None:
        if cpu_scale < 0:
            raise ValueError("cpu_scale must be non-negative")
        self._now = 0.0
        self.cpu_scale = cpu_scale
        #: cumulative virtual seconds attributed to CPU work
        self.cpu_time = 0.0
        #: cumulative virtual seconds attributed to network transit
        self.network_time = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance virtual time (network / scheduled waits)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_network(self, seconds: float) -> float:
        self.network_time += seconds
        return self.advance(seconds)

    def charge_cpu(self, seconds: float) -> float:
        """Account ``seconds`` of (already scaled) CPU work."""
        scaled = seconds * self.cpu_scale
        self.cpu_time += scaled
        return self.advance(scaled)

    @contextmanager
    def cpu_section(self) -> Iterator[None]:
        """Measure the real time spent in the block and charge it as CPU.

        All protocol entities wrap their cryptographic work in this context
        manager, so virtual protocol timings automatically reflect the true
        relative cost of the operations performed.
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.charge_cpu(time.perf_counter() - t0)

    def reset(self) -> None:
        self._now = 0.0
        self.cpu_time = 0.0
        self.network_time = 0.0
