"""Composable, deterministic fault injection for :class:`SimNetwork`.

The paper evaluates the secure primitives on a lossless in-process path;
real JXTA-Overlay deployments live on lossy, partition-prone networks.
This module turns the simulator's existing adversary hook — the
interceptor protocol from :mod:`repro.sim.network`, the same one the
attack drivers in :mod:`repro.attacks` use — into a fault-injection
surface:

* :class:`FrameLoss` — probabilistic drops;
* :class:`LatencyJitter` — extra per-frame transit delay;
* :class:`DuplicateDelivery` — at-least-once delivery artefacts;
* :class:`LinkOutage` — a src/dst pair goes dark for a window;
* :class:`Partition` — two address groups cannot reach each other until
  a scheduled heal time;
* :class:`BrokerCrash` — an endpoint drops everything during an outage
  window and runs a restart callback (e.g. ``broker.restart()``) when it
  comes back, modelling loss of in-memory session state.

A :class:`FaultPlan` composes any number of faults and installs them as
**one** interceptor.  Every probabilistic fault draws from its own DRBG
stream forked from the plan seed, so a given (plan, seed) pair replays
the exact same fault schedule regardless of what else draws randomness —
the property ``tests/sim/test_faults.py`` locks in.

Injections are counted as ``faults.<fault>.injected`` in the metrics
registry (documented in ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro import obs
from repro.sim.network import Frame, SimNetwork
from repro.sim.rng import SimRandom


class Fault:
    """One composable fault.  Subclasses override :meth:`apply`.

    ``apply`` sees every frame (both legs of a ``request`` included) and
    returns the frame to keep delivering or ``None`` to drop it, exactly
    like a raw interceptor — plus it may call back into the injector for
    side effects (extra latency, duplicate delivery).
    """

    #: short name used for RNG stream labels and metrics
    name = "fault"

    def bind(self, injector: "FaultInjector", index: int) -> None:
        self.injector = injector
        self.rng = injector.rng.stream(f"fault.{index}.{self.name}")

    def apply(self, frame: Frame) -> Frame | None:
        raise NotImplementedError

    def _injected(self) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.incr(f"faults.{self.name}.injected")


class FrameLoss(Fault):
    """Drop each matching frame with probability ``rate``."""

    name = "loss"

    def __init__(self, rate: float,
                 match: Callable[[Frame], bool] | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self.rate = rate
        self.match = match

    def apply(self, frame: Frame) -> Frame | None:
        if self.match is not None and not self.match(frame):
            return frame
        if self.rng.uniform() < self.rate:
            self._injected()
            return None
        return frame


class LatencyJitter(Fault):
    """Add uniform extra transit delay in ``[min_s, max_s]`` per frame."""

    name = "jitter"

    def __init__(self, min_s: float = 0.0, max_s: float = 0.05) -> None:
        if min_s < 0 or max_s < min_s:
            raise ValueError("need 0 <= min_s <= max_s")
        self.min_s = min_s
        self.max_s = max_s

    def apply(self, frame: Frame) -> Frame | None:
        extra = self.min_s + (self.max_s - self.min_s) * self.rng.uniform()
        if extra > 0:
            self._injected()
            self.injector.network.clock.advance_network(extra)
        return frame


class DuplicateDelivery(Fault):
    """Deliver an extra copy of the frame with probability ``rate``.

    The duplicate goes straight to the destination handler without
    re-entering the adversary chain — the wire delivered the same bytes
    twice, it did not re-send them.  This is the at-least-once artefact
    the replay defences (nonce cache, one-shot ``sid``) must absorb.
    """

    name = "duplicate"

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        self.rate = rate

    def apply(self, frame: Frame) -> Frame | None:
        if self.rng.uniform() < self.rate:
            self._injected()
            self.injector.deliver_copy(frame)
        return frame


class _Window(Fault):
    """Shared machinery for time-windowed outages."""

    def __init__(self, start: float, heal_at: float) -> None:
        if heal_at < start:
            raise ValueError("heal_at must not precede start")
        self.start = start
        self.heal_at = heal_at

    def active(self) -> bool:
        return self.start <= self.injector.network.clock.now < self.heal_at

    def covers(self, frame: Frame) -> bool:
        raise NotImplementedError

    def apply(self, frame: Frame) -> Frame | None:
        if self.active() and self.covers(frame):
            self._injected()
            return None
        return frame


class LinkOutage(_Window):
    """One src/dst pair (both directions) is dark during the window."""

    name = "link_outage"

    def __init__(self, a: str, b: str, start: float, heal_at: float) -> None:
        super().__init__(start, heal_at)
        self.pair = frozenset((a, b))

    def covers(self, frame: Frame) -> bool:
        return frozenset((frame.src, frame.dst)) == self.pair


class Partition(_Window):
    """Frames crossing between two address groups are dropped."""

    name = "partition"

    def __init__(self, group_a: Iterable[str], group_b: Iterable[str],
                 start: float, heal_at: float) -> None:
        super().__init__(start, heal_at)
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)

    def covers(self, frame: Frame) -> bool:
        return ((frame.src in self.group_a and frame.dst in self.group_b)
                or (frame.src in self.group_b and frame.dst in self.group_a))


class BrokerCrash(_Window):
    """An endpoint is down for a window, then restarts with empty RAM.

    While ``now`` is inside ``[at, restart_at)`` every frame to or from
    ``address`` is dropped.  The first frame processed at or after
    ``restart_at`` first runs ``on_restart`` (once) — wire it to
    :meth:`repro.overlay.broker.Broker.restart` so in-memory session
    state (and the secure broker's ``sid`` store) is wiped exactly the
    way a real crash wipes it.
    """

    name = "broker_crash"

    def __init__(self, address: str, at: float, restart_at: float,
                 on_restart: Callable[[], None] | None = None) -> None:
        super().__init__(at, restart_at)
        self.address = address
        self.on_restart = on_restart
        self._restarted = False

    def covers(self, frame: Frame) -> bool:
        return self.address in (frame.src, frame.dst)

    def apply(self, frame: Frame) -> Frame | None:
        now = self.injector.network.clock.now
        if (not self._restarted and now >= self.heal_at
                and self.on_restart is not None):
            self._restarted = True
            self.on_restart()
        return super().apply(frame)


class FaultInjector:
    """The single interceptor a :class:`FaultPlan` installs."""

    def __init__(self, network: SimNetwork, faults: tuple[Fault, ...],
                 seed: bytes | str = b"repro-faults") -> None:
        self.network = network
        self.faults = faults
        self.rng = SimRandom(seed)
        for index, fault in enumerate(faults):
            fault.bind(self, index)

    def __call__(self, frame: Frame) -> Frame | None:
        out: Frame | None = frame
        for fault in self.faults:
            out = fault.apply(out)
            if out is None:
                return None
        return out

    def deliver_copy(self, frame: Frame) -> None:
        """Hand a duplicate straight to the destination handler."""
        handler = self.network._handlers.get(frame.dst)
        if handler is not None:
            handler(frame)

    def uninstall(self) -> None:
        self.network.remove_interceptor(self)


class FaultPlan:
    """An ordered composition of faults, installable on a network."""

    def __init__(self, *faults: Fault) -> None:
        self.faults = faults

    def install(self, network: SimNetwork,
                seed: bytes | str = b"repro-faults") -> FaultInjector:
        injector = FaultInjector(network, self.faults, seed)
        network.add_interceptor(injector)
        return injector
