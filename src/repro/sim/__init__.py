"""Discrete-event network simulation substrate.

Replaces the paper's physical testbed (1.2 GHz Pentium M hosts on a LAN):
virtual clock + link models give the network time, while the *real*
cryptographic work performed by the entities is measured and folded in as
CPU time (see :class:`repro.sim.clock.VirtualClock`).
"""

from repro.sim.clock import VirtualClock
from repro.sim.faults import (
    BrokerCrash,
    DuplicateDelivery,
    Fault,
    FaultInjector,
    FaultPlan,
    FrameLoss,
    LatencyJitter,
    LinkOutage,
    Partition,
)
from repro.sim.latency import CAMPUS, LAN_2009, LOOPBACK, PROFILES, WAN_ADSL, LinkModel
from repro.sim.metrics import Metrics
from repro.sim.network import Frame, NetworkStats, SimNetwork
from repro.sim.rng import SimRandom
from repro.sim.scheduler import EventHandle, Scheduler

__all__ = [
    "VirtualClock",
    "Scheduler",
    "EventHandle",
    "SimNetwork",
    "Frame",
    "NetworkStats",
    "LinkModel",
    "LAN_2009",
    "LOOPBACK",
    "WAN_ADSL",
    "CAMPUS",
    "PROFILES",
    "SimRandom",
    "Metrics",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "FrameLoss",
    "LatencyJitter",
    "DuplicateDelivery",
    "LinkOutage",
    "Partition",
    "BrokerCrash",
]
