"""Deterministic randomness for the simulation layer.

A single seeded root DRBG is forked per concern (network jitter, workload
generation, each peer's crypto) so that adding a draw in one place never
perturbs the stream of another — the classic reproducibility discipline
for discrete-event simulation.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg


class SimRandom:
    """A labelled tree of deterministic generators."""

    def __init__(self, seed: bytes | str = b"repro-sim") -> None:
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._root = HmacDrbg(seed=seed, personalization=b"sim-root")
        self._children: dict[str, HmacDrbg] = {}

    def stream(self, label: str) -> HmacDrbg:
        """The generator for ``label`` (created on first use).

        Streams are derived from the root in label order of first request;
        to guarantee determinism across runs, request streams in a stable
        order (entities do this at construction time).
        """
        if label not in self._children:
            self._children[label] = self._root.fork(label.encode("utf-8"))
        return self._children[label]

    def uniform(self, label: str = "uniform") -> float:
        return self.stream(label).uniform()
