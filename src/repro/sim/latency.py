"""Link models: how long a message of N bytes takes to cross a link.

Figure 2 of the paper depends on this interplay: per-message crypto cost
is (nearly) size-independent while transmission time grows linearly, so
relative overhead falls with message size.  The default profile models the
100 Mbit/s switched LAN of a 2009 laboratory testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class LinkModel:
    """Latency + bandwidth + optional jitter/loss link abstraction.

    * ``latency_s``   — one-way propagation + switching delay (seconds)
    * ``bandwidth_bps`` — bits per second; 0 means infinite
    * ``jitter_s``    — maximum uniform extra delay (needs a jitter draw)
    * ``loss``        — probability a message is dropped (needs a draw)
    * ``per_message_s`` — fixed per-message processing overhead (OS stack)
    """

    latency_s: float = 0.0005
    bandwidth_bps: float = 100e6
    jitter_s: float = 0.0
    loss: float = 0.0
    per_message_s: float = 0.0

    def transit_time(self, n_bytes: int, jitter_draw: Callable[[], float] | None = None) -> float:
        """One-way transit time for a message of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("message size cannot be negative")
        t = self.latency_s + self.per_message_s
        if self.bandwidth_bps > 0:
            t += (8.0 * n_bytes) / self.bandwidth_bps
        if self.jitter_s > 0 and jitter_draw is not None:
            t += self.jitter_s * jitter_draw()
        return t

    def is_lost(self, uniform_draw: Callable[[], float]) -> bool:
        return self.loss > 0 and uniform_draw() < self.loss


#: A 2009-style switched laboratory LAN.
LAN_2009 = LinkModel(latency_s=0.0005, bandwidth_bps=100e6)

#: Same-host loopback: effectively free transport, used to isolate CPU cost.
LOOPBACK = LinkModel(latency_s=0.00001, bandwidth_bps=10e9)

#: Broadband WAN path between residential peers (ADSL-era upstream).
WAN_ADSL = LinkModel(latency_s=0.030, bandwidth_bps=1e6, jitter_s=0.005)

#: Campus network with moderate latency.
CAMPUS = LinkModel(latency_s=0.002, bandwidth_bps=10e6)

PROFILES = {
    "lan2009": LAN_2009,
    "loopback": LOOPBACK,
    "wan-adsl": WAN_ADSL,
    "campus": CAMPUS,
}
