"""A minimal discrete-event scheduler over the virtual clock.

Used for the periodic behaviours of JXTA-Overlay (presence heartbeats,
advertisement rebroadcast, credential expiry sweeps).  The point-to-point
primitives themselves run synchronously through the network layer, which
keeps protocol code linear; the scheduler drives everything that happens
"in the background" between primitive invocations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.when


class Scheduler:
    """Priority-queue discrete-event loop."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._queue: list[_Event] = []
        self._counter = itertools.count()

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at ``clock.now + delay``."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        event = _Event(self.clock.now + delay, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_periodic(self, interval: float, action: Callable[[], None],
                          jitter: Callable[[], float] | None = None) -> EventHandle:
        """Run ``action`` every ``interval`` virtual seconds until cancelled.

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole series.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        state_handle: list[EventHandle] = []

        def fire() -> None:
            action()
            delay = interval + (jitter() if jitter else 0.0)
            nxt = self.schedule(max(delay, 0.0), fire)
            # Propagate cancellation through the chain.
            state_handle[0]._event = nxt._event

        first = self.schedule(interval + (jitter() if jitter else 0.0), fire)
        state_handle.append(first)
        return first

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def run_until(self, deadline: float) -> int:
        """Execute events with ``when <= deadline``; returns count executed.

        The clock is advanced to each event time and finally to the
        deadline itself.
        """
        executed = 0
        while self._queue and self._queue[0].when <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when > self.clock.now:
                self.clock.advance(event.when - self.clock.now)
            event.action()
            executed += 1
        if deadline > self.clock.now:
            self.clock.advance(deadline - self.clock.now)
        return executed

    def run_for(self, duration: float) -> int:
        """Execute events for the next ``duration`` virtual seconds."""
        return self.run_until(self.clock.now + duration)

    def run_until_idle(self, max_events: int = 100_000) -> int:
        """Drain the queue completely (guarding against runaway chains)."""
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise SimulationError(f"scheduler exceeded {max_events} events")
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when > self.clock.now:
                self.clock.advance(event.when - self.clock.now)
            event.action()
            executed += 1
        return executed
