"""The simulated network: addressed endpoints, taps, and interceptors.

Entities register a handler under an address.  Two delivery styles exist:

* :meth:`SimNetwork.send` — one-way datagram (used by advertisement
  broadcast and pipe messages),
* :meth:`SimNetwork.request` — synchronous round trip (used by the
  connect/login exchanges, which are request/response shaped in
  JXTA-Overlay).

Both styles move **serialized bytes**, never Python object references —
so anything an eavesdropper tap observes is exactly what a real wire
would carry, and an interceptor can only mount the attacks a real
man-in-the-middle could (replay, modify, redirect, drop).

Security-evaluation hooks:

* **taps** observe every frame (passive eavesdropper, §2.3 threat 1);
* **interceptors** may rewrite/redirect/drop frames (fake broker via DNS
  spoofing, §2.3 threat 3, and message tampering, threat 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro import obs
from repro.errors import NetworkError
from repro.net import adversary
from repro.net.base import Frame
from repro.sim.clock import VirtualClock
from repro.sim.latency import LAN_2009, LinkModel

__all__ = ["Frame", "Handler", "Interceptor", "NetworkStats", "SimNetwork", "Tap"]


class Tap(Protocol):
    """Passive observer of all frames (an eavesdropper)."""

    def observe(self, frame: Frame) -> None: ...


#: An interceptor sees a frame and returns a (possibly different) frame to
#: deliver, or ``None`` to drop it.  The returned frame's ``dst`` may be
#: rewritten, which models DNS-spoofing style redirection.
Interceptor = Callable[[Frame], Frame | None]

#: Handler signature: receives the frame, returns optional response bytes.
Handler = Callable[[Frame], bytes | None]


#: Per-frame instruments, resolved once instead of per record() call.
_M_FRAMES_SENT = obs.InternedCounter("net.frames_sent")
_M_BYTES_SENT = obs.InternedCounter("net.bytes_sent")
_M_FRAME_BYTES = obs.InternedHistogram("net.frame_bytes")
_M_FRAMES_DELIVERED = obs.InternedCounter("net.frames_delivered")
_M_FRAMES_DROPPED = obs.InternedCounter("net.frames_dropped")


@dataclass
class NetworkStats:
    """Aggregate traffic counters (feeds the benchmark reports)."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped: int = 0
    bytes_sent: int = 0
    per_dst_bytes: dict[str, int] = field(default_factory=dict)

    def record(self, frame: Frame, delivered: bool) -> None:
        self.frames_sent += 1
        self.bytes_sent += frame.size
        if delivered:
            self.frames_delivered += 1
            self.per_dst_bytes[frame.dst] = self.per_dst_bytes.get(frame.dst, 0) + frame.size
        else:
            self.frames_dropped += 1
        registry = obs.get_registry()
        if registry.enabled:
            _M_FRAMES_SENT.incr()
            _M_BYTES_SENT.incr(frame.size)
            _M_FRAME_BYTES.observe(frame.size)
            if delivered:
                _M_FRAMES_DELIVERED.incr()
            else:
                _M_FRAMES_DROPPED.incr()
                obs.emit("on_frame_dropped", src=frame.src, dst=frame.dst,
                         n_bytes=frame.size)


class SimNetwork:
    """A star network: every pair of endpoints shares one link model."""

    def __init__(self, clock: VirtualClock | None = None,
                 link: LinkModel = LAN_2009,
                 jitter_draw: Callable[[], float] | None = None,
                 loss_draw: Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.default_link = link
        self._links: dict[tuple[str, str], LinkModel] = {}
        self._handlers: dict[str, Handler] = {}
        self._taps: list[Tap] = []
        self._interceptors: list[Interceptor] = []
        self._jitter_draw = jitter_draw
        self._loss_draw = loss_draw
        self.stats = NetworkStats()
        #: nesting depth of in-flight send/request calls (drain boundary)
        self._op_depth = 0
        self._draining = False
        self._flush_hooks: list[Callable[[], None]] = []

    # -- topology -----------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach an endpoint; raises if the address is taken."""
        if address in self._handlers:
            raise NetworkError(f"address {address!r} is already registered")
        self._handlers[address] = handler
        obs.get_registry().set_gauge("net.endpoints", len(self._handlers))

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)
        obs.get_registry().set_gauge("net.endpoints", len(self._handlers))

    def is_registered(self, address: str) -> bool:
        return address in self._handlers

    def set_link(self, src: str, dst: str, link: LinkModel,
                 symmetric: bool = True) -> None:
        """Override the link model for a specific pair."""
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link_for(self, src: str, dst: str) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    # -- adversary hooks ------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    # -- link-scheduler drain boundary ----------------------------------------

    @property
    def op_depth(self) -> int:
        """How many send/request calls are on the stack right now.

        Depth > 0 means delivery is happening *inside* a handler of an
        outer operation — the window in which a link scheduler may
        coalesce frames without changing observable ordering, because
        the drain below runs before the outermost call returns.
        """
        return self._op_depth

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever the outermost network op completes.

        Link schedulers register their drain here: every queued frame
        is shipped before test or application code regains control, so
        batching never changes when a frame is observable — only how
        many wire units carried it.
        """
        if hook not in self._flush_hooks:
            self._flush_hooks.append(hook)

    def remove_flush_hook(self, hook: Callable[[], None]) -> None:
        if hook in self._flush_hooks:
            self._flush_hooks.remove(hook)

    def _drain_flushes(self) -> None:
        if self._draining or not self._flush_hooks:
            return
        self._draining = True
        try:
            for hook in list(self._flush_hooks):
                hook()
        finally:
            self._draining = False

    # -- delivery -------------------------------------------------------------

    def _through_adversaries(self, frame: Frame) -> Frame | None:
        return adversary.run_chain(self._taps, self._interceptors, frame)

    def _transit(self, frame: Frame) -> bool:
        """Model the link crossing; returns False when the frame is lost."""
        link = self.link_for(frame.src, frame.dst)
        if self._loss_draw is not None and link.is_lost(self._loss_draw):
            return False
        self.clock.advance_network(link.transit_time(frame.size, self._jitter_draw))
        return True

    def send(self, src: str, dst: str, payload: bytes) -> bool:
        """One-way delivery.  Returns ``True`` if the frame was delivered.

        Raises :class:`NetworkError` only for an unknown *original*
        destination; adversarial drops and link loss return ``False`` —
        datagrams are best-effort, exactly like JXTA pipe messages.
        """
        if dst not in self._handlers:
            raise NetworkError(f"no endpoint registered at {dst!r}")
        self._op_depth += 1
        try:
            frame = Frame(src=src, dst=dst, payload=bytes(payload), sent_at=self.clock.now)
            out = self._through_adversaries(frame)
            if out is None or out.dst not in self._handlers:
                self.stats.record(frame, delivered=False)
                return False
            if not self._transit(out):
                self.stats.record(out, delivered=False)
                return False
            self.stats.record(out, delivered=True)
            self._handlers[out.dst](out)
            return True
        finally:
            self._op_depth -= 1
            if self._op_depth == 0:
                self._drain_flushes()

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        """Round-trip exchange; returns the responder's bytes.

        The handler's real CPU time is charged to the virtual clock via
        :meth:`VirtualClock.cpu_section`.  Raises :class:`NetworkError`
        when the request or the response is dropped or unanswered.
        """
        if dst not in self._handlers:
            raise NetworkError(f"no endpoint registered at {dst!r}")
        self._op_depth += 1
        try:
            frame = Frame(src=src, dst=dst, payload=bytes(payload), sent_at=self.clock.now)
            out = self._through_adversaries(frame)
            if out is None or out.dst not in self._handlers:
                self.stats.record(frame, delivered=False)
                raise NetworkError(f"request from {src!r} to {dst!r} was dropped")
            if not self._transit(out):
                self.stats.record(out, delivered=False)
                raise NetworkError(f"request from {src!r} to {dst!r} was lost in transit")
            self.stats.record(out, delivered=True)
            with self.clock.cpu_section():
                response = self._handlers[out.dst](out)
            if response is None:
                raise NetworkError(f"endpoint {out.dst!r} did not answer the request")
            back = Frame(src=out.dst, dst=src, payload=bytes(response), sent_at=self.clock.now)
            back_out = self._through_adversaries(back)
            if back_out is None:
                self.stats.record(back, delivered=False)
                raise NetworkError(f"response from {out.dst!r} to {src!r} was dropped")
            if not self._transit(back_out):
                self.stats.record(back_out, delivered=False)
                raise NetworkError(f"response from {out.dst!r} to {src!r} was lost in transit")
            self.stats.record(back_out, delivered=True)
            return back_out.payload
        finally:
            self._op_depth -= 1
            if self._op_depth == 0:
                self._drain_flushes()
