"""Lightweight metric registry used by entities and the bench harness."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Named counters and duration accumulators."""

    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    durations: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))

    def incr(self, name: str, by: int = 1) -> None:
        self.counters[name] += by

    def observe(self, name: str, seconds: float) -> None:
        self.durations[name].append(seconds)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def total(self, name: str) -> float:
        return sum(self.durations.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.durations.get(name, ())
        return sum(values) / len(values) if values else 0.0

    def merge(self, other: "Metrics") -> None:
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, vs in other.durations.items():
            self.durations[k].extend(vs)

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {k: float(v) for k, v in self.counters.items()}
        for k in self.durations:
            out[f"{k}.total_s"] = self.total(k)
            out[f"{k}.mean_s"] = self.mean(k)
        return out
