"""Number-theoretic primitives backing the RSA implementation.

Everything here is deterministic given the caller-supplied random source,
which keeps RSA key generation reproducible in tests and benchmarks.
"""

from __future__ import annotations

from typing import Callable

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227,
    229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389,
    397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541,
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def is_probable_prime(n: int, rand_below: Callable[[int], int], rounds: int = 40) -> bool:
    """Miller-Rabin probabilistic primality test.

    ``rand_below(k)`` must return a uniform integer in ``[0, k)``.  With 40
    rounds the error probability is below 2^-80, which is standard practice
    for RSA prime generation.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rand_below(n - 3)  # uniform in [2, n-2]
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rand_bits: Callable[[int], int],
                   rand_below: Callable[[int], int]) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    ``rand_bits(k)`` must return a uniform k-bit-bounded integer in
    ``[0, 2^k)``.  The top two bits are forced to 1 so products of two such
    primes have exactly ``2*bits`` bits (the usual RSA convention), and the
    low bit is forced to 1 so the candidate is odd.
    """
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rand_bits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rand_below):
            return candidate


def crt_combine(mp: int, mq: int, p: int, q: int, q_inv: int) -> int:
    """Garner's CRT recombination used by the RSA private operation.

    Given ``mp = m mod p`` and ``mq = m mod q``, recovers ``m mod p*q``.
    """
    h = (q_inv * (mp - mq)) % p
    return mq + h * q


def lcm(a: int, b: int) -> int:
    """Least common multiple (used for the Carmichael function of n)."""
    from math import gcd

    return a // gcd(a, b) * b
