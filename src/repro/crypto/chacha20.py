"""ChaCha20 stream cipher (RFC 8439) with vectorized fast paths.

The scalar implementation follows the RFC block function literally and
is the reference.  Two numpy formulations exist on top of it:

* ``_keystream_numpy`` — the original lane-per-block layout: a
  ``(16, n_blocks)`` uint32 array, one quarter-round call per QR of the
  round schedule (8 per double round).  Kept as the legacy path
  (``perf.FLAGS.chacha_vector`` off) and as a differential reference.
* ``_keystream_rows`` — the row formulation: state held as a
  ``(4, 4, n_blocks)`` array so the four column quarter-rounds of each
  round collapse into **one** vectorized quarter-round over ``(4, n)``
  rows (diagonal rounds roll rows into column position and back).
  Four times fewer Python-level numpy calls per round, with explicit
  ``out=`` scratch to avoid temporaries — measured ~2x the legacy numpy
  path at any size.

Even so, numpy's fixed per-call overhead makes the scalar path cheaper
below :data:`SCALAR_MAX_BLOCKS` blocks (the E-HOTPATH stage bench
measures the crossover); ``keystream``/``chacha20_xor`` dispatch on
that.  The test suite checks all paths against the RFC 8439 vectors and
against each other.
"""

from __future__ import annotations

import struct

import numpy as np

from repro import perf

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"

#: Messages of at most this many 64-byte blocks take the scalar path —
#: numpy's fixed per-call overhead dominates below the crossover (the
#: E-HOTPATH ``crypto.keystream`` stage timings are the evidence).
SCALAR_MAX_BLOCKS = 8

#: The legacy dispatch threshold (blocks at which the old numpy path
#: engaged), preserved for ``perf.FLAGS.chacha_vector = False``.
_LEGACY_NUMPY_MIN_BLOCKS = 4


def _quarter(state: list[int], a: int, b: int, c: int, d: int) -> None:
    x = state
    x[a] = (x[a] + x[b]) & _MASK32
    x[d] ^= x[a]
    x[d] = ((x[d] << 16) | (x[d] >> 16)) & _MASK32
    x[c] = (x[c] + x[d]) & _MASK32
    x[b] ^= x[c]
    x[b] = ((x[b] << 12) | (x[b] >> 20)) & _MASK32
    x[a] = (x[a] + x[b]) & _MASK32
    x[d] ^= x[a]
    x[d] = ((x[d] << 8) | (x[d] >> 24)) & _MASK32
    x[c] = (x[c] + x[d]) & _MASK32
    x[b] ^= x[c]
    x[b] = ((x[b] << 7) | (x[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """The RFC 8439 block function: 64 bytes of keystream."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    init = list(_CONSTANTS) + list(struct.unpack("<8I", key)) \
        + [counter & _MASK32] + list(struct.unpack("<3I", nonce))
    state = list(init)
    for _ in range(10):
        _quarter(state, 0, 4, 8, 12)
        _quarter(state, 1, 5, 9, 13)
        _quarter(state, 2, 6, 10, 14)
        _quarter(state, 3, 7, 11, 15)
        _quarter(state, 0, 5, 10, 15)
        _quarter(state, 1, 6, 11, 12)
        _quarter(state, 2, 7, 8, 13)
        _quarter(state, 3, 4, 9, 14)
    out = [(s + i) & _MASK32 for s, i in zip(state, init)]
    return struct.pack("<16I", *out)


def _np_quarter(x: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """Quarter round over a (16, n_blocks) uint32 array, in place."""
    x[a] += x[b]
    x[d] ^= x[a]
    x[d] = (x[d] << np.uint32(16)) | (x[d] >> np.uint32(16))
    x[c] += x[d]
    x[b] ^= x[c]
    x[b] = (x[b] << np.uint32(12)) | (x[b] >> np.uint32(20))
    x[a] += x[b]
    x[d] ^= x[a]
    x[d] = (x[d] << np.uint32(8)) | (x[d] >> np.uint32(24))
    x[c] += x[d]
    x[b] ^= x[c]
    x[b] = (x[b] << np.uint32(7)) | (x[b] >> np.uint32(25))


def _keystream_numpy(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Legacy lane-per-block keystream (one QR call per schedule entry)."""
    init = np.empty((16, n_blocks), dtype=np.uint32)
    init[0:4] = np.array(_CONSTANTS, dtype=np.uint32)[:, None]
    init[4:12] = np.frombuffer(key, dtype="<u4").astype(np.uint32)[:, None]
    counters = (np.arange(n_blocks, dtype=np.uint64) + np.uint64(counter)) & np.uint64(_MASK32)
    init[12] = counters.astype(np.uint32)
    init[13:16] = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)[:, None]
    x = init.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            _np_quarter(x, 0, 4, 8, 12)
            _np_quarter(x, 1, 5, 9, 13)
            _np_quarter(x, 2, 6, 10, 14)
            _np_quarter(x, 3, 7, 11, 15)
            _np_quarter(x, 0, 5, 10, 15)
            _np_quarter(x, 1, 6, 11, 12)
            _np_quarter(x, 2, 7, 8, 13)
            _np_quarter(x, 3, 4, 9, 14)
        x += init
    # Column-major lanes -> per-block 64-byte chunks, little-endian words.
    return x.T.astype("<u4").tobytes()


def _qr_rows(a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray,
             t: np.ndarray) -> None:
    """One quarter round over four (4, n_blocks) rows at once, in place.

    ``t`` is caller-provided scratch of the same shape; the rotations are
    expressed with ``out=`` so the round allocates nothing.
    """
    a += b
    d ^= a
    np.left_shift(d, 16, out=t)
    np.right_shift(d, 16, out=d)
    np.bitwise_or(d, t, out=d)
    c += d
    b ^= c
    np.left_shift(b, 12, out=t)
    np.right_shift(b, 20, out=b)
    np.bitwise_or(b, t, out=b)
    a += b
    d ^= a
    np.left_shift(d, 8, out=t)
    np.right_shift(d, 24, out=d)
    np.bitwise_or(d, t, out=d)
    c += d
    b ^= c
    np.left_shift(b, 7, out=t)
    np.right_shift(b, 25, out=b)
    np.bitwise_or(b, t, out=b)


def _keystream_rows(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Row-formulation keystream: the state as a (4, 4, n_blocks) array.

    Rows are the four words each quarter-round touches; a column round is
    a single vectorized quarter-round, a diagonal round rolls rows 1-3
    into column position and back.
    """
    init = np.empty((4, 4, n_blocks), dtype=np.uint32)
    init[0] = np.array(_CONSTANTS, dtype=np.uint32)[:, None]
    init[1:3] = np.frombuffer(key, dtype="<u4").reshape(2, 4, 1)
    counters = (np.arange(n_blocks, dtype=np.uint64) + np.uint64(counter)) & np.uint64(_MASK32)
    init[3, 0] = counters.astype(np.uint32)
    init[3, 1:4] = np.frombuffer(nonce, dtype="<u4")[:, None]
    x = init.copy()
    t = np.empty((4, n_blocks), dtype=np.uint32)
    r0, r1, r2, r3 = x[0], x[1], x[2], x[3]
    with np.errstate(over="ignore"):
        for _ in range(10):
            _qr_rows(r0, r1, r2, r3, t)
            x[1] = np.roll(r1, -1, axis=0)
            x[2] = np.roll(r2, -2, axis=0)
            x[3] = np.roll(r3, -3, axis=0)
            _qr_rows(r0, r1, r2, r3, t)
            x[1] = np.roll(r1, 1, axis=0)
            x[2] = np.roll(r2, 2, axis=0)
            x[3] = np.roll(r3, 3, axis=0)
        x += init
    return x.reshape(16, n_blocks).T.astype("<u4").tobytes()


def keystream(key: bytes, counter: int, nonce: bytes, n_blocks: int,
              use_numpy: bool | None = None) -> bytes:
    """``n_blocks`` consecutive 64-byte keystream blocks from ``counter``.

    Dispatches scalar vs vectorized on the measured crossover; the AEAD
    layer uses this to fuse the Poly1305 one-time-key block and the
    message keystream into a single call.
    """
    if use_numpy is None:
        use_numpy = n_blocks > SCALAR_MAX_BLOCKS
    if use_numpy:
        if perf.FLAGS.chacha_vector:
            return _keystream_rows(key, counter, nonce, n_blocks)
        return _keystream_numpy(key, counter, nonce, n_blocks)
    return b"".join(
        chacha20_block(key, counter + i, nonce) for i in range(n_blocks)
    )


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1,
                 use_numpy: bool | None = None) -> bytes:
    """Encrypt/decrypt ``data`` (XOR with keystream starting at ``counter``).

    ``use_numpy=None`` picks the path by block count: the optimized
    dispatch crosses over at :data:`SCALAR_MAX_BLOCKS`; the legacy
    configuration (``perf.FLAGS.chacha_vector`` off) keeps the original
    4-block threshold and the lane-per-block implementation.
    """
    if not data:
        return b""
    n_blocks = (len(data) + 63) // 64
    if use_numpy is None:
        if perf.FLAGS.chacha_vector:
            use_numpy = n_blocks > SCALAR_MAX_BLOCKS
        else:
            use_numpy = n_blocks >= _LEGACY_NUMPY_MIN_BLOCKS
    stream = keystream(key, counter, nonce, n_blocks, use_numpy=use_numpy)
    buf = np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(
        stream[: len(data)], dtype=np.uint8
    )
    return buf.tobytes()
