"""ChaCha20 stream cipher (RFC 8439) with a numpy-vectorized fast path.

The scalar implementation follows the RFC block function literally and is
the reference; ``chacha20_xor`` dispatches to a numpy implementation that
evaluates the 20 rounds over *all* blocks of the message simultaneously
(arrays of uint32, one lane per block), which is an order of magnitude
faster in pure Python for multi-kilobyte messages.  The test suite checks
both paths against the RFC 8439 vectors and against each other.
"""

from __future__ import annotations

import struct

import numpy as np

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _quarter(state: list[int], a: int, b: int, c: int, d: int) -> None:
    x = state
    x[a] = (x[a] + x[b]) & _MASK32
    x[d] ^= x[a]
    x[d] = ((x[d] << 16) | (x[d] >> 16)) & _MASK32
    x[c] = (x[c] + x[d]) & _MASK32
    x[b] ^= x[c]
    x[b] = ((x[b] << 12) | (x[b] >> 20)) & _MASK32
    x[a] = (x[a] + x[b]) & _MASK32
    x[d] ^= x[a]
    x[d] = ((x[d] << 8) | (x[d] >> 24)) & _MASK32
    x[c] = (x[c] + x[d]) & _MASK32
    x[b] ^= x[c]
    x[b] = ((x[b] << 7) | (x[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """The RFC 8439 block function: 64 bytes of keystream."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    init = list(_CONSTANTS) + list(struct.unpack("<8I", key)) \
        + [counter & _MASK32] + list(struct.unpack("<3I", nonce))
    state = list(init)
    for _ in range(10):
        _quarter(state, 0, 4, 8, 12)
        _quarter(state, 1, 5, 9, 13)
        _quarter(state, 2, 6, 10, 14)
        _quarter(state, 3, 7, 11, 15)
        _quarter(state, 0, 5, 10, 15)
        _quarter(state, 1, 6, 11, 12)
        _quarter(state, 2, 7, 8, 13)
        _quarter(state, 3, 4, 9, 14)
    out = [(s + i) & _MASK32 for s, i in zip(state, init)]
    return struct.pack("<16I", *out)


def _np_quarter(x: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """Quarter round over a (16, n_blocks) uint32 array, in place."""
    x[a] += x[b]
    x[d] ^= x[a]
    x[d] = (x[d] << np.uint32(16)) | (x[d] >> np.uint32(16))
    x[c] += x[d]
    x[b] ^= x[c]
    x[b] = (x[b] << np.uint32(12)) | (x[b] >> np.uint32(20))
    x[a] += x[b]
    x[d] ^= x[a]
    x[d] = (x[d] << np.uint32(8)) | (x[d] >> np.uint32(24))
    x[c] += x[d]
    x[b] ^= x[c]
    x[b] = (x[b] << np.uint32(7)) | (x[b] >> np.uint32(25))


def _keystream_numpy(key: bytes, counter: int, nonce: bytes, n_blocks: int) -> bytes:
    """Keystream for ``n_blocks`` consecutive blocks, all lanes at once."""
    init = np.empty((16, n_blocks), dtype=np.uint32)
    init[0:4] = np.array(_CONSTANTS, dtype=np.uint32)[:, None]
    init[4:12] = np.frombuffer(key, dtype="<u4").astype(np.uint32)[:, None]
    counters = (np.arange(n_blocks, dtype=np.uint64) + np.uint64(counter)) & np.uint64(_MASK32)
    init[12] = counters.astype(np.uint32)
    init[13:16] = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)[:, None]
    x = init.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            _np_quarter(x, 0, 4, 8, 12)
            _np_quarter(x, 1, 5, 9, 13)
            _np_quarter(x, 2, 6, 10, 14)
            _np_quarter(x, 3, 7, 11, 15)
            _np_quarter(x, 0, 5, 10, 15)
            _np_quarter(x, 1, 6, 11, 12)
            _np_quarter(x, 2, 7, 8, 13)
            _np_quarter(x, 3, 4, 9, 14)
        x += init
    # Column-major lanes -> per-block 64-byte chunks, little-endian words.
    return x.T.astype("<u4").tobytes()


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 1,
                 use_numpy: bool | None = None) -> bytes:
    """Encrypt/decrypt ``data`` (XOR with keystream starting at ``counter``).

    ``use_numpy=None`` picks the vectorized path for messages of 4 blocks
    or more, where the numpy fixed overhead is amortized.
    """
    if not data:
        return b""
    n_blocks = (len(data) + 63) // 64
    if use_numpy is None:
        use_numpy = n_blocks >= 4
    if use_numpy:
        stream = _keystream_numpy(key, counter, nonce, n_blocks)
    else:
        stream = b"".join(
            chacha20_block(key, counter + i, nonce) for i in range(n_blocks)
        )
    buf = np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(
        stream[: len(data)], dtype=np.uint8
    )
    return buf.tobytes()
