"""Poly1305 one-time authenticator (RFC 8439 section 2.5).

Python's arbitrary-precision integers make the radix-2^130 arithmetic
direct: accumulate 16-byte chunks (with the 2^128 high bit) into the
polynomial evaluated at the clamped key ``r`` modulo 2^130-5, then add
``s`` modulo 2^128.
"""

from __future__ import annotations

_P = (1 << 130) - 5
_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag.  ``key`` is the 32-byte (r || s)."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _CLAMP
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for i in range(0, len(message), 16):
        chunk = message[i:i + 16]
        n = int.from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        acc = ((acc + n) * r) % _P
    acc = (acc + s) & ((1 << 128) - 1)
    return acc.to_bytes(16, "little")
