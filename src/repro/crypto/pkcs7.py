"""PKCS#7 block padding (RFC 5652 section 6.3)."""

from __future__ import annotations

from repro.errors import InvalidPaddingError


def pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding; always adds at least one byte."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    n = block_size - (len(data) % block_size)
    return data + bytes([n]) * n


def unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise InvalidPaddingError("padded data length is not a multiple of the block size")
    n = data[-1]
    if n < 1 or n > block_size:
        raise InvalidPaddingError("padding byte out of range")
    if data[-n:] != bytes([n]) * n:
        raise InvalidPaddingError("inconsistent padding bytes")
    return data[:-n]
