"""HMAC (RFC 2104, ref [13] of the paper) over our SHA-256.

Used by the TLS-style baseline transport for record integrity and by the
HMAC-DRBG deterministic random generator.

Two paths, both tested against :mod:`hmac`/:mod:`hashlib`:

* :class:`HMAC` — streaming, built on the pure-Python :class:`SHA256`;
* :func:`hmac_sha256` — one-shot, expressed as two one-shot hashes so it
  rides whatever backend :func:`repro.crypto.sha2.sha256` selects (this
  is the hot path: the DRBG calls it for every random draw).
"""

from __future__ import annotations

from repro.crypto.sha2 import SHA256, sha256
from repro.utils.bytesutil import constant_time_eq, xor_bytes

_BLOCK = 64
_OPAD = b"\x5c" * _BLOCK
_IPAD = b"\x36" * _BLOCK


def _normalize_key(key: bytes) -> bytes:
    if len(key) > _BLOCK:
        key = sha256(key)
    return key.ljust(_BLOCK, b"\x00")


class HMAC:
    """Streaming HMAC-SHA256 (pure-Python reference path)."""

    digest_size = 32

    def __init__(self, key: bytes, data: bytes = b"") -> None:
        key = _normalize_key(key)
        self._okey = xor_bytes(key, _OPAD)
        self._inner = SHA256(xor_bytes(key, _IPAD))
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        self._inner.update(data)

    def copy(self) -> "HMAC":
        clone = self.__class__.__new__(self.__class__)
        clone._okey = self._okey
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        return SHA256(self._okey + self._inner.digest()).digest()

    def hexdigest(self) -> str:
        return self.digest().hex()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA256 (backend-accelerated)."""
    key = _normalize_key(key)
    return sha256(xor_bytes(key, _OPAD) + sha256(xor_bytes(key, _IPAD) + data))


def verify_hmac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time HMAC verification."""
    return constant_time_eq(hmac_sha256(key, data), tag)
