"""Block-cipher modes of operation: CBC and CTR over :class:`~repro.crypto.aes.AES`.

CBC (with PKCS#7) is the mode the paper's Java/JCE era stack would have
used for the wrapped-key envelope; CTR is provided because it needs no
padding and parallelizes, which the ablation benchmarks exploit.
"""

from __future__ import annotations

import struct

from repro.crypto import pkcs7
from repro.crypto.aes import AES
from repro.errors import DecryptionError
from repro.utils.bytesutil import xor_bytes


class CBC:
    """AES-CBC with PKCS#7 padding.  One-shot API: whole message in, out."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("CBC IV must be 16 bytes")
        data = pkcs7.pad(plaintext, 16)
        out = bytearray()
        prev = iv
        enc = self._aes.encrypt_block
        for i in range(0, len(data), 16):
            block = enc(xor_bytes(data[i:i + 16], prev))
            out += block
            prev = block
        return bytes(out)

    def decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("CBC IV must be 16 bytes")
        if not ciphertext or len(ciphertext) % 16 != 0:
            raise DecryptionError("CBC ciphertext length must be a positive multiple of 16")
        out = bytearray()
        prev = iv
        dec = self._aes.decrypt_block
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i:i + 16]
            out += xor_bytes(dec(block), prev)
            prev = block
        return pkcs7.unpad(bytes(out), 16)


class CTR:
    """AES-CTR with a 12-byte nonce and 32-bit big-endian block counter."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def _keystream(self, nonce: bytes, n_bytes: int, initial_counter: int = 0) -> bytes:
        if len(nonce) != 12:
            raise ValueError("CTR nonce must be 12 bytes")
        out = bytearray()
        enc = self._aes.encrypt_block
        counter = initial_counter
        while len(out) < n_bytes:
            out += enc(nonce + struct.pack(">I", counter))
            counter = (counter + 1) & 0xFFFFFFFF
        return bytes(out[:n_bytes])

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        return xor_bytes(plaintext, self._keystream(nonce, len(plaintext)))

    # CTR is an involution.
    decrypt = encrypt
