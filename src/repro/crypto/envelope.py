"""The hybrid "wrapped key encryption scheme" E_PKi(x) of the paper.

The paper's notation section defines ``E_PKi(x)`` as encryption of an
arbitrary-length string under peer *i*'s public key "by means of a wrapped
key encryption scheme (such as the one defined in [19] = PKCS#1)".  This is
the classic hybrid envelope:

1. draw a fresh symmetric content-encryption key (CEK),
2. encrypt the payload under the CEK with a symmetric cipher,
3. wrap the CEK under the recipient's RSA public key.

Two symmetric suites are supported, selectable per envelope (ablation A2):

* ``chacha20poly1305`` — authenticated, numpy-accelerated (default),
* ``aes128-cbc`` / ``aes256-cbc`` — the paper-era JCE-style suite.

The envelope is a self-describing dict so it can be embedded in XML or
JSON messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro import obs
from repro.crypto import aead, pkcs1
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.modes import CBC
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import DecryptionError
from repro.utils.encoding import b64decode, b64encode

#: suite name -> (CEK length, needs IV/nonce length)
SUITES: dict[str, tuple[int, int]] = {
    "chacha20poly1305": (32, 12),
    "aes128-cbc": (16, 16),
    "aes256-cbc": (32, 16),
}

DEFAULT_SUITE = "chacha20poly1305"

#: RSA key-wrap algorithm names (ablation: OAEP default, v1.5 era-faithful).
WRAP_OAEP = "rsa-oaep"
WRAP_V15 = "rsa-pkcs1v15"

#: length of the per-recipient resumption seed a resumable envelope wraps
#: alongside the CEK (see :mod:`repro.crypto.resume`)
RESUME_SEED_LEN = 16


def _wrap(pub: PublicKey, blob: bytes, wrap: str, rng: HmacDrbg,
          aad: bytes) -> bytes:
    if wrap == WRAP_OAEP:
        return pkcs1.encrypt_oaep(pub, blob, drbg=rng, label=aad)
    if wrap == WRAP_V15:
        return pkcs1.encrypt_v15(pub, blob, drbg=rng)
    raise ValueError(f"unknown key wrap algorithm {wrap!r}")


def _unwrap(priv: PrivateKey, wrapped: bytes, wrap: str, aad: bytes) -> bytes:
    if wrap == WRAP_OAEP:
        return pkcs1.decrypt_oaep(priv, wrapped, label=aad)
    if wrap == WRAP_V15:
        return pkcs1.decrypt_v15(priv, wrapped)
    raise DecryptionError(f"unknown key wrap algorithm {wrap!r}")


def seal(pub: PublicKey, plaintext: bytes, drbg: HmacDrbg | None = None,
         suite: str = DEFAULT_SUITE, wrap: str = WRAP_OAEP,
         aad: bytes = b"") -> dict[str, Any]:
    """Encrypt ``plaintext`` for the holder of ``pub``.

    Returns the envelope as a dict with base64 fields:
    ``{suite, wrap, wrapped_key, nonce, body}``.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown envelope suite {suite!r}")
    registry = obs.get_registry()
    if registry.enabled:
        registry.incr("crypto.envelope.seal")
        registry.observe("crypto.envelope.plaintext_bytes", len(plaintext))
    rng = drbg if drbg is not None else system_drbg()
    key_len, nonce_len = SUITES[suite]
    cek = rng.generate(key_len)
    nonce = rng.generate(nonce_len)
    if suite == "chacha20poly1305":
        body = aead.seal(cek, nonce, plaintext, aad=aad)
    else:
        # CBC is unauthenticated; fold the AAD into the wrapped blob instead
        # so tampering with it still breaks unwrapping deterministically.
        body = CBC(cek).encrypt(plaintext, nonce)
    wrapped = _wrap(pub, cek, wrap, rng, aad)
    return {
        "suite": suite,
        "wrap": wrap,
        "wrapped_key": b64encode(wrapped),
        "nonce": b64encode(nonce),
        "body": b64encode(body),
    }


@dataclass(frozen=True)
class MultiSeal:
    """Result of :func:`seal_many`.

    ``seeds`` maps recipient key fingerprints (hex) to the resumption
    seed wrapped for that recipient (empty unless ``seeds`` were given).
    The sender feeds them to a :class:`repro.crypto.resume.SenderResumeCache`.
    """

    envelope: dict[str, Any]
    seeds: dict[str, bytes]


def mint_seeds(pubs: Iterable[PublicKey],
               drbg: HmacDrbg | None = None) -> dict[str, bytes]:
    """Fresh per-recipient resumption seeds, keyed by key fingerprint.

    Minted *before* sealing so the caller can commit to them inside the
    signed document (see :func:`repro.crypto.resume.add_seed_commitments`)
    — a seed a receiver cannot match against a signed commitment must
    never root a session.
    """
    rng = drbg if drbg is not None else system_drbg()
    return {pub.fingerprint().hex(): rng.generate(RESUME_SEED_LEN)
            for pub in pubs}


def seal_many(pubs: Iterable[PublicKey], plaintext: bytes,
              drbg: HmacDrbg | None = None, suite: str = DEFAULT_SUITE,
              wrap: str = WRAP_OAEP, aad: bytes = b"",
              seeds: dict[str, bytes] | None = None) -> MultiSeal:
    """Encrypt ``plaintext`` once for N recipients: one symmetric pass
    under a single CEK, one RSA key-wrap per recipient.

    The envelope replaces ``wrapped_key`` with ``wrapped_keys``, a map of
    recipient key fingerprint (hex) -> base64 wrap of either the CEK or,
    when ``seeds`` holds an entry for that fingerprint, ``CEK || seed``
    (the blob length is self-describing).  Seeds come from
    :func:`mint_seeds`; the caller is responsible for signing a
    commitment to them — the envelope alone cannot authenticate them,
    since anyone holding the CEK can re-wrap a blob of their choosing.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown envelope suite {suite!r}")
    pubs = list(pubs)
    if not pubs:
        raise ValueError("seal_many needs at least one recipient")
    registry = obs.get_registry()
    if registry.enabled:
        registry.incr("crypto.envelope.seal_many")
        registry.observe("crypto.envelope.recipients", len(pubs))
        registry.observe("crypto.envelope.plaintext_bytes", len(plaintext))
    rng = drbg if drbg is not None else system_drbg()
    key_len, nonce_len = SUITES[suite]
    cek = rng.generate(key_len)
    nonce = rng.generate(nonce_len)
    if suite == "chacha20poly1305":
        body = aead.seal(cek, nonce, plaintext, aad=aad)
    else:
        body = CBC(cek).encrypt(plaintext, nonce)
    seeds = dict(seeds) if seeds else {}
    wrapped_keys: dict[str, str] = {}
    for pub in pubs:
        fp = pub.fingerprint().hex()
        blob = cek
        if seeds:
            seed = seeds.get(fp)
            if seed is None or len(seed) != RESUME_SEED_LEN:
                raise ValueError(f"no valid resumption seed for recipient {fp}")
            blob = cek + seed
        wrapped_keys[fp] = b64encode(_wrap(pub, blob, wrap, rng, aad))
    envelope = {
        "suite": suite,
        "wrap": wrap,
        "wrapped_keys": wrapped_keys,
        "nonce": b64encode(nonce),
        "body": b64encode(body),
    }
    return MultiSeal(envelope=envelope, seeds=seeds)


@dataclass(frozen=True)
class OpenedEnvelope:
    """Result of :func:`open_detailed`: the plaintext plus the resumption
    seed the sender wrapped for us (``None`` for plain envelopes)."""

    plaintext: bytes
    suite: str
    wrap: str
    resume_seed: bytes | None


def open_(priv: PrivateKey, envelope: dict[str, Any], aad: bytes = b"") -> bytes:
    """Decrypt an envelope produced by :func:`seal` or :func:`seal_many`.

    Raises :class:`DecryptionError` on any malformation, wrong key, or
    authentication failure.
    """
    return open_detailed(priv, envelope, aad=aad).plaintext


def open_detailed(priv: PrivateKey, envelope: dict[str, Any],
                  aad: bytes = b"") -> OpenedEnvelope:
    """Like :func:`open_` but also surfaces the resumption seed, if any.

    Handles both the single-recipient ``wrapped_key`` format and the
    multi-recipient ``wrapped_keys`` map (our own key fingerprint selects
    the entry).
    """
    obs.get_registry().incr("crypto.envelope.open")
    if "resume" in envelope:
        raise DecryptionError(
            "resumed envelope needs a resumption store, not a private key")
    try:
        suite = envelope["suite"]
        wrap = envelope["wrap"]
        if "wrapped_keys" in envelope:
            fp = priv.public_key().fingerprint().hex()
            entry = envelope["wrapped_keys"].get(fp)
            if entry is None:
                raise DecryptionError("envelope is not addressed to this key")
            wrapped = b64decode(entry)
        else:
            wrapped = b64decode(envelope["wrapped_key"])
        nonce = b64decode(envelope["nonce"])
        body = b64decode(envelope["body"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise DecryptionError(f"malformed envelope: {exc!r}") from exc
    if suite not in SUITES:
        raise DecryptionError(f"unknown envelope suite {suite!r}")
    key_len, nonce_len = SUITES[suite]
    if len(nonce) != nonce_len:
        raise DecryptionError("envelope nonce has the wrong length")
    blob = _unwrap(priv, wrapped, wrap, aad)
    if len(blob) == key_len:
        cek, seed = blob, None
    elif len(blob) == key_len + RESUME_SEED_LEN:
        cek, seed = blob[:key_len], blob[key_len:]
    else:
        raise DecryptionError("unwrapped CEK has the wrong length")
    if suite == "chacha20poly1305":
        plaintext = aead.open_(cek, nonce, body, aad=aad)
    else:
        plaintext = CBC(cek).decrypt(body, nonce)
    return OpenedEnvelope(plaintext=plaintext, suite=suite, wrap=wrap,
                          resume_seed=seed)
