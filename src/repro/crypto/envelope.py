"""The hybrid "wrapped key encryption scheme" E_PKi(x) of the paper.

The paper's notation section defines ``E_PKi(x)`` as encryption of an
arbitrary-length string under peer *i*'s public key "by means of a wrapped
key encryption scheme (such as the one defined in [19] = PKCS#1)".  This is
the classic hybrid envelope:

1. draw a fresh symmetric content-encryption key (CEK),
2. encrypt the payload under the CEK with a symmetric cipher,
3. wrap the CEK under the recipient's RSA public key.

Two symmetric suites are supported, selectable per envelope (ablation A2):

* ``chacha20poly1305`` — authenticated, numpy-accelerated (default),
* ``aes128-cbc`` / ``aes256-cbc`` — the paper-era JCE-style suite.

The envelope is a self-describing dict so it can be embedded in XML or
JSON messages.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.crypto import aead, pkcs1
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.modes import CBC
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import DecryptionError
from repro.utils.encoding import b64decode, b64encode

#: suite name -> (CEK length, needs IV/nonce length)
SUITES: dict[str, tuple[int, int]] = {
    "chacha20poly1305": (32, 12),
    "aes128-cbc": (16, 16),
    "aes256-cbc": (32, 16),
}

DEFAULT_SUITE = "chacha20poly1305"

#: RSA key-wrap algorithm names (ablation: OAEP default, v1.5 era-faithful).
WRAP_OAEP = "rsa-oaep"
WRAP_V15 = "rsa-pkcs1v15"


def seal(pub: PublicKey, plaintext: bytes, drbg: HmacDrbg | None = None,
         suite: str = DEFAULT_SUITE, wrap: str = WRAP_OAEP,
         aad: bytes = b"") -> dict[str, Any]:
    """Encrypt ``plaintext`` for the holder of ``pub``.

    Returns the envelope as a dict with base64 fields:
    ``{suite, wrap, wrapped_key, nonce, body}``.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown envelope suite {suite!r}")
    registry = obs.get_registry()
    if registry.enabled:
        registry.incr("crypto.envelope.seal")
        registry.observe("crypto.envelope.plaintext_bytes", len(plaintext))
    rng = drbg if drbg is not None else system_drbg()
    key_len, nonce_len = SUITES[suite]
    cek = rng.generate(key_len)
    nonce = rng.generate(nonce_len)
    if suite == "chacha20poly1305":
        body = aead.seal(cek, nonce, plaintext, aad=aad)
    else:
        # CBC is unauthenticated; fold the AAD into the wrapped blob instead
        # so tampering with it still breaks unwrapping deterministically.
        body = CBC(cek).encrypt(plaintext, nonce)
    if wrap == WRAP_OAEP:
        wrapped = pkcs1.encrypt_oaep(pub, cek, drbg=rng, label=aad)
    elif wrap == WRAP_V15:
        wrapped = pkcs1.encrypt_v15(pub, cek, drbg=rng)
    else:
        raise ValueError(f"unknown key wrap algorithm {wrap!r}")
    return {
        "suite": suite,
        "wrap": wrap,
        "wrapped_key": b64encode(wrapped),
        "nonce": b64encode(nonce),
        "body": b64encode(body),
    }


def open_(priv: PrivateKey, envelope: dict[str, Any], aad: bytes = b"") -> bytes:
    """Decrypt an envelope produced by :func:`seal`.

    Raises :class:`DecryptionError` on any malformation, wrong key, or
    authentication failure.
    """
    obs.get_registry().incr("crypto.envelope.open")
    try:
        suite = envelope["suite"]
        wrap = envelope["wrap"]
        wrapped = b64decode(envelope["wrapped_key"])
        nonce = b64decode(envelope["nonce"])
        body = b64decode(envelope["body"])
    except (KeyError, TypeError) as exc:
        raise DecryptionError(f"malformed envelope: {exc!r}") from exc
    if suite not in SUITES:
        raise DecryptionError(f"unknown envelope suite {suite!r}")
    key_len, nonce_len = SUITES[suite]
    if len(nonce) != nonce_len:
        raise DecryptionError("envelope nonce has the wrong length")
    if wrap == WRAP_OAEP:
        cek = pkcs1.decrypt_oaep(priv, wrapped, label=aad)
    elif wrap == WRAP_V15:
        cek = pkcs1.decrypt_v15(priv, wrapped)
    else:
        raise DecryptionError(f"unknown key wrap algorithm {wrap!r}")
    if len(cek) != key_len:
        raise DecryptionError("unwrapped CEK has the wrong length")
    if suite == "chacha20poly1305":
        return aead.open_(cek, nonce, body, aad=aad)
    return CBC(cek).decrypt(body, nonce)
