"""AES-128/192/256 block cipher from scratch (FIPS 197).

The encryption path uses the classic 32-bit T-table formulation, which is
the fastest practical approach in pure Python; decryption uses the inverse
tables.  The tables are derived programmatically from the S-box at import
time rather than embedded as 4 KiB of literals, which both documents the
construction and guards against transcription errors.

Test oracle: the suite checks FIPS-197 appendix vectors and cross-checks
random blocks against the ``cryptography`` package.
"""

from __future__ import annotations

import struct

from repro import obs
from repro.errors import InvalidKeyError

# ---------------------------------------------------------------------------
# S-box construction: multiplicative inverse in GF(2^8) followed by the
# affine transform, per FIPS 197 section 5.1.1.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        hi = a & 0x80
        a = (a << 1) & 0xFF
        if hi:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exponentiation (a^254 == a^-1 in GF(2^8)).
    inv = [0] * 256
    for a in range(1, 256):
        x = a
        for _ in range(6):  # a^2, a^4, ... combine to a^254
            x = _gf_mul(x, x)
            x = _gf_mul(x, a)
        inv[a] = _gf_mul(x, x)
    sbox = bytearray(256)
    for a in range(256):
        x = inv[a]
        y = x
        for _ in range(4):
            y = ((y << 1) | (y >> 7)) & 0xFF
            x ^= y
        sbox[a] = x ^ 0x63
    inv_sbox = bytearray(256)
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

# Round constants for key expansion.
_RCON = [0x01]
for _ in range(13):
    _RCON.append(_gf_mul(_RCON[-1], 2))


def _build_tables() -> tuple[list[list[int]], list[list[int]]]:
    """Encryption tables T0..T3 and decryption tables D0..D3."""
    t0 = []
    for x in range(256):
        s = SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = s2 ^ s
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
    tables = [t0]
    for shift in (8, 16, 24):
        tables.append([((v >> shift) | (v << (32 - shift))) & 0xFFFFFFFF for v in t0])

    d0 = []
    for x in range(256):
        s = INV_SBOX[x]
        d0.append(
            (_gf_mul(s, 14) << 24)
            | (_gf_mul(s, 9) << 16)
            | (_gf_mul(s, 13) << 8)
            | _gf_mul(s, 11)
        )
    dtables = [d0]
    for shift in (8, 16, 24):
        dtables.append([((v >> shift) | (v << (32 - shift))) & 0xFFFFFFFF for v in d0])
    return tables, dtables


(_T0, _T1, _T2, _T3), (_D0, _D1, _D2, _D3) = _build_tables()


class AES:
    """The raw 16-byte block cipher.  Use :mod:`repro.crypto.modes` on top."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise InvalidKeyError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._ek = self._expand_key(key)
        self._dk = self._invert_key(self._ek)
        obs.get_registry().incr("crypto.aes.key_schedule")

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        w = list(struct.unpack(f">{nk}I", key))
        for i in range(nk, 4 * (self.rounds + 1)):
            temp = w[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (  # SubWord
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            w.append(w[i - nk] ^ temp)
        return w

    def _invert_key(self, ek: list[int]) -> list[int]:
        """Equivalent-inverse-cipher round keys (InvMixColumns applied)."""
        rounds = self.rounds
        dk = [0] * len(ek)
        for i in range(0, len(ek), 4):
            dk[i:i + 4] = ek[len(ek) - 4 - i:len(ek) - i]
        for i in range(4, 4 * rounds):
            v = dk[i]
            dk[i] = (
                _D0[SBOX[(v >> 24) & 0xFF]]
                ^ _D1[SBOX[(v >> 16) & 0xFF]]
                ^ _D2[SBOX[(v >> 8) & 0xFF]]
                ^ _D3[SBOX[v & 0xFF]]
            )
        return dk

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        obs.get_registry().incr("crypto.aes.blocks_encrypted")
        ek = self._ek
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= ek[0]; s1 ^= ek[1]; s2 ^= ek[2]; s3 ^= ek[3]
        k = 4
        for _ in range(self.rounds - 1):
            t0 = _T0[(s0 >> 24) & 0xFF] ^ _T1[(s1 >> 16) & 0xFF] ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ ek[k]
            t1 = _T0[(s1 >> 24) & 0xFF] ^ _T1[(s2 >> 16) & 0xFF] ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ ek[k + 1]
            t2 = _T0[(s2 >> 24) & 0xFF] ^ _T1[(s3 >> 16) & 0xFF] ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ ek[k + 2]
            t3 = _T0[(s3 >> 24) & 0xFF] ^ _T1[(s0 >> 16) & 0xFF] ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ ek[k + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        o0 = ((SBOX[(s0 >> 24) & 0xFF] << 24) | (SBOX[(s1 >> 16) & 0xFF] << 16)
              | (SBOX[(s2 >> 8) & 0xFF] << 8) | SBOX[s3 & 0xFF]) ^ ek[k]
        o1 = ((SBOX[(s1 >> 24) & 0xFF] << 24) | (SBOX[(s2 >> 16) & 0xFF] << 16)
              | (SBOX[(s3 >> 8) & 0xFF] << 8) | SBOX[s0 & 0xFF]) ^ ek[k + 1]
        o2 = ((SBOX[(s2 >> 24) & 0xFF] << 24) | (SBOX[(s3 >> 16) & 0xFF] << 16)
              | (SBOX[(s0 >> 8) & 0xFF] << 8) | SBOX[s1 & 0xFF]) ^ ek[k + 2]
        o3 = ((SBOX[(s3 >> 24) & 0xFF] << 24) | (SBOX[(s0 >> 16) & 0xFF] << 16)
              | (SBOX[(s1 >> 8) & 0xFF] << 8) | SBOX[s2 & 0xFF]) ^ ek[k + 3]
        return struct.pack(">4I", o0, o1, o2, o3)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        obs.get_registry().incr("crypto.aes.blocks_decrypted")
        dk = self._dk
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= dk[0]; s1 ^= dk[1]; s2 ^= dk[2]; s3 ^= dk[3]
        k = 4
        for _ in range(self.rounds - 1):
            t0 = _D0[(s0 >> 24) & 0xFF] ^ _D1[(s3 >> 16) & 0xFF] ^ _D2[(s2 >> 8) & 0xFF] ^ _D3[s1 & 0xFF] ^ dk[k]
            t1 = _D0[(s1 >> 24) & 0xFF] ^ _D1[(s0 >> 16) & 0xFF] ^ _D2[(s3 >> 8) & 0xFF] ^ _D3[s2 & 0xFF] ^ dk[k + 1]
            t2 = _D0[(s2 >> 24) & 0xFF] ^ _D1[(s1 >> 16) & 0xFF] ^ _D2[(s0 >> 8) & 0xFF] ^ _D3[s3 & 0xFF] ^ dk[k + 2]
            t3 = _D0[(s3 >> 24) & 0xFF] ^ _D1[(s2 >> 16) & 0xFF] ^ _D2[(s1 >> 8) & 0xFF] ^ _D3[s0 & 0xFF] ^ dk[k + 3]
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        o0 = ((INV_SBOX[(s0 >> 24) & 0xFF] << 24) | (INV_SBOX[(s3 >> 16) & 0xFF] << 16)
              | (INV_SBOX[(s2 >> 8) & 0xFF] << 8) | INV_SBOX[s1 & 0xFF]) ^ dk[k]
        o1 = ((INV_SBOX[(s1 >> 24) & 0xFF] << 24) | (INV_SBOX[(s0 >> 16) & 0xFF] << 16)
              | (INV_SBOX[(s3 >> 8) & 0xFF] << 8) | INV_SBOX[s2 & 0xFF]) ^ dk[k + 1]
        o2 = ((INV_SBOX[(s2 >> 24) & 0xFF] << 24) | (INV_SBOX[(s1 >> 16) & 0xFF] << 16)
              | (INV_SBOX[(s0 >> 8) & 0xFF] << 8) | INV_SBOX[s3 & 0xFF]) ^ dk[k + 2]
        o3 = ((INV_SBOX[(s3 >> 24) & 0xFF] << 24) | (INV_SBOX[(s2 >> 16) & 0xFF] << 16)
              | (INV_SBOX[(s1 >> 8) & 0xFF] << 8) | INV_SBOX[s0 & 0xFF]) ^ dk[k + 3]
        return struct.pack(">4I", o0, o1, o2, o3)
