"""Per-group epoch keys: the symmetric layer of broker-mediated fan-out.

The paper's ``secureMsgPeerGroup`` (§4.3) makes the *sender* pay for the
whole group: one resolve + seal + push per member.  Broker-mediated
group-cast inverts that: the sender seals **once** under the group's
current *epoch key* and its home broker relays the ciphertext along the
federation.  This module holds the key machinery; the relay logic lives
in :mod:`repro.overlay.groupcast`.

* An **epoch** is a monotonically increasing integer per group.  Every
  membership change (create/join/leave/disconnect) bumps it, so a
  departed member's key material stops opening new traffic immediately
  and a joining member cannot read frames from before it joined (the
  broker only hands out epochs from the member's join onward).
* Each epoch has a random 16-byte **secret** minted by the group's
  shard-owner broker.  Cipher and MAC keys are HKDF-derived from it
  with the group name *and* epoch number baked into the info string, so
  a key from one (group, epoch) is useless for any other.
* Frames carry a **random nonce** drawn from the sender's DRBG.  Unlike
  resumption sessions (one sender, derived nonces), an epoch key is
  shared by *every* member — counter- or derivation-based nonces would
  collide across senders, so each frame ships its own.
* :class:`GroupKeyRing` holds a bounded history of epochs per group and
  maps the two failure modes onto distinct taxonomy errors: a frame
  under a *rotated-out* epoch raises :class:`StaleEpochError`, a frame
  under an epoch we never held (or one newer than we know) raises
  :class:`UnknownEpochError` — the latter is the receiver's cue to
  refresh keys from its broker and retry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.crypto import aead
from repro.crypto.drbg import HmacDrbg
from repro.crypto.envelope import DEFAULT_SUITE, SUITES
from repro.crypto.hmac import hmac_sha256
from repro.crypto.modes import CBC
from repro.crypto.resume import hkdf_sha256
from repro.errors import DecryptionError, StaleEpochError, UnknownEpochError
from repro.utils.bytesutil import constant_time_eq
from repro.utils.encoding import b64decode, b64encode

_EPOCH_KEY_INFO = b"jxta-overlay-groupkey|key|"
_EPOCH_MAC_INFO = b"jxta-overlay-groupkey|mac|"
_TAG_LEN = 16

#: length of the random per-epoch secret the shard owner mints
EPOCH_SECRET_LEN = 16

#: default AAD binding group-cast frames to their protocol context
GROUP_AAD = b"jxta-overlay-group-msg"


@dataclass(frozen=True)
class EpochKey:
    """Derived key material for one (group, epoch)."""

    group: str
    epoch: int
    suite: str
    key: bytes
    mac_key: bytes


def derive_epoch_key(group: str, epoch: int, secret: bytes,
                     suite: str = DEFAULT_SUITE) -> EpochKey:
    """Expand an epoch secret into cipher + MAC keys.

    The info string binds group name and epoch number, so the same
    secret (never reused in practice) would still yield unrelated keys
    for different groups or epochs.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown envelope suite {suite!r}")
    if len(secret) != EPOCH_SECRET_LEN:
        raise ValueError("epoch secret has the wrong length")
    scope = group.encode("utf-8") + b"|" + epoch.to_bytes(8, "big")
    key_len, _ = SUITES[suite]
    key = hkdf_sha256(secret,
                      info=_EPOCH_KEY_INFO + suite.encode("utf-8") + b"|" + scope,
                      length=key_len)
    mac_key = hkdf_sha256(secret, info=_EPOCH_MAC_INFO + scope, length=32)
    return EpochKey(group=group, epoch=epoch, suite=suite, key=key,
                    mac_key=mac_key)


def _bound_aad(ek: EpochKey, aad: bytes) -> bytes:
    return (aad + b"|group|" + ek.group.encode("utf-8")
            + b"|epoch|" + ek.epoch.to_bytes(8, "big"))


_M_GROUP_SEAL = obs.InternedCounter("crypto.groupkey.seal")
_M_GROUP_OPEN = obs.InternedCounter("crypto.groupkey.open")


def seal_epoch(ek: EpochKey, plaintext: bytes, drbg: HmacDrbg,
               aad: bytes = GROUP_AAD) -> dict[str, Any]:
    """Seal one group frame under an epoch key.  Zero RSA operations.

    The nonce is random (every member shares this key — derived nonces
    would collide across senders) and travels in the envelope.
    """
    _M_GROUP_SEAL.incr()
    _, nonce_len = SUITES[ek.suite]
    nonce = drbg.generate(nonce_len)
    bound = _bound_aad(ek, aad)
    env: dict[str, Any] = {"group": ek.group, "epoch": ek.epoch,
                           "suite": ek.suite, "nonce": b64encode(nonce)}
    if ek.suite == "chacha20poly1305":
        body = aead.seal(ek.key, nonce, plaintext, aad=bound)
    else:
        body = CBC(ek.key).encrypt(plaintext, nonce)
        tag = hmac_sha256(ek.mac_key, bound + nonce + body)[:_TAG_LEN]
        env["tag"] = b64encode(tag)
    env["body"] = b64encode(body)
    return env


def open_epoch(ek: EpochKey, env: dict[str, Any],
               aad: bytes = GROUP_AAD) -> bytes:
    """Authenticate + decrypt one epoch-sealed frame."""
    try:
        nonce = b64decode(env["nonce"])
        body = b64decode(env["body"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DecryptionError(f"malformed group frame: {exc!r}") from exc
    if env.get("suite") != ek.suite:
        raise DecryptionError("group frame suite does not match the epoch key")
    bound = _bound_aad(ek, aad)
    if ek.suite == "chacha20poly1305":
        plaintext = aead.open_(ek.key, nonce, body, aad=bound)
    else:
        try:
            tag = b64decode(env["tag"])
        except (KeyError, TypeError) as exc:
            raise DecryptionError("group CBC frame carries no tag") from exc
        expected = hmac_sha256(ek.mac_key, bound + nonce + body)[:_TAG_LEN]
        if not constant_time_eq(tag, expected):
            raise DecryptionError("group frame failed authentication")
        plaintext = CBC(ek.key).decrypt(body, nonce)
    _M_GROUP_OPEN.incr()
    return plaintext


class GroupKeyRing:
    """Bounded per-group epoch-key history for one holder.

    Brokers keep one ring per locally-subscribed group; clients keep one
    per joined group.  ``history`` bounds how many past epochs stay
    openable — anything older is *stale* (rotated out for forward
    secrecy), anything newer than the latest installed epoch is
    *unknown* (the holder should refresh from its broker).
    """

    def __init__(self, group: str, suite: str = DEFAULT_SUITE,
                 history: int = 8) -> None:
        if history < 1:
            raise ValueError("epoch history must retain at least one epoch")
        self.group = group
        self.suite = suite
        self.history = history
        self._epochs: OrderedDict[int, EpochKey] = OrderedDict()
        self._floor = 0  # highest epoch ever trimmed or skipped past

    def __len__(self) -> int:
        return len(self._epochs)

    @property
    def epoch(self) -> int:
        """The newest installed epoch number (0 = no key yet)."""
        return next(reversed(self._epochs)) if self._epochs else 0

    def install(self, epoch: int, secret: bytes) -> EpochKey:
        """Derive and retain the key for ``epoch``, trimming old history."""
        if epoch < 1:
            raise ValueError("epochs start at 1")
        ek = derive_epoch_key(self.group, epoch, secret, self.suite)
        newest_before = self.epoch
        self._epochs[epoch] = ek
        # Keep numeric order: re-sorting only matters when a replay
        # back-fills an older epoch after a newer one arrived.
        if newest_before and epoch < newest_before:
            for key in sorted(self._epochs):
                self._epochs.move_to_end(key)
        while len(self._epochs) > self.history:
            trimmed, _ = self._epochs.popitem(last=False)
            self._floor = max(self._floor, trimmed)
            obs.get_registry().incr("crypto.groupkey.trimmed")
        return ek

    def get(self, epoch: int) -> EpochKey:
        """The key for ``epoch``; raises the taxonomy error otherwise."""
        ek = self._epochs.get(epoch)
        if ek is not None:
            return ek
        registry = obs.get_registry()
        if epoch <= self._floor or (self._epochs and epoch < self.epoch):
            registry.incr("crypto.groupkey.reject.stale")
            raise StaleEpochError(
                f"group {self.group!r} epoch {epoch} was rotated out "
                f"(current {self.epoch})")
        registry.incr("crypto.groupkey.reject.unknown")
        raise UnknownEpochError(
            f"group {self.group!r} has no key for epoch {epoch} "
            f"(current {self.epoch})")

    def open(self, env: dict[str, Any], aad: bytes = GROUP_AAD) -> bytes:
        """Open a frame using the epoch named in its envelope."""
        try:
            epoch = int(env["epoch"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DecryptionError(f"group frame names no epoch: {exc!r}") from exc
        return open_epoch(self.get(epoch), env, aad=aad)
