"""ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8).

This is the authenticated symmetric layer used inside the hybrid envelope:
confidentiality from ChaCha20, integrity from Poly1305 over the AAD and
ciphertext.  AES-CBC (unauthenticated, paper-era) remains available via
:mod:`repro.crypto.modes` for fidelity comparisons.
"""

from __future__ import annotations

import struct

import numpy as np

from repro import perf
from repro.crypto.chacha20 import chacha20_block, chacha20_xor, keystream
from repro.crypto.poly1305 import poly1305_mac
from repro.errors import InvalidTagError
from repro.utils.bytesutil import constant_time_eq

TAG_SIZE = 16
KEY_SIZE = 32
NONCE_SIZE = 12


def _pad16(data: bytes) -> bytes:
    return b"\x00" * (-len(data) % 16)


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    return (aad + _pad16(aad) + ciphertext + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext)))


def _otk_and_xor(key: bytes, nonce: bytes, data: bytes) -> tuple[bytes, bytes]:
    """The Poly1305 one-time key plus ``data`` XOR keystream(counter=1..).

    Fused fast path: block 0 (the OTK) and the message blocks come from
    **one** keystream call, so the vectorized batch amortizes the block
    function over the whole operation.  Byte-identical to the two-call
    legacy path (same blocks at the same counters).
    """
    if not perf.FLAGS.chacha_vector:
        return (chacha20_block(key, 0, nonce)[:32],
                chacha20_xor(key, nonce, data, counter=1))
    n_blocks = (len(data) + 63) // 64
    stream = keystream(key, 0, nonce, n_blocks + 1)
    otk = stream[:32]
    if not data:
        return otk, b""
    buf = np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(
        stream[64:64 + len(data)], dtype=np.uint8
    )
    return otk, buf.tobytes()


def seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate; returns ``ciphertext || tag``."""
    otk, ciphertext = _otk_and_xor(key, nonce, plaintext)
    tag = poly1305_mac(otk, _auth_input(aad, ciphertext))
    return ciphertext + tag


def open_(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify the tag and decrypt; raises :class:`InvalidTagError` on failure."""
    if len(sealed) < TAG_SIZE:
        raise InvalidTagError("sealed message shorter than the tag")
    ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    otk, plaintext = _otk_and_xor(key, nonce, ciphertext)
    expected = poly1305_mac(otk, _auth_input(aad, ciphertext))
    if not constant_time_eq(expected, tag):
        raise InvalidTagError("Poly1305 tag mismatch")
    return plaintext
