"""ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8).

This is the authenticated symmetric layer used inside the hybrid envelope:
confidentiality from ChaCha20, integrity from Poly1305 over the AAD and
ciphertext.  AES-CBC (unauthenticated, paper-era) remains available via
:mod:`repro.crypto.modes` for fidelity comparisons.
"""

from __future__ import annotations

import struct

from repro.crypto.chacha20 import chacha20_block, chacha20_xor
from repro.crypto.poly1305 import poly1305_mac
from repro.errors import InvalidTagError
from repro.utils.bytesutil import constant_time_eq

TAG_SIZE = 16
KEY_SIZE = 32
NONCE_SIZE = 12


def _pad16(data: bytes) -> bytes:
    return b"\x00" * (-len(data) % 16)


def _auth_input(aad: bytes, ciphertext: bytes) -> bytes:
    return (aad + _pad16(aad) + ciphertext + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext)))


def seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate; returns ``ciphertext || tag``."""
    otk = chacha20_block(key, 0, nonce)[:32]  # one-time Poly1305 key
    ciphertext = chacha20_xor(key, nonce, plaintext, counter=1)
    tag = poly1305_mac(otk, _auth_input(aad, ciphertext))
    return ciphertext + tag


def open_(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify the tag and decrypt; raises :class:`InvalidTagError` on failure."""
    if len(sealed) < TAG_SIZE:
        raise InvalidTagError("sealed message shorter than the tag")
    ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
    otk = chacha20_block(key, 0, nonce)[:32]
    expected = poly1305_mac(otk, _auth_input(aad, ciphertext))
    if not constant_time_eq(expected, tag):
        raise InvalidTagError("Poly1305 tag mismatch")
    return chacha20_xor(key, nonce, ciphertext, counter=1)
