"""PKCS#1 padding schemes (RFC 8017; the paper cites PKCS#1 v2.0, ref [19]).

Implemented from scratch:

* **EME-PKCS1-v1_5** and **RSAES-OAEP** encryption padding,
* **EMSA-PKCS1-v1_5** and **RSASSA-PSS** signature padding,
* **MGF1** mask generation.

Hash function is our from-scratch SHA-256 throughout.  OAEP/PSS are the
defaults used by the secure primitives; v1.5 is kept for the ablation
benchmarks and for era fidelity (the 2009 JCE stack defaulted to v1.5).
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.crypto.sha2 import sha256
from repro.errors import DecryptionError, InvalidSignatureError
from repro.utils.bytesutil import b2i, constant_time_eq, i2b_fixed, xor_bytes

_HLEN = 32  # SHA-256

# DER prefix for a DigestInfo wrapping a SHA-256 digest (RFC 8017 sec 9.2).
_SHA256_DIGESTINFO_PREFIX = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function over SHA-256."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += sha256(seed + i2b_fixed(counter, 4))
        counter += 1
    return bytes(out[:length])


# ---------------------------------------------------------------------------
# Encryption: RSAES-PKCS1-v1_5
# ---------------------------------------------------------------------------

def encrypt_v15(pub: PublicKey, message: bytes, drbg: HmacDrbg | None = None) -> bytes:
    """RSAES-PKCS1-v1_5 encryption of a short message."""
    k = pub.byte_length
    if len(message) > k - 11:
        raise ValueError(f"message too long for RSAES-PKCS1-v1_5 ({len(message)} > {k - 11})")
    rng = drbg if drbg is not None else system_drbg()
    # PS: non-zero random padding bytes, at least 8 of them.
    ps = bytearray()
    while len(ps) < k - len(message) - 3:
        chunk = rng.generate(k)
        ps += bytes(b for b in chunk if b != 0)
    em = b"\x00\x02" + bytes(ps[: k - len(message) - 3]) + b"\x00" + message
    return i2b_fixed(pub.encrypt_int(b2i(em)), k)


def decrypt_v15(priv: PrivateKey, ciphertext: bytes) -> bytes:
    """RSAES-PKCS1-v1_5 decryption."""
    k = priv.byte_length
    if len(ciphertext) != k:
        raise DecryptionError("ciphertext length does not match the modulus")
    em = i2b_fixed(priv.decrypt_int(b2i(ciphertext)), k)
    if em[0] != 0 or em[1] != 2:
        raise DecryptionError("invalid PKCS#1 v1.5 encryption block")
    try:
        sep = em.index(0, 2)
    except ValueError:
        raise DecryptionError("missing PKCS#1 v1.5 separator") from None
    if sep < 10:  # at least 8 padding bytes
        raise DecryptionError("PKCS#1 v1.5 padding too short")
    return em[sep + 1:]


# ---------------------------------------------------------------------------
# Encryption: RSAES-OAEP
# ---------------------------------------------------------------------------

def encrypt_oaep(pub: PublicKey, message: bytes, drbg: HmacDrbg | None = None,
                 label: bytes = b"") -> bytes:
    """RSAES-OAEP encryption (SHA-256, MGF1-SHA-256)."""
    k = pub.byte_length
    max_len = k - 2 * _HLEN - 2
    if len(message) > max_len:
        raise ValueError(f"message too long for OAEP ({len(message)} > {max_len})")
    rng = drbg if drbg is not None else system_drbg()
    l_hash = sha256(label)
    ps = b"\x00" * (k - len(message) - 2 * _HLEN - 2)
    db = l_hash + ps + b"\x01" + message
    seed = rng.generate(_HLEN)
    masked_db = xor_bytes(db, mgf1(seed, k - _HLEN - 1))
    masked_seed = xor_bytes(seed, mgf1(masked_db, _HLEN))
    em = b"\x00" + masked_seed + masked_db
    return i2b_fixed(pub.encrypt_int(b2i(em)), k)


def decrypt_oaep(priv: PrivateKey, ciphertext: bytes, label: bytes = b"") -> bytes:
    """RSAES-OAEP decryption."""
    k = priv.byte_length
    if len(ciphertext) != k or k < 2 * _HLEN + 2:
        raise DecryptionError("ciphertext length does not match the modulus")
    em = i2b_fixed(priv.decrypt_int(b2i(ciphertext)), k)
    y, masked_seed, masked_db = em[0], em[1:1 + _HLEN], em[1 + _HLEN:]
    seed = xor_bytes(masked_seed, mgf1(masked_db, _HLEN))
    db = xor_bytes(masked_db, mgf1(seed, k - _HLEN - 1))
    l_hash = sha256(label)
    ok = y == 0 and constant_time_eq(db[:_HLEN], l_hash)
    rest = db[_HLEN:]
    sep = rest.find(b"\x01")
    if sep == -1 or any(rest[:sep]):
        ok = False
        sep = 0
    if not ok:
        raise DecryptionError("OAEP decoding error")
    return rest[sep + 1:]


# ---------------------------------------------------------------------------
# Signatures: RSASSA-PKCS1-v1_5
# ---------------------------------------------------------------------------

def sign_v15(priv: PrivateKey, message: bytes) -> bytes:
    """RSASSA-PKCS1-v1_5 signature over SHA-256(message)."""
    k = priv.byte_length
    t = _SHA256_DIGESTINFO_PREFIX + sha256(message)
    if k < len(t) + 11:
        raise ValueError("modulus too small for SHA-256 v1.5 signatures")
    em = b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t
    return i2b_fixed(priv.sign_int(b2i(em)), k)


def verify_v15(pub: PublicKey, message: bytes, signature: bytes) -> None:
    """Verify an RSASSA-PKCS1-v1_5 signature; raises on failure."""
    k = pub.byte_length
    if len(signature) != k:
        raise InvalidSignatureError("signature length does not match the modulus")
    try:
        em = i2b_fixed(pub.verify_int(b2i(signature)), k)
    except ValueError as exc:
        raise InvalidSignatureError(str(exc)) from exc
    t = _SHA256_DIGESTINFO_PREFIX + sha256(message)
    expected = b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t
    if not constant_time_eq(em, expected):
        raise InvalidSignatureError("v1.5 signature mismatch")


# ---------------------------------------------------------------------------
# Signatures: RSASSA-PSS
# ---------------------------------------------------------------------------

def sign_pss(priv: PrivateKey, message: bytes, drbg: HmacDrbg | None = None,
             salt_len: int | None = None) -> bytes:
    """RSASSA-PSS signature (SHA-256, MGF1).

    ``salt_len=None`` uses the hash length when the modulus allows it and
    degrades gracefully for small (test-only) moduli, matching common
    library behaviour.
    """
    rng = drbg if drbg is not None else system_drbg()
    em_bits = priv.bits - 1
    em_len = (em_bits + 7) // 8
    if salt_len is None:
        salt_len = min(_HLEN, em_len - _HLEN - 2)
    if salt_len < 0 or em_len < _HLEN + salt_len + 2:
        raise ValueError("modulus too small for the requested PSS salt")
    m_hash = sha256(message)
    salt = rng.generate(salt_len) if salt_len else b""
    h = sha256(b"\x00" * 8 + m_hash + salt)
    ps = b"\x00" * (em_len - salt_len - _HLEN - 2)
    db = ps + b"\x01" + salt
    masked_db = xor_bytes(db, mgf1(h, em_len - _HLEN - 1))
    # Clear the leftmost 8*em_len - em_bits bits.
    first_mask = 0xFF >> (8 * em_len - em_bits)
    masked_db = bytes([masked_db[0] & first_mask]) + masked_db[1:]
    em = masked_db + h + b"\xbc"
    return i2b_fixed(priv.sign_int(b2i(em)), priv.byte_length)


def verify_pss(pub: PublicKey, message: bytes, signature: bytes) -> None:
    """Verify an RSASSA-PSS signature; raises on failure.

    The salt length is recovered from the encoded message (the zero run up
    to the 0x01 separator), so signatures made with any salt length verify.
    """
    k = pub.byte_length
    if len(signature) != k:
        raise InvalidSignatureError("signature length does not match the modulus")
    em_bits = pub.bits - 1
    em_len = (em_bits + 7) // 8
    try:
        em = i2b_fixed(pub.verify_int(b2i(signature)), em_len)
    except (ValueError, OverflowError) as exc:
        raise InvalidSignatureError(str(exc)) from exc
    if em[-1] != 0xBC:
        raise InvalidSignatureError("PSS trailer mismatch")
    masked_db, h = em[: em_len - _HLEN - 1], em[em_len - _HLEN - 1:-1]
    first_mask = 0xFF >> (8 * em_len - em_bits)
    if masked_db[0] & ~first_mask & 0xFF:
        raise InvalidSignatureError("PSS leftmost bits not clear")
    db = xor_bytes(masked_db, mgf1(h, em_len - _HLEN - 1))
    db = bytes([db[0] & first_mask]) + db[1:]
    sep_index = db.find(b"\x01")
    if sep_index == -1 or any(db[:sep_index]):
        raise InvalidSignatureError("PSS DB structure mismatch")
    salt = db[sep_index + 1:]
    m_hash = sha256(message)
    if not constant_time_eq(sha256(b"\x00" * 8 + m_hash + salt), h):
        raise InvalidSignatureError("PSS hash mismatch")
