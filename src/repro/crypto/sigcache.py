"""Bounded LRU cache of *successful* signature verifications.

Credential chains and signed advertisements are re-verified constantly
on the messaging hot path — usually over the exact same bytes.  This
cache memoizes success keyed by ``(key fingerprint, message digest,
signature, scheme)``: any change to any input misses, and only
successes are stored (a failing verification is cheap to repeat and
must never be amortised).

A signature's *mathematical* validity never changes, so cached entries
cannot go stale — freshness concerns (validity windows, revocation)
live above this layer and are still checked by every caller on every
hit.  The cache is nevertheless wired into the same ``invalidate()``
hooks as the advertisement-validation cache
(:meth:`repro.core.signed_advertisement.AdvertisementValidator.invalidate`)
so operators can flush all trust-derived state at once, e.g. when a new
revocation list lands.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.crypto import signing
from repro.crypto.rsa import PublicKey
from repro.crypto.sha2 import sha256

_CacheKey = tuple[bytes, bytes, bytes, str]


class SignatureCache:
    """LRU memo of verifications that succeeded."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[_CacheKey, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def verify(self, pub: PublicKey, message: bytes, signature: bytes,
               scheme: str) -> None:
        """Like :func:`repro.crypto.signing.verify`, with memoized success."""
        key = (pub.fingerprint(), sha256(message), bytes(signature), scheme)
        registry = obs.get_registry()
        if key in self._entries:
            self._entries.move_to_end(key)
            registry.incr("crypto.sigcache.hits")
            return
        registry.incr("crypto.sigcache.misses")
        signing.verify(pub, message, signature, scheme=scheme)
        self._entries[key] = None
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            registry.incr("crypto.sigcache.evictions")

    def invalidate(self) -> None:
        self._entries.clear()


_default_cache = SignatureCache()


def get_sig_cache() -> SignatureCache:
    return _default_cache


def set_sig_cache(cache: SignatureCache) -> SignatureCache:
    """Swap the process-wide cache (tests); returns the previous one."""
    global _default_cache
    previous, _default_cache = _default_cache, cache
    return previous


def cached_verify(pub: PublicKey, message: bytes, signature: bytes,
                  scheme: str) -> None:
    """Verify through the process-wide cache."""
    _default_cache.verify(pub, message, signature, scheme)
