"""RSA key generation and the raw trapdoor permutation (from scratch).

Padding schemes live in :mod:`repro.crypto.pkcs1`; this module only deals
with keys and modular exponentiation.  The private operation uses the CRT
(roughly 3-4x faster) with a correctness cross-check against the public
operation disabled by default.

Key generation is fully deterministic given a caller-supplied DRBG, which
the test-suite and benchmarks use to make runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.numtheory import crt_combine, generate_prime, lcm, modinv
from repro.crypto.sha2 import sha256
from repro.errors import InvalidKeyError
from repro.utils.bytesutil import i2b_fixed

#: The public exponent used everywhere (F4, the universal default).
PUBLIC_EXPONENT = 65537

#: Key sizes accepted by :func:`generate_keypair`.  512 exists only so the
#: unit-test suite can exercise full protocol runs quickly; real deployments
#: of the 2009 system used 1024, today's floor is 2048.
SUPPORTED_BITS = (512, 768, 1024, 1536, 2048, 3072, 4096)


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt_int(self, m: int) -> int:
        """Raw RSAEP: ``m^e mod n``.  Callers must pad first."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        obs.get_registry().incr("crypto.rsa.public_op")
        return pow(m, self.e, self.n)

    def verify_int(self, s: int) -> int:
        """Raw RSAVP1: the same permutation as RSAEP, accounted separately
        so BENCH_* RSA-op counts can tell verifies from encrypt-wraps."""
        if not 0 <= s < self.n:
            raise ValueError("signature representative out of range")
        obs.get_registry().incr("crypto.rsa.verify_op")
        return pow(s, self.e, self.n)

    def fingerprint(self) -> bytes:
        """SHA-256 over the canonical encoding — the basis of CBIDs."""
        nb = self.byte_length
        return sha256(b"rsa-pub|" + i2b_fixed(self.n, nb) + b"|" + i2b_fixed(self.e, 4))

    def to_dict(self) -> dict:
        return {"kty": "RSA", "n": hex(self.n), "e": hex(self.e)}

    @classmethod
    def from_dict(cls, obj: dict) -> "PublicKey":
        try:
            if obj.get("kty") != "RSA":
                raise KeyError("kty")
            return cls(n=int(obj["n"], 16), e=int(obj["e"], 16))
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidKeyError(f"malformed public key encoding: {exc!r}") from exc


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int = field(repr=False, default=0)
    dq: int = field(repr=False, default=0)
    q_inv: int = field(repr=False, default=0)

    def __post_init__(self) -> None:
        if self.dp == 0:
            object.__setattr__(self, "dp", self.d % (self.p - 1))
        if self.dq == 0:
            object.__setattr__(self, "dq", self.d % (self.q - 1))
        if self.q_inv == 0:
            object.__setattr__(self, "q_inv", modinv(self.q, self.p))

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> PublicKey:
        return PublicKey(n=self.n, e=self.e)

    def decrypt_int(self, c: int) -> int:
        """Raw RSADP via the Chinese Remainder Theorem."""
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        obs.get_registry().incr("crypto.rsa.private_op")
        mp = pow(c % self.p, self.dp, self.p)
        mq = pow(c % self.q, self.dq, self.q)
        return crt_combine(mp, mq, self.p, self.q, self.q_inv)

    #: RSASP1 (signature generation) is the same permutation.
    sign_int = decrypt_int


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private RSA key pair."""

    public: PublicKey
    private: PrivateKey

    @property
    def bits(self) -> int:
        return self.public.bits


def generate_keypair(bits: int = 1024, drbg: HmacDrbg | None = None) -> KeyPair:
    """Generate an RSA key pair of the requested modulus size.

    ``drbg=None`` draws from the OS entropy pool; passing a seeded
    :class:`HmacDrbg` yields a deterministic key.
    """
    if bits not in SUPPORTED_BITS:
        raise InvalidKeyError(f"unsupported RSA size {bits}; pick one of {SUPPORTED_BITS}")
    rng = drbg if drbg is not None else system_drbg()
    e = PUBLIC_EXPONENT
    half = bits // 2
    while True:
        p = generate_prime(half, rng.rand_bits, rng.rand_below)
        q = generate_prime(bits - half, rng.rand_bits, rng.rand_below)
        if p == q:
            continue
        if p < q:
            p, q = q, p  # convention: p > q, needed for q_inv = q^-1 mod p
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = lcm(p - 1, q - 1)
        try:
            d = modinv(e, lam)
        except ValueError:
            continue  # gcd(e, lambda(n)) != 1; extremely rare, redraw
        private = PrivateKey(n=n, e=e, d=d, p=p, q=q)
        obs.get_registry().incr("crypto.rsa.keygen")
        return KeyPair(public=private.public_key(), private=private)
