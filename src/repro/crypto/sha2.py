"""SHA-256 / SHA-224 implemented from scratch (FIPS 180-4).

The test suite cross-checks this implementation against :mod:`hashlib` on
random inputs; at runtime the rest of the package uses *this* code so the
whole crypto stack is self-contained.

The implementation follows the spec directly: message schedule expansion,
64-round compression over eight 32-bit working variables.  It is a streaming
implementation (``update``/``digest``) so large payloads are hashed without
building the padded message in memory.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

# FIPS 180-4 section 4.2.2: first 32 bits of the fractional parts of the cube
# roots of the first 64 primes.
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H256 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_H224 = (
    0xC1059ED8, 0x367CD507, 0x3070DD17, 0xF70E5939,
    0xFFC00B31, 0x68581511, 0x64F98FA7, 0xBEFA4FA4,
)


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


class SHA256:
    """Streaming SHA-256 with the familiar ``update``/``digest`` interface."""

    digest_size = 32
    block_size = 64
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H256)
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("SHA256.update requires bytes-like input")
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        n_blocks = len(buf) // 64
        for i in range(n_blocks):
            self._compress(buf[i * 64:(i + 1) * 64])
        self._buffer = buf[n_blocks * 64:]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 64):
            s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, h = self._h
        for t in range(64):
            t1 = (h + (_rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25))
                  + ((e & f) ^ (~e & g)) + _K[t] + w[t]) & _MASK32
            t2 = ((_rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22))
                  + ((a & b) ^ (a & c) ^ (b & c))) & _MASK32
            h, g, f, e, d, c, b, a = g, f, e, (d + t1) & _MASK32, c, b, a, (t1 + t2) & _MASK32
        self._h = [(v + n) & _MASK32 for v, n in zip(self._h, (a, b, c, d, e, f, g, h))]

    def copy(self) -> "SHA256":
        clone = self.__class__.__new__(self.__class__)
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        # Pad a copy so the object can keep streaming after digest().
        clone = self.copy()
        bit_length = clone._length * 8
        pad = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        clone.update(pad + struct.pack(">Q", bit_length))
        assert not clone._buffer
        return struct.pack(">8I", *clone._h)[: self.digest_size]

    def hexdigest(self) -> str:
        return self.digest().hex()


class SHA224(SHA256):
    """SHA-224: SHA-256 with different IV, truncated to 28 bytes."""

    digest_size = 28
    name = "sha224"

    def __init__(self, data: bytes = b"") -> None:
        super().__init__()
        self._h = list(_H224)
        if data:
            self.update(data)


# ---------------------------------------------------------------------------
# One-shot API with a switchable backend.
#
# The pure-Python implementation above is the *reference*: the test suite
# proves it bit-identical to hashlib on random and structured inputs.  The
# one-shot functions below default to the verified-equivalent hashlib
# backend because profiling showed SHA-256 dominating every protocol path
# (HMAC-DRBG, MGF1, digests) — the classic "optimize the measured
# bottleneck" move.  ``set_backend("pure")`` switches everything back to
# the from-scratch code (used by the equivalence tests and available for
# auditing runs).
# ---------------------------------------------------------------------------

import hashlib as _hashlib

_BACKEND = "accelerated"
_VALID_BACKENDS = ("accelerated", "pure")


def set_backend(name: str) -> None:
    """Select the one-shot hash backend: "accelerated" or "pure"."""
    global _BACKEND
    if name not in _VALID_BACKENDS:
        raise ValueError(f"unknown sha2 backend {name!r}; pick from {_VALID_BACKENDS}")
    _BACKEND = name


def get_backend() -> str:
    return _BACKEND


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest (backend-switchable, see module note)."""
    if _BACKEND == "accelerated":
        return _hashlib.sha256(data).digest()
    return SHA256(data).digest()


def sha224(data: bytes) -> bytes:
    """One-shot SHA-224 digest (backend-switchable, see module note)."""
    if _BACKEND == "accelerated":
        return _hashlib.sha224(data).digest()
    return SHA224(data).digest()
