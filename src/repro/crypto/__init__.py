"""From-scratch cryptographic substrate.

The paper's security extension (section 4) needs: RSA key pairs
(PK_i/SK_i), signatures S_SK(x), wrapped-key hybrid encryption E_PK(x),
hashes for Crypto-Based IDentifiers, and HMAC for the TLS baseline.  All
of it is implemented here from the specifications, with the standard
library / ``cryptography`` package used only as *test oracles*.
"""

from repro.crypto.aes import AES
from repro.crypto.drbg import HmacDrbg, system_drbg
from repro.crypto.hmac import HMAC, hmac_sha256, verify_hmac
from repro.crypto.rsa import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.sha2 import SHA224, SHA256, sha224, sha256
from repro.crypto.signing import is_valid, sign, verify

__all__ = [
    "AES",
    "HMAC",
    "HmacDrbg",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "SHA224",
    "SHA256",
    "generate_keypair",
    "hmac_sha256",
    "is_valid",
    "sha224",
    "sha256",
    "sign",
    "system_drbg",
    "verify",
    "verify_hmac",
]
