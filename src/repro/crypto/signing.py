"""High-level signing API: the paper's S_SKi(x).

Wraps the PKCS#1 signature paddings behind named schemes so callers (and
the security-policy ablations) select by string.  Default is PSS; v1.5 is
the era-faithful alternative.
"""

from __future__ import annotations

from repro.crypto import pkcs1
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import PrivateKey, PublicKey
from repro.errors import InvalidSignatureError

SCHEME_PSS = "rsa-pss-sha256"
SCHEME_V15 = "rsa-pkcs1v15-sha256"
DEFAULT_SCHEME = SCHEME_PSS


def sign(priv: PrivateKey, message: bytes, scheme: str = DEFAULT_SCHEME,
         drbg: HmacDrbg | None = None) -> bytes:
    """Sign ``message``; the scheme string travels alongside the signature."""
    if scheme == SCHEME_PSS:
        return pkcs1.sign_pss(priv, message, drbg=drbg)
    if scheme == SCHEME_V15:
        return pkcs1.sign_v15(priv, message)
    raise ValueError(f"unknown signature scheme {scheme!r}")


def verify(pub: PublicKey, message: bytes, signature: bytes,
           scheme: str = DEFAULT_SCHEME) -> None:
    """Verify a signature; raises :class:`InvalidSignatureError` on failure."""
    if scheme == SCHEME_PSS:
        pkcs1.verify_pss(pub, message, signature)
    elif scheme == SCHEME_V15:
        pkcs1.verify_v15(pub, message, signature)
    else:
        raise InvalidSignatureError(f"unknown signature scheme {scheme!r}")


def is_valid(pub: PublicKey, message: bytes, signature: bytes,
             scheme: str = DEFAULT_SCHEME) -> bool:
    """Boolean convenience wrapper around :func:`verify`."""
    try:
        verify(pub, message, signature, scheme=scheme)
    except InvalidSignatureError:
        return False
    return True
