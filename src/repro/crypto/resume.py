"""Pair-wise session resumption: the steady-state zero-RSA fast path.

The paper's secure messaging is deliberately stateless — every message
pays a full sign + hybrid-envelope seal (§4.3).  This module adds an
*optional, sender-driven* resumption layer on top:

* A **resumable** envelope (:func:`repro.crypto.envelope.seal_many` with
  per-recipient ``seeds``) wraps a fresh 16-byte *seed* alongside the
  CEK, individually per recipient.  The seed — not the CEK — roots the
  session, because in a group envelope every member knows the shared CEK
  and could otherwise impersonate the sender towards the others.
* The *signed* document additionally carries a per-recipient **seed
  commitment** (``fingerprint -> SHA256(tag || seed)``, see
  :func:`add_seed_commitments`).  The key wrap alone cannot authenticate
  the seed: any CEK holder (a co-recipient, or the recipient of a 1:1
  envelope) can re-wrap ``CEK || seed'`` of its choosing to a third
  peer while reusing the genuinely signed payload.  A receiver
  therefore registers a session only for a seed whose commitment —
  looked up under its *own* fingerprint — appears inside the document
  the sender's verified signature covers
  (:func:`check_seed_commitment`).
* Both ends derive the session material with HKDF (RFC 5869 style over
  our HMAC-SHA256): a cipher key sized for the suite, a separate MAC
  key, and a public session id.
* Later frames carry an explicit ``resume`` header (``{resume: sid,
  suite, seq, body[, tag]}``) and **no RSA operations at all**: AEAD
  suites authenticate themselves, CBC suites get encrypt-then-MAC under
  the session MAC key.  Per-frame nonces/IVs are derived from the MAC
  key and the sequence number, never sent on the wire.
* Replay safety: the receiver's :class:`ReceiverResumeStore` accepts a
  strictly increasing ``seq`` per session; sessions are bounded by TTL,
  use count, and an LRU cap on both ends, so a sender always re-keys
  (full signed envelope) before the receiver forgets the session.

Authenticity argument: a resumed frame is accepted only under a session
whose seed arrived inside an envelope whose *signature verified under
the sender's validated credential chain*.  Binding the stored identity
(the sender's leaf credential) to the session extends that one RSA
verification over every frame the session carries — see
``docs/PERFORMANCE.md`` for the full discussion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.crypto import aead
from repro.crypto.envelope import RESUME_SEED_LEN, SUITES
from repro.crypto.hmac import hmac_sha256
from repro.crypto.modes import CBC
from repro.crypto.sha2 import sha256
from repro.errors import DecryptionError, ReplayError, UnknownSessionError
from repro.utils.bytesutil import constant_time_eq
from repro.utils.encoding import b64decode, b64encode
from repro.xmllib import Element

_KEY_INFO = b"jxta-overlay-resume|key|"
_MAC_INFO = b"jxta-overlay-resume|mac"
_SID_INFO = b"jxta-overlay-resume|sid|"
_COMMIT_INFO = b"jxta-overlay-resume|commit|"
_NONCE_INFO = b"nonce|"
_TAG_LEN = 16

#: tag of the signed per-recipient seed-commitment list
COMMITS_TAG = "ResumeCommits"


def hkdf_sha256(ikm: bytes, *, salt: bytes = b"", info: bytes = b"",
                length: int = 32) -> bytes:
    """HKDF extract-then-expand (RFC 5869) over our HMAC-SHA256."""
    prk = hmac_sha256(salt if salt else b"\x00" * 32, ikm)
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def session_id(seed: bytes) -> str:
    """The public session identifier: a one-way tag of the secret seed."""
    return sha256(_SID_INFO + seed)[:16].hex()


def seed_commitment(seed: bytes) -> str:
    """Public, signable commitment to a secret seed (hex).

    Domain-separated from :func:`session_id` so publishing the
    commitment reveals neither the seed nor the session id."""
    return sha256(_COMMIT_INFO + seed).hex()


def add_seed_commitments(signed_doc: Element,
                         seeds: dict[str, bytes]) -> None:
    """Append a ``<ResumeCommits>`` list to a document *before signing*.

    One ``<Commit>`` per recipient: its key fingerprint (hex) and
    :func:`seed_commitment` of the seed wrapped for it.  The sender's
    signature over ``signed_doc`` then extends to the seeds, which the
    envelope's key wrap alone cannot authenticate.
    """
    for stale in signed_doc.findall(COMMITS_TAG):
        signed_doc.remove(stale)
    holder = signed_doc.add(COMMITS_TAG)
    for fp in sorted(seeds):
        entry = holder.add("Commit")
        entry.add("Fp", text=fp)
        entry.add("Digest", text=seed_commitment(seeds[fp]))


def check_seed_commitment(signed_doc: Element, fingerprint: str,
                          seed: bytes) -> bool:
    """Whether ``signed_doc`` commits to ``seed`` for ``fingerprint``.

    Callers MUST (a) verify the sender's signature over ``signed_doc``
    first and (b) look up their *own* key fingerprint — never one taken
    from the envelope — so a CEK holder cannot replay another
    recipient's (genuine, signed) commitment towards us.
    """
    holder = signed_doc.find(COMMITS_TAG)
    if holder is None:
        return False
    expected = seed_commitment(seed).encode("utf-8")
    for entry in holder.findall("Commit"):
        if entry.findtext("Fp") == fingerprint:
            return constant_time_eq(
                entry.findtext("Digest").encode("utf-8"), expected)
    return False


@dataclass
class ResumeSession:
    """Live state of one direction of a resumed pair-wise channel.

    ``seq`` is the last sequence number *sealed* (sender side) or
    *accepted* (receiver side); it only moves forward.
    """

    sid: str
    suite: str
    key: bytes
    mac_key: bytes
    created_at: float
    uses: int = 0
    seq: int = 0


def derive_session(seed: bytes, suite: str, now: float) -> ResumeSession:
    """Derive the full session state from a wrapped resumption seed."""
    if suite not in SUITES:
        raise ValueError(f"unknown envelope suite {suite!r}")
    if len(seed) != RESUME_SEED_LEN:
        raise ValueError("resumption seed has the wrong length")
    key_len, _ = SUITES[suite]
    key = hkdf_sha256(seed, info=_KEY_INFO + suite.encode("utf-8"),
                      length=key_len)
    mac_key = hkdf_sha256(seed, info=_MAC_INFO, length=32)
    return ResumeSession(sid=session_id(seed), suite=suite, key=key,
                         mac_key=mac_key, created_at=now)


def _frame_nonce(session: ResumeSession, seq: int, nonce_len: int) -> bytes:
    # Derived, not transmitted: both ends can compute it, nobody can pick it.
    return hmac_sha256(session.mac_key,
                       _NONCE_INFO + seq.to_bytes(8, "big"))[:nonce_len]


_M_RESUME_SEAL = obs.InternedCounter("crypto.resume.seal")


def seal_resumed(session: ResumeSession, plaintext: bytes,
                 aad: bytes = b"") -> dict[str, Any]:
    """Seal one frame on an established session.  Zero RSA operations."""
    _M_RESUME_SEAL.incr()
    session.seq += 1
    session.uses += 1
    seq = session.seq
    _, nonce_len = SUITES[session.suite]
    nonce = _frame_nonce(session, seq, nonce_len)
    bound = aad + b"|seq|" + seq.to_bytes(8, "big")
    env: dict[str, Any] = {"resume": session.sid, "suite": session.suite,
                           "seq": seq}
    if session.suite == "chacha20poly1305":
        body = aead.seal(session.key, nonce, plaintext, aad=bound)
    else:
        body = CBC(session.key).encrypt(plaintext, nonce)
        tag = hmac_sha256(session.mac_key, bound + body)[:_TAG_LEN]
        env["tag"] = b64encode(tag)
    env["body"] = b64encode(body)
    return env


def open_resumed(session: ResumeSession, env: dict[str, Any],
                 aad: bytes = b"") -> bytes:
    """Authenticate + decrypt one resumed frame, enforcing seq monotony.

    Raises :class:`ReplayError` for a stale/duplicate ``seq`` and
    :class:`DecryptionError` for anything that fails authentication.
    Session state advances only after the frame authenticates.
    """
    try:
        seq = int(env["seq"])
        body = b64decode(env["body"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DecryptionError(f"malformed resumed frame: {exc!r}") from exc
    if env.get("suite") != session.suite:
        raise DecryptionError("resumed frame suite does not match the session")
    if seq <= session.seq:
        obs.get_registry().incr("crypto.resume.replay_blocked")
        obs.emit("on_replay_blocked", kind="resume", sid=session.sid)
        raise ReplayError(
            f"resumed frame seq {seq} <= last accepted {session.seq}")
    _, nonce_len = SUITES[session.suite]
    nonce = _frame_nonce(session, seq, nonce_len)
    bound = aad + b"|seq|" + seq.to_bytes(8, "big")
    if session.suite == "chacha20poly1305":
        plaintext = aead.open_(session.key, nonce, body, aad=bound)
    else:
        try:
            tag = b64decode(env["tag"])
        except (KeyError, TypeError) as exc:
            raise DecryptionError("resumed CBC frame carries no tag") from exc
        expected = hmac_sha256(session.mac_key, bound + body)[:_TAG_LEN]
        if not constant_time_eq(tag, expected):
            raise DecryptionError("resumed frame failed authentication")
        plaintext = CBC(session.key).decrypt(body, nonce)
    session.seq = seq
    session.uses += 1
    return plaintext


class SenderResumeCache:
    """Sender side: live sessions keyed by recipient key fingerprint (hex).

    Bounded three ways — TTL, per-session use budget, LRU peer cap — so
    the sender always re-keys with a full signed envelope before the
    receiver's (equally bounded) store would reject the session.
    """

    def __init__(self, ttl: float = 300.0, max_uses: int = 256,
                 max_peers: int = 1024) -> None:
        self.ttl = ttl
        self.max_uses = max_uses
        self.max_peers = max_peers
        self._sessions: OrderedDict[str, ResumeSession] = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, fingerprint: str, now: float) -> ResumeSession | None:
        """The live session for a recipient, or None (then re-key)."""
        registry = obs.get_registry()
        session = self._sessions.get(fingerprint)
        if session is not None and (now - session.created_at > self.ttl
                                    or session.uses >= self.max_uses):
            del self._sessions[fingerprint]
            registry.incr("crypto.resume.expired")
            session = None
        if session is None:
            registry.incr("crypto.resume.miss")
            return None
        self._sessions.move_to_end(fingerprint)
        registry.incr("crypto.resume.hit")
        return session

    def store(self, fingerprint: str, seed: bytes, suite: str,
              now: float) -> ResumeSession:
        """Install a fresh session after sealing a resumable envelope."""
        session = derive_session(seed, suite, now)
        self._sessions[fingerprint] = session
        self._sessions.move_to_end(fingerprint)
        registry = obs.get_registry()
        registry.incr("crypto.resume.store")
        while len(self._sessions) > self.max_peers:
            self._sessions.popitem(last=False)
            registry.incr("crypto.resume.evicted")
        return session

    def invalidate(self, fingerprint: str | None = None) -> None:
        if fingerprint is None:
            self._sessions.clear()
        else:
            self._sessions.pop(fingerprint, None)

    def invalidate_sid(self, sid: str) -> bool:
        """Drop the session with this public id, if we hold it.

        Serves ``resume_reset`` notices: a receiver that cannot map a
        resumed frame asks the sender to re-key.  Returns whether a
        session was actually dropped — callers ignore resets for sids we
        never minted (they are unauthenticated and trivially forgeable;
        a forged reset for a *real* sid merely downgrades the next send
        to the paper-baseline full envelope)."""
        for fingerprint, session in self._sessions.items():
            if session.sid == sid:
                del self._sessions[fingerprint]
                obs.get_registry().incr("crypto.resume.reset_applied")
                return True
        return False


@dataclass
class _StoreEntry:
    session: ResumeSession
    identity: Any


class ReceiverResumeStore:
    """Receiver side: sessions keyed by sid, bound to a sender identity.

    ``identity`` is opaque to the store (protocol code passes the
    sender's validated leaf credential); it comes back verbatim from
    :meth:`open` so callers can hold the frame to the same checks the
    establishing envelope passed.
    """

    def __init__(self, ttl: float = 300.0, max_uses: int = 256,
                 max_sessions: int = 1024) -> None:
        self.ttl = ttl
        self.max_uses = max_uses
        self.max_sessions = max_sessions
        self._sessions: OrderedDict[str, _StoreEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def register(self, seed: bytes, suite: str, identity: Any,
                 now: float) -> str:
        """Install the session a just-verified resumable envelope carried.

        Registering a sid we already hold is a no-op: a replayed
        establishing envelope (or a retried delivery of one) must not
        reset the live session's ``seq`` high-water mark — that would
        reopen every previously accepted frame for replay — nor refresh
        its TTL or LRU position.
        """
        session = derive_session(seed, suite, now)
        registry = obs.get_registry()
        if session.sid in self._sessions:
            registry.incr("crypto.resume.register_dup")
            return session.sid
        self._sessions[session.sid] = _StoreEntry(session, identity)
        self._sessions.move_to_end(session.sid)
        registry.incr("crypto.resume.register")
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            registry.incr("crypto.resume.evicted")
        return session.sid

    def open(self, env: dict[str, Any], aad: bytes,
             now: float) -> tuple[bytes, Any]:
        """Open a ``resume``-headed frame: returns (plaintext, identity)."""
        sid = env.get("resume")
        entry = self._sessions.get(sid) if isinstance(sid, str) else None
        registry = obs.get_registry()
        if entry is None:
            registry.incr("crypto.resume.miss")
            raise UnknownSessionError(
                f"unknown resumption session {sid!r}",
                sid=sid if isinstance(sid, str) else None)
        if (now - entry.session.created_at > self.ttl
                or entry.session.uses >= self.max_uses):
            del self._sessions[sid]
            registry.incr("crypto.resume.expired")
            raise UnknownSessionError(f"resumption session {sid} expired",
                                      sid=sid)
        plaintext = open_resumed(entry.session, env, aad=aad)
        self._sessions.move_to_end(sid)
        registry.incr("crypto.resume.open")
        return plaintext, entry.identity

    def invalidate(self) -> None:
        self._sessions.clear()
