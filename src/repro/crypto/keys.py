"""Key (de)serialization and fingerprints.

Keys cross the simulated wire inside XML documents, so the canonical
serialization is a flat dict of hex strings (JSON- and XML-friendly).
Private keys never leave a peer; only :class:`PublicKey` has a wire form.
"""

from __future__ import annotations

import json

from repro.crypto.rsa import KeyPair, PrivateKey, PublicKey
from repro.errors import InvalidKeyError
from repro.utils.encoding import from_hex, to_hex


def public_key_to_text(pub: PublicKey) -> str:
    """Serialize a public key to a compact JSON string."""
    return json.dumps(pub.to_dict(), sort_keys=True, separators=(",", ":"))


def public_key_from_text(text: str) -> PublicKey:
    """Parse a public key serialized by :func:`public_key_to_text`."""
    try:
        obj = json.loads(text)
    except (json.JSONDecodeError, TypeError) as exc:
        raise InvalidKeyError(f"public key is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise InvalidKeyError("public key JSON must be an object")
    return PublicKey.from_dict(obj)


def private_key_to_dict(priv: PrivateKey) -> dict:
    """Serialize a private key for local keystore persistence only."""
    return {
        "kty": "RSA-private",
        "n": hex(priv.n), "e": hex(priv.e), "d": hex(priv.d),
        "p": hex(priv.p), "q": hex(priv.q),
    }


def private_key_from_dict(obj: dict) -> PrivateKey:
    """Parse :func:`private_key_to_dict` output, recomputing CRT params."""
    try:
        if obj.get("kty") != "RSA-private":
            raise KeyError("kty")
        return PrivateKey(
            n=int(obj["n"], 16), e=int(obj["e"], 16), d=int(obj["d"], 16),
            p=int(obj["p"], 16), q=int(obj["q"], 16),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidKeyError(f"malformed private key encoding: {exc!r}") from exc


def keypair_to_dict(kp: KeyPair) -> dict:
    return {"public": kp.public.to_dict(), "private": private_key_to_dict(kp.private)}


def keypair_from_dict(obj: dict) -> KeyPair:
    try:
        pub = PublicKey.from_dict(obj["public"])
        priv = private_key_from_dict(obj["private"])
    except (KeyError, TypeError) as exc:
        raise InvalidKeyError(f"malformed keypair encoding: {exc!r}") from exc
    if priv.public_key() != pub:
        raise InvalidKeyError("public and private halves do not match")
    return KeyPair(public=pub, private=priv)


def fingerprint_hex(pub: PublicKey) -> str:
    """Hex form of the key fingerprint (readable CBID material)."""
    return to_hex(pub.fingerprint())


def fingerprint_from_hex(text: str) -> bytes:
    return from_hex(text)
