"""HMAC-DRBG (NIST SP 800-90A) — the package's only source of randomness.

Every component that needs random bytes (RSA keygen, challenges, session
ids, symmetric keys, the network simulator) draws from an HMAC-DRBG.  A
DRBG seeded from ``os.urandom`` behaves like a CSPRNG; a DRBG seeded from a
fixed byte string makes an entire protocol run reproducible, which is what
the tests and the simulated benchmarks rely on.
"""

from __future__ import annotations

import os

from repro.crypto.hmac import hmac_sha256


class HmacDrbg:
    """Deterministic random bit generator per SP 800-90A (HMAC variant).

    Reseeding and additional-input paths are implemented; prediction
    resistance is out of scope for a simulation substrate.
    """

    #: SP 800-90A limit on a single generate call (we are far more generous
    #: than needed but keep a cap so bugs cannot ask for gigabytes).
    MAX_BYTES_PER_REQUEST = 1 << 16

    def __init__(self, seed: bytes | None = None, personalization: bytes = b"") -> None:
        if seed is None:
            seed = os.urandom(48)
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed_counter = 1
        self._update(seed + personalization)

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, n: int, additional: bytes = b"") -> bytes:
        """Return ``n`` pseudo-random bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        if n > self.MAX_BYTES_PER_REQUEST:
            # Split internally; keeps the external API convenient.
            out = bytearray()
            remaining = n
            while remaining:
                chunk = min(remaining, self.MAX_BYTES_PER_REQUEST)
                out += self.generate(chunk, additional)
                additional = b""
                remaining -= chunk
            return bytes(out)
        if additional:
            self._update(additional)
        out = bytearray()
        while len(out) < n:
            self._value = hmac_sha256(self._key, self._value)
            out += self._value
        self._update(additional)
        self._reseed_counter += 1
        return bytes(out[:n])

    # -- convenience draws ------------------------------------------------

    def rand_bits(self, bits: int) -> int:
        """Uniform integer in ``[0, 2^bits)``."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        n_bytes = (bits + 7) // 8
        value = int.from_bytes(self.generate(n_bytes), "big")
        return value >> (n_bytes * 8 - bits)

    def rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        while True:
            value = self.rand_bits(bits)
            if value < bound:
                return value

    def rand_range(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi)``."""
        if hi <= lo:
            raise ValueError("empty range")
        return lo + self.rand_below(hi - lo)

    def uniform(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.rand_bits(53) / (1 << 53)

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child generator (domain-separated)."""
        return HmacDrbg(seed=self.generate(48), personalization=label)


def system_drbg() -> HmacDrbg:
    """A DRBG seeded from the operating system entropy pool."""
    return HmacDrbg(seed=os.urandom(48), personalization=b"repro-system")
