"""Link-layer send scheduling: bounded queues, batching, compression.

Every overlay primitive used to cost one wire unit per frame: the TCP
backend issued one ``writer.write`` per datagram and the simulator one
delivery per :meth:`~repro.sim.network.SimNetwork.send`.  This module
adds the missing link layer between "the overlay wants this frame
sent" and "bytes hit the wire":

* **per-destination bounded send queues** — frames to one ``(src,
  dst)`` link coalesce into a single BATCH wire unit
  (:func:`repro.net.framing.encode_batch_payload`), capped by
  :attr:`LinkPolicy.max_batch_frames` / ``max_batch_bytes``;
* **adaptive flush** (the xpra batch/delay shape) — an idle link
  flushes immediately, a busy one widens its coalescing window as
  queue depth grows (:meth:`LinkPolicy.delay_for`);
* **negotiated compression** — a zlib level agreed per link in the
  ``link_caps_req/ok`` capability exchange
  (:meth:`LinkScheduler.set_link_compression`) is applied to batch
  payloads above :attr:`LinkPolicy.min_compress_bytes`;
* **explicit backpressure** — a full queue either force-flushes
  ("defer": the producer pays the flush latency) or drops the newest
  frame ("drop"); either way the link's circuit breaker is fed, so a
  dead destination trips :class:`~repro.errors.CircuitOpenError`
  fail-fast instead of buffering without bound.

The scheduler is transport-agnostic: backends inject ``send_single``
(legacy one-frame wire unit, byte-identical to the pre-batching path)
and ``send_batch`` (one coalesced wire unit) callbacks, plus an
optional ``defer(delay, callback)`` timer hook (the TCP backend arms
``loop.call_later``; the simulator drains queues deterministically at
the outermost network-operation boundary instead).

Batching only exists where it is asked for: no scheduler is created
until ``configure_links`` is called on a transport, and the
:data:`FLAGS` switches (`frame_batching`, `frame_compression`) are
pure kill-switches for ablation — flipping one off reproduces the
legacy wire byte-for-byte, which the backend-parity suite checks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import CircuitOpenError
from repro.net import framing

#: Every link-layer switch, in bench-ablation report order.
FLAG_NAMES = (
    "frame_batching",
    "frame_compression",
)


class LinkFlags:
    """Kill-switches for the link layer.  One global instance, ``FLAGS``."""

    __slots__ = FLAG_NAMES

    def __init__(self, enabled: bool = True) -> None:
        for name in FLAG_NAMES:
            setattr(self, name, enabled)

    def set_all(self, enabled: bool) -> "LinkFlags":
        for name in FLAG_NAMES:
            setattr(self, name, enabled)
        return self

    def to_dict(self) -> dict[str, bool]:
        return {name: getattr(self, name) for name in FLAG_NAMES}

    def apply(self, **flags: bool) -> "LinkFlags":
        for name, value in flags.items():
            if name not in FLAG_NAMES:
                raise ValueError(f"unknown link flag {name!r}")
            setattr(self, name, value)
        return self


#: Consulted on every scheduled send; both switches default to on, but
#: nothing batches until a transport is given a scheduler.
FLAGS = LinkFlags(enabled=True)


@contextmanager
def flags(**overrides: bool):
    """Temporarily override link switches (``all=False`` for legacy)."""
    saved = FLAGS.to_dict()
    try:
        base = overrides.pop("all", None)
        if base is not None:
            FLAGS.set_all(bool(base))
        FLAGS.apply(**overrides)
        yield FLAGS
    finally:
        FLAGS.apply(**saved)


@dataclass(frozen=True)
class LinkPolicy:
    """Tuning knobs for one transport's link scheduler."""

    #: most frames one BATCH wire unit may carry
    max_batch_frames: int = 16
    #: most payload bytes one BATCH wire unit may carry
    max_batch_bytes: int = 65536
    #: coalescing window for a queue holding one frame (seconds)
    base_delay_s: float = 0.002
    #: ceiling the window widens toward as depth grows (seconds)
    max_delay_s: float = 0.02
    #: a link quiet for this long flushes its next frame immediately
    idle_flush_s: float = 0.002
    #: bound on queued frames per link before the overflow policy fires
    max_queue_frames: int = 256
    #: "defer" force-flushes (producer pays), "drop" sheds the newest
    overflow: str = "defer"
    #: default zlib level offered in capability negotiation (0 = off)
    compress_level: int = 0
    #: batches smaller than this never compress
    min_compress_bytes: int = 512
    #: advertisements per anti-entropy delta frame (federation sync)
    delta_batch: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.max_batch_frames <= framing.MAX_BATCH_FRAMES:
            raise ValueError(
                f"max_batch_frames must be in [1, {framing.MAX_BATCH_FRAMES}]")
        if self.max_queue_frames < 1:
            raise ValueError("max_queue_frames must be positive")
        if self.overflow not in ("defer", "drop"):
            raise ValueError(f"unknown overflow policy {self.overflow!r}")
        if not 0 <= self.compress_level <= 9:
            raise ValueError("compress_level must be a zlib level (0..9)")
        if self.delta_batch < 1:
            raise ValueError("delta_batch must be positive")

    def delay_for(self, depth: int) -> float:
        """Coalescing window for a queue ``depth`` frames deep.

        Grows linearly with depth from ``base_delay_s`` to
        ``max_delay_s`` — a backlogged link waits longer and ships
        bigger units, an almost-idle one stays low-latency.
        """
        return min(self.max_delay_s, self.base_delay_s * max(1, depth))


#: Backend callbacks: (src, dst, payload) -> delivered.
SendSingle = Callable[[str, str, bytes], bool]
SendBatch = Callable[[str, str, bytes], bool]

_M_ENQUEUED = obs.InternedCounter("net.queue.enqueued")
_M_DROP = obs.InternedCounter("net.queue.drop")
_M_DEFER = obs.InternedCounter("net.queue.defer")
_M_FLUSH = obs.InternedCounter("net.queue.flush")
_M_BATCH_UNITS = obs.InternedCounter("net.batch.units")
_M_BATCH_FRAMES = obs.InternedHistogram("net.batch.frames")
_M_C_UNITS = obs.InternedCounter("net.compress.units")
_M_C_IN = obs.InternedCounter("net.compress.bytes_in")
_M_C_OUT = obs.InternedCounter("net.compress.bytes_out")
_M_C_RATIO = obs.InternedHistogram("net.compress.ratio")


class _LinkQueue:
    """Pending frames for one (src, dst) link."""

    __slots__ = ("frames", "bytes", "first_at", "last_at")

    def __init__(self) -> None:
        self.frames: list[bytes] = []
        self.bytes = 0
        self.first_at = 0.0
        self.last_at: float | None = None


class LinkScheduler:
    """Per-link send queues with adaptive flush for one transport.

    Thread-safe: the TCP backend enqueues from worker threads and
    pumps from timer callbacks; the simulator is single-threaded and
    pays one uncontended RLock acquire per send.
    """

    def __init__(self, policy: LinkPolicy, *,
                 clock_now: Callable[[], float],
                 send_single: SendSingle,
                 send_batch: SendBatch,
                 breaker_factory: Callable[[str], object] | None = None,
                 defer: Callable[[float, Callable[[], None]], None] | None = None) -> None:
        self.policy = policy
        self._now = clock_now
        self._send_single = send_single
        self._send_batch = send_batch
        self._breaker_factory = breaker_factory
        self._defer = defer
        self._lock = threading.RLock()
        self._queues: dict[tuple[str, str], _LinkQueue] = {}
        self._breakers: dict[str, object] = {}
        self._levels: dict[tuple[str, str], int] = {}
        self._cork_depth = 0
        self._flushing = False

    # -- negotiation ---------------------------------------------------------

    def set_link_compression(self, src: str, dst: str, level: int) -> None:
        """Record the zlib level negotiated for the ``src -> dst`` link."""
        if not 0 <= level <= 9:
            raise ValueError("negotiated level must be a zlib level (0..9)")
        with self._lock:
            self._levels[(src, dst)] = level

    def link_compression(self, src: str, dst: str) -> int:
        if not FLAGS.frame_compression:
            return 0
        return self._levels.get((src, dst), 0)

    # -- corking -------------------------------------------------------------

    @contextmanager
    def corked(self):
        """Hold flushes open for the duration (burst coalescing)."""
        with self._lock:
            self._cork_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._cork_depth -= 1
                if self._cork_depth == 0:
                    self.flush_all()

    @property
    def corked_now(self) -> bool:
        return self._cork_depth > 0

    # -- queueing ------------------------------------------------------------

    def _breaker(self, dst: str):
        if self._breaker_factory is None:
            return None
        breaker = self._breakers.get(dst)
        if breaker is None:
            breaker = self._breakers[dst] = self._breaker_factory(dst)
        return breaker

    def _depth(self) -> int:
        return sum(len(q.frames) for q in self._queues.values())

    def _set_depth_gauge(self) -> None:
        obs.get_registry().set_gauge("net.queue.depth", self._depth())

    def enqueue(self, src: str, dst: str, payload: bytes,
                coalesce: bool | None = None) -> bool:
        """Accept one datagram for ``src -> dst``.

        ``coalesce`` — ``True`` queues, ``False`` flushes the link now
        (the new frame rides along), ``None`` applies the idle
        heuristic: a link quiet for ``idle_flush_s`` flushes
        immediately, a busy one queues.  Corking always queues, except
        when the bounded queue overflows.

        Returns the delivery result when the call flushed
        synchronously, ``True`` when the frame was queued, ``False``
        when it was shed (open breaker or overflow-drop).
        """
        with self._lock:
            breaker = self._breaker(dst)
            if breaker is not None:
                try:
                    breaker.before_call()
                except CircuitOpenError:
                    _M_DROP.incr()
                    return False
            now = self._now()
            queue = self._queues.get((src, dst))
            if queue is None:
                queue = self._queues[(src, dst)] = _LinkQueue()
            if self._cork_depth > 0:
                coalesce = True
            elif coalesce is None:
                coalesce = bool(queue.frames) or (
                    queue.last_at is not None
                    and now - queue.last_at < self.policy.idle_flush_s)
            _M_ENQUEUED.incr()
            if len(queue.frames) >= self.policy.max_queue_frames:
                if self.policy.overflow == "drop":
                    _M_DROP.incr()
                    if breaker is not None:
                        breaker.record_failure()
                    queue.last_at = now
                    return False
                _M_DEFER.incr()
                if breaker is not None:
                    breaker.record_failure()
                self._flush_queue(src, dst, queue)
            if not queue.frames:
                queue.first_at = now
            queue.frames.append(bytes(payload))
            queue.bytes += len(payload)
            queue.last_at = now
            if not coalesce:
                return self._flush_queue(src, dst, queue)
            if (len(queue.frames) >= self.policy.max_batch_frames
                    or queue.bytes >= self.policy.max_batch_bytes):
                return self._flush_queue(src, dst, queue)
            self._set_depth_gauge()
            if self._defer is not None:
                deadline = queue.first_at + self.policy.delay_for(
                    len(queue.frames))
                self._defer(max(0.0, deadline - now), self.pump)
            return True

    # -- flushing ------------------------------------------------------------

    def _flush_queue(self, src: str, dst: str, queue: _LinkQueue) -> bool:
        """Ship everything queued on one link, in units within the caps."""
        if self._flushing:
            return True  # re-entered from a drain hook mid-flush
        self._flushing = True
        try:
            delivered = True
            while queue.frames:
                take, size = 0, 0
                for payload in queue.frames:
                    if take and (take >= self.policy.max_batch_frames
                                 or size + len(payload) > self.policy.max_batch_bytes):
                        break
                    take += 1
                    size += len(payload)
                unit, queue.frames = queue.frames[:take], queue.frames[take:]
                queue.bytes -= size
                delivered = self._ship(src, dst, unit, size) and delivered
            queue.first_at = 0.0
            _M_FLUSH.incr()
            self._set_depth_gauge()
            return delivered
        finally:
            self._flushing = False

    def _ship(self, src: str, dst: str, unit: list[bytes], size: int) -> bool:
        registry = obs.get_registry()
        if len(unit) == 1:
            ok = self._send_single(src, dst, unit[0])
        else:
            level = self.link_compression(src, dst)
            payload = framing.encode_batch_payload(
                unit, compress_level=level,
                min_compress_bytes=self.policy.min_compress_bytes)
            if registry.enabled:
                _M_BATCH_UNITS.incr()
                _M_BATCH_FRAMES.observe(len(unit))
                if payload and payload[0] & framing.BATCH_FLAG_ZLIB:
                    _M_C_UNITS.incr()
                    _M_C_IN.incr(size)
                    _M_C_OUT.incr(len(payload))
                    _M_C_RATIO.observe(len(payload) / max(1, size))
            ok = self._send_batch(src, dst, payload)
        breaker = self._breaker(dst)
        if breaker is not None:
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()
        return ok

    def pump(self) -> None:
        """Flush every queue whose coalescing window has expired."""
        with self._lock:
            if self._cork_depth > 0 or self._flushing:
                return
            now = self._now()
            for (src, dst), queue in list(self._queues.items()):
                if not queue.frames:
                    continue
                deadline = queue.first_at + self.policy.delay_for(
                    len(queue.frames))
                if now >= deadline:
                    self._flush_queue(src, dst, queue)
                elif self._defer is not None:
                    self._defer(deadline - now, self.pump)

    def flush_all(self) -> None:
        """Ship every queued frame now (cork exit, transport drain)."""
        with self._lock:
            if self._flushing:
                return
            for (src, dst), queue in list(self._queues.items()):
                if queue.frames:
                    self._flush_queue(src, dst, queue)

    def flush_link(self, src: str, dst: str) -> None:
        """Ship one link's queue (ordering barrier before a request)."""
        with self._lock:
            queue = self._queues.get((src, dst))
            if queue is not None and queue.frames and not self._flushing:
                self._flush_queue(src, dst, queue)

    def flush_for(self, address: str) -> None:
        """Ship everything an endpoint queued (it is unregistering)."""
        with self._lock:
            if self._flushing:
                return
            for (src, dst), queue in list(self._queues.items()):
                if src == address and queue.frames:
                    self._flush_queue(src, dst, queue)

    def pending_frames(self, src: str | None = None) -> int:
        """Queued frame count (all links, or one endpoint's)."""
        with self._lock:
            return sum(len(q.frames) for (qsrc, _), q in self._queues.items()
                       if src is None or qsrc == src)
