"""Adversary hooks as part of the transport contract.

The simulator has always exposed the §2.3 threat surface directly:
**taps** passively observe every frame and **interceptors** may
rewrite, redirect or drop them (:mod:`repro.sim.network`).  The attack
drivers in :mod:`repro.attacks` and the fault injector in
:mod:`repro.sim.faults` are built on those two hooks.

This module promotes that surface to the :class:`~repro.net.base.
Transport` contract so the same adversary code runs against any
backend:

* :class:`~repro.sim.network.SimNetwork` implements the surface
  natively (frames cross it mid-wire);
* :class:`~repro.net.sim.SimTransport` delegates to its network;
* :class:`~repro.net.tcp.TcpTransport` applies an equivalent chain on
  its outbound path — every ``send`` datagram, the request leg before
  the socket write and the response leg after it — which covers all
  traffic whenever the processes under attack share the transport
  object (the in-process attack-evaluation setup).

:func:`adversary_surface` is the coercion helper attack code calls:
give it whatever the caller holds — a bare network, a transport, or
anything already exposing the hooks — and it returns the object to
install taps and interceptors on.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.net.base import Frame

__all__ = ["AdversarySurface", "Interceptor", "Tap", "adversary_surface"]


@runtime_checkable
class Tap(Protocol):
    """Passive observer of all frames (an eavesdropper)."""

    def observe(self, frame: Frame) -> None: ...


#: An interceptor sees a frame and returns a (possibly different) frame
#: to deliver, or ``None`` to drop it.  The returned frame's ``dst`` may
#: be rewritten, which models DNS-spoofing style redirection.
class Interceptor(Protocol):
    def __call__(self, frame: Frame) -> Frame | None: ...


@runtime_checkable
class AdversarySurface(Protocol):
    """Where taps and interceptors are installed.

    Both simulator classes and :class:`~repro.net.tcp.TcpTransport`
    satisfy this; :func:`adversary_surface` finds it from whatever
    handle the attack code was given.
    """

    def add_tap(self, tap: Tap) -> None: ...

    def remove_tap(self, tap: Tap) -> None: ...

    def add_interceptor(self, interceptor: Interceptor) -> None: ...

    def remove_interceptor(self, interceptor: Interceptor) -> None: ...


def adversary_surface(backend) -> AdversarySurface:
    """The tap/interceptor surface behind ``backend``.

    Accepts a :class:`~repro.sim.network.SimNetwork`, any transport
    exposing the hooks itself (:class:`~repro.net.tcp.TcpTransport`),
    or a wrapper holding a ``.network`` that does
    (:class:`~repro.net.sim.SimTransport`).
    """
    if isinstance(backend, AdversarySurface):
        return backend
    inner = getattr(backend, "network", None)
    if inner is not None and isinstance(inner, AdversarySurface):
        return inner
    raise TypeError(
        f"{type(backend).__name__} exposes no adversary surface "
        "(add_tap/add_interceptor)")


def run_chain(taps, interceptors, frame: Frame) -> Frame | None:
    """Apply taps then interceptors to one frame — the shared semantics.

    Exactly :meth:`SimNetwork._through_adversaries`: every tap observes
    the (current) frame, then each interceptor may substitute or drop
    it.  Factored here so the TCP backend cannot drift from the
    simulator.
    """
    for tap in taps:
        tap.observe(frame)
    out: Frame | None = frame
    for interceptor in interceptors:
        out = interceptor(out)
        if out is None:
            return None
    return out
