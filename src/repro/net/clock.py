"""Real time behind the :class:`~repro.net.base.TransportClock` surface.

The simulator charges network transit and measured CPU work to a
virtual clock; on a socket backend time simply passes.  ``WallClock``
keeps the exact same method surface so retry backoff, timeout budgets,
credential validity windows and circuit breakers run unchanged — the
only behavioural difference is that :meth:`advance` (retry backoff)
really sleeps, and :meth:`cpu_section` measures without advancing
anything (the wall does that on its own).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class WallClock:
    """Monotonic wall time, zeroed at construction."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self.cpu_scale = 1.0
        #: cumulative seconds *accounted* as CPU work (informational)
        self.cpu_time = 0.0
        #: cumulative seconds *accounted* as network transit (informational)
        self.network_time = 0.0

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def advance(self, seconds: float) -> float:
        """A requested wait (retry backoff) really sleeps."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if seconds:
            time.sleep(seconds)
        return self.now

    def advance_network(self, seconds: float) -> float:
        """Transit time needs no modeling on a real link; account only."""
        self.network_time += seconds
        return self.now

    def charge_cpu(self, seconds: float) -> float:
        """CPU work already took real time; account only."""
        scaled = seconds * self.cpu_scale
        self.cpu_time += scaled
        return self.now

    @contextmanager
    def cpu_section(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.charge_cpu(time.perf_counter() - t0)

    def reset(self) -> None:
        self._t0 = time.monotonic()
        self.cpu_time = 0.0
        self.network_time = 0.0
