"""Length-prefixed wire framing for the socket backend.

One transport frame carries one serialized overlay message (the exact
bytes :meth:`repro.jxta.messages.Message.to_wire` produced, after the
optional :class:`~repro.jxta.transport.base.SecureTransport` wrap) plus
the minimal routing/correlation header a stream transport needs::

    frame   := u32 body_len (big-endian) | body
    body    := u8 kind | u64 request_id | u16 src_len | src utf-8 | payload

Kinds:

====  =========  ====================================================
0x00  DATA       one-way datagram (pipe semantics); no reply expected
0x01  REQUEST    request leg of a round trip; a RESPONSE or ERROR with
                 the same ``request_id`` must come back
0x02  RESPONSE   payload answers the matching REQUEST
0x03  ERROR      utf-8 reason; the matching REQUEST failed remotely
0x04  BATCH      one wire unit carrying several coalesced DATA
                 payloads (see the batch payload grammar below)
====  =========  ====================================================

A BATCH payload is a count-prefixed sequence of datagram payloads,
optionally zlib-compressed as a whole::

    batch   := u8 flags | u32 count | blob
    blob    := (u32 len | payload) * count          -- flags & 0x01 == 0
             | zlib(blob_uncompressed)              -- flags & 0x01 == 1

Batches carry only DATA semantics (``request_id`` 0); a decoder splits
them back into individual datagram frames *before* dispatch, so the
layers above the transport never observe coalescing.  Decoding bounds
the frame count, every inner length, and the decompressed size, so a
forged batch can neither balloon memory nor smuggle oversize frames
past :func:`check_length`.

``src`` is the sender's *logical* endpoint address ("peer:alice"), not
its socket address — the overlay routes, authenticates and seals by
logical address on both backends, so a TCP frame carries exactly the
information a simulator frame does.

The decoder enforces a hard body ceiling derived from the global
message-size cap (:func:`repro.jxta.messages.max_wire_bytes`) plus
header slack, so a garbage or adversarial length prefix cannot balloon
the read buffer.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import NetworkError
from repro.jxta import messages

KIND_DATA = 0x00
KIND_REQUEST = 0x01
KIND_RESPONSE = 0x02
KIND_ERROR = 0x03
KIND_BATCH = 0x04

_KINDS = frozenset({KIND_DATA, KIND_REQUEST, KIND_RESPONSE, KIND_ERROR,
                    KIND_BATCH})

#: struct layout of the fixed body prefix: kind, request_id, src_len
_PREFIX = struct.Struct(">BQH")

#: header room on top of the message-size cap (src address + prefix)
HEADER_SLACK = 4096

LENGTH_BYTES = 4


def max_body_bytes() -> int:
    """Current ceiling on one frame body (tracks the global wire cap)."""
    return messages.max_wire_bytes() + HEADER_SLACK


class FramingError(NetworkError):
    """A malformed transport frame (bad length, kind or header)."""


def encode_frame(kind: int, request_id: int, src: str, payload: bytes) -> bytes:
    """One ready-to-write frame: length prefix + body."""
    if kind not in _KINDS:
        raise FramingError(f"unknown frame kind {kind:#x}")
    src_bytes = src.encode("utf-8")
    if len(src_bytes) > 0xFFFF:
        raise FramingError("source address exceeds 65535 bytes")
    body = _PREFIX.pack(kind, request_id, len(src_bytes)) + src_bytes + payload
    if len(body) > max_body_bytes():
        raise FramingError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_body_bytes()}-byte framing cap")
    return struct.pack(">I", len(body)) + body


def decode_body(body: bytes) -> tuple[int, int, str, bytes]:
    """Split a frame body into (kind, request_id, src, payload)."""
    if len(body) < _PREFIX.size:
        raise FramingError(f"truncated frame body ({len(body)} bytes)")
    kind, request_id, src_len = _PREFIX.unpack_from(body)
    if kind not in _KINDS:
        raise FramingError(f"unknown frame kind {kind:#x}")
    src_end = _PREFIX.size + src_len
    if len(body) < src_end:
        raise FramingError("frame body shorter than its source address")
    try:
        src = body[_PREFIX.size:src_end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FramingError(f"undecodable source address: {exc}") from exc
    return kind, request_id, src, body[src_end:]


def check_length(length: int) -> int:
    """Validate a length prefix before reading the body it announces."""
    if length > max_body_bytes():
        raise FramingError(
            f"announced frame body of {length} bytes exceeds the "
            f"{max_body_bytes()}-byte framing cap")
    return length


# -- batched wire units -----------------------------------------------------

#: batch flags bit 0: the blob after the count is zlib-compressed
BATCH_FLAG_ZLIB = 0x01

#: hard ceiling on frames per batch (scheduler policies sit far below)
MAX_BATCH_FRAMES = 4096

#: struct layout of the batch payload prefix: flags, frame count
_BATCH_PREFIX = struct.Struct(">BI")


def _max_decompressed_bytes() -> int:
    """Zip-bomb guard: a batch blob may not inflate past this."""
    return max_body_bytes() * 4


def encode_batch_payload(payloads: list[bytes],
                         compress_level: int = 0,
                         min_compress_bytes: int = 512) -> bytes:
    """Pack datagram ``payloads`` into one BATCH payload.

    ``compress_level`` > 0 zlib-compresses the packed blob when it is at
    least ``min_compress_bytes`` long *and* compression actually shrinks
    it; otherwise the uncompressed form ships (the flags byte tells the
    decoder which it got).
    """
    if not payloads:
        raise FramingError("a batch must carry at least one frame")
    if len(payloads) > MAX_BATCH_FRAMES:
        raise FramingError(
            f"batch of {len(payloads)} frames exceeds the "
            f"{MAX_BATCH_FRAMES}-frame cap")
    parts = []
    for payload in payloads:
        if len(payload) > max_body_bytes():
            raise FramingError(
                f"batched frame of {len(payload)} bytes exceeds the "
                f"{max_body_bytes()}-byte framing cap")
        parts.append(struct.pack(">I", len(payload)))
        parts.append(payload)
    blob = b"".join(parts)
    flags = 0
    if compress_level > 0 and len(blob) >= min_compress_bytes:
        packed = zlib.compress(blob, compress_level)
        if len(packed) < len(blob):
            blob, flags = packed, BATCH_FLAG_ZLIB
    return _BATCH_PREFIX.pack(flags, len(payloads)) + blob


def decode_batch_payload(data: bytes) -> list[bytes]:
    """Split a BATCH payload back into its datagram payloads, in order."""
    if len(data) < _BATCH_PREFIX.size:
        raise FramingError(f"truncated batch payload ({len(data)} bytes)")
    flags, count = _BATCH_PREFIX.unpack_from(data)
    if flags & ~BATCH_FLAG_ZLIB:
        raise FramingError(f"unknown batch flags {flags:#x}")
    if not 1 <= count <= MAX_BATCH_FRAMES:
        raise FramingError(f"batch frame count {count} out of range")
    blob = data[_BATCH_PREFIX.size:]
    if flags & BATCH_FLAG_ZLIB:
        limit = _max_decompressed_bytes()
        try:
            inflater = zlib.decompressobj()
            blob = inflater.decompress(blob, limit)
            if inflater.unconsumed_tail:
                raise FramingError(
                    f"batch blob inflates past the {limit}-byte guard")
            blob += inflater.flush()
        except zlib.error as exc:
            raise FramingError(f"undecompressable batch blob: {exc}") from exc
    payloads: list[bytes] = []
    offset = 0
    for _ in range(count):
        if len(blob) - offset < 4:
            raise FramingError("batch blob shorter than its frame table")
        (length,) = struct.unpack_from(">I", blob, offset)
        check_length(length)
        offset += 4
        if len(blob) - offset < length:
            raise FramingError("batch frame truncated inside the blob")
        payloads.append(blob[offset:offset + length])
        offset += length
    if offset != len(blob):
        raise FramingError(
            f"{len(blob) - offset} trailing bytes after the last batched frame")
    return payloads


def encode_batch_frame(src: str, payloads: list[bytes],
                       compress_level: int = 0,
                       min_compress_bytes: int = 512) -> bytes:
    """One ready-to-write BATCH wire unit (length prefix + body)."""
    return encode_frame(
        KIND_BATCH, 0, src,
        encode_batch_payload(payloads, compress_level=compress_level,
                             min_compress_bytes=min_compress_bytes))


class FrameDecoder:
    """Incremental decoder for a byte stream of length-prefixed frames.

    Feed arbitrary chunks; completed ``(kind, request_id, src,
    payload)`` tuples come back in order.  Useful for tests and any
    integration that reads sockets without asyncio's ``readexactly``.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, int, str, bytes]]:
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < LENGTH_BYTES:
                break
            (length,) = struct.unpack_from(">I", self._buf)
            check_length(length)
            if len(self._buf) < LENGTH_BYTES + length:
                break
            body = bytes(self._buf[LENGTH_BYTES:LENGTH_BYTES + length])
            del self._buf[:LENGTH_BYTES + length]
            frames.append(decode_body(body))
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
