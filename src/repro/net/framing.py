"""Length-prefixed wire framing for the socket backend.

One transport frame carries one serialized overlay message (the exact
bytes :meth:`repro.jxta.messages.Message.to_wire` produced, after the
optional :class:`~repro.jxta.transport.base.SecureTransport` wrap) plus
the minimal routing/correlation header a stream transport needs::

    frame   := u32 body_len (big-endian) | body
    body    := u8 kind | u64 request_id | u16 src_len | src utf-8 | payload

Kinds:

====  =========  ====================================================
0x00  DATA       one-way datagram (pipe semantics); no reply expected
0x01  REQUEST    request leg of a round trip; a RESPONSE or ERROR with
                 the same ``request_id`` must come back
0x02  RESPONSE   payload answers the matching REQUEST
0x03  ERROR      utf-8 reason; the matching REQUEST failed remotely
====  =========  ====================================================

``src`` is the sender's *logical* endpoint address ("peer:alice"), not
its socket address — the overlay routes, authenticates and seals by
logical address on both backends, so a TCP frame carries exactly the
information a simulator frame does.

The decoder enforces a hard body ceiling derived from the global
message-size cap (:func:`repro.jxta.messages.max_wire_bytes`) plus
header slack, so a garbage or adversarial length prefix cannot balloon
the read buffer.
"""

from __future__ import annotations

import struct

from repro.errors import NetworkError
from repro.jxta import messages

KIND_DATA = 0x00
KIND_REQUEST = 0x01
KIND_RESPONSE = 0x02
KIND_ERROR = 0x03

_KINDS = frozenset({KIND_DATA, KIND_REQUEST, KIND_RESPONSE, KIND_ERROR})

#: struct layout of the fixed body prefix: kind, request_id, src_len
_PREFIX = struct.Struct(">BQH")

#: header room on top of the message-size cap (src address + prefix)
HEADER_SLACK = 4096

LENGTH_BYTES = 4


def max_body_bytes() -> int:
    """Current ceiling on one frame body (tracks the global wire cap)."""
    return messages.max_wire_bytes() + HEADER_SLACK


class FramingError(NetworkError):
    """A malformed transport frame (bad length, kind or header)."""


def encode_frame(kind: int, request_id: int, src: str, payload: bytes) -> bytes:
    """One ready-to-write frame: length prefix + body."""
    if kind not in _KINDS:
        raise FramingError(f"unknown frame kind {kind:#x}")
    src_bytes = src.encode("utf-8")
    if len(src_bytes) > 0xFFFF:
        raise FramingError("source address exceeds 65535 bytes")
    body = _PREFIX.pack(kind, request_id, len(src_bytes)) + src_bytes + payload
    if len(body) > max_body_bytes():
        raise FramingError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_body_bytes()}-byte framing cap")
    return struct.pack(">I", len(body)) + body


def decode_body(body: bytes) -> tuple[int, int, str, bytes]:
    """Split a frame body into (kind, request_id, src, payload)."""
    if len(body) < _PREFIX.size:
        raise FramingError(f"truncated frame body ({len(body)} bytes)")
    kind, request_id, src_len = _PREFIX.unpack_from(body)
    if kind not in _KINDS:
        raise FramingError(f"unknown frame kind {kind:#x}")
    src_end = _PREFIX.size + src_len
    if len(body) < src_end:
        raise FramingError("frame body shorter than its source address")
    try:
        src = body[_PREFIX.size:src_end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FramingError(f"undecodable source address: {exc}") from exc
    return kind, request_id, src, body[src_end:]


def check_length(length: int) -> int:
    """Validate a length prefix before reading the body it announces."""
    if length > max_body_bytes():
        raise FramingError(
            f"announced frame body of {length} bytes exceeds the "
            f"{max_body_bytes()}-byte framing cap")
    return length


class FrameDecoder:
    """Incremental decoder for a byte stream of length-prefixed frames.

    Feed arbitrary chunks; completed ``(kind, request_id, src,
    payload)`` tuples come back in order.  Useful for tests and any
    integration that reads sockets without asyncio's ``readexactly``.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, int, str, bytes]]:
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < LENGTH_BYTES:
                break
            (length,) = struct.unpack_from(">I", self._buf)
            check_length(length)
            if len(self._buf) < LENGTH_BYTES + length:
                break
            body = bytes(self._buf[LENGTH_BYTES:LENGTH_BYTES + length])
            del self._buf[:LENGTH_BYTES + length]
            frames.append(decode_body(body))
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
