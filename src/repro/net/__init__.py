"""Transport backends for the endpoint runtime.

The overlay's endpoints are transport-agnostic: the same broker,
client, federation and secure-* code runs on

* :class:`~repro.net.sim.SimTransport` — the deterministic
  discrete-event simulator (the test harness), and
* :class:`~repro.net.tcp.TcpTransport` — real asyncio TCP sockets with
  length-prefixed framing (the production path).

See ``docs/TRANSPORTS.md`` for the backend matrix, the framing format
and the lifecycle-hook contract.

The backend classes are exported lazily: ``repro.sim.network`` imports
:class:`~repro.net.base.Frame` from this package, so eagerly importing
the sim backend here would cycle through ``repro.sim``.
"""

from repro.net.adversary import AdversarySurface, adversary_surface
from repro.net.base import (
    Frame,
    FrameHandler,
    PeerHook,
    Transport,
    TransportClock,
    as_transport,
)
from repro.net.clock import WallClock

__all__ = [
    "AdversarySurface",
    "adversary_surface",
    "Frame",
    "FrameHandler",
    "LinkPolicy",
    "LinkScheduler",
    "PeerHook",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransportClock",
    "WallClock",
    "as_transport",
]


def __getattr__(name: str):
    if name == "SimTransport":
        from repro.net.sim import SimTransport
        return SimTransport
    if name == "TcpTransport":
        from repro.net.tcp import TcpTransport
        return TcpTransport
    if name in ("LinkPolicy", "LinkScheduler"):
        # Lazy for the same reason as the backends: repro.net.framing
        # (pulled in by repro.net.linkq) imports repro.jxta, which
        # imports this package back.
        from repro.net import linkq
        return getattr(linkq, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
