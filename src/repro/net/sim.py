"""The simulator as a :class:`~repro.net.base.Transport` backend.

A thin adapter: delivery, adversary hooks, link models and the virtual
clock all stay in :class:`~repro.sim.network.SimNetwork`; this class
only adds the per-registration connect/close lifecycle bookkeeping the
transport contract promises.  On a simulated star network there is no
socket to accept, so "connect" is synthesized from the first frame a
peer delivers here, and every known peer is "closed" at unregister
time — which is exactly when a socket backend would drop the
connections of a disappearing endpoint.
"""

from __future__ import annotations

from repro.net.base import Frame, FrameHandler, PeerHook
from repro.sim.network import SimNetwork


class SimTransport:
    """Adapter presenting a :class:`SimNetwork` as a transport backend."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        self.clock = network.clock
        #: per-address lifecycle state: (on_connect, on_close, seen peers)
        self._lifecycles: dict[str, tuple[PeerHook | None, PeerHook | None,
                                          set[str]]] = {}

    def register(self, address: str, handler: FrameHandler, *,
                 on_connect: PeerHook | None = None,
                 on_close: PeerHook | None = None) -> None:
        if on_connect is None and on_close is None:
            self.network.register(address, handler)
            return
        seen: set[str] = set()
        self._lifecycles[address] = (on_connect, on_close, seen)

        def hooked(frame: Frame) -> bytes | None:
            if on_connect is not None and frame.src not in seen:
                seen.add(frame.src)
                on_connect(frame.src)
            elif frame.src not in seen:
                seen.add(frame.src)
            return handler(frame)

        self.network.register(address, hooked)

    def unregister(self, address: str) -> None:
        lifecycle = self._lifecycles.pop(address, None)
        self.network.unregister(address)
        if lifecycle is not None:
            _, on_close, seen = lifecycle
            if on_close is not None:
                for peer in sorted(seen):
                    on_close(peer)

    def is_registered(self, address: str) -> bool:
        return self.network.is_registered(address)

    def send(self, src: str, dst: str, payload: bytes) -> bool:
        return self.network.send(src, dst, payload)

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        return self.network.request(src, dst, payload)
