"""The simulator as a :class:`~repro.net.base.Transport` backend.

A thin adapter: delivery, adversary hooks, link models and the virtual
clock all stay in :class:`~repro.sim.network.SimNetwork`; this class
only adds the per-registration connect/close lifecycle bookkeeping the
transport contract promises.  On a simulated star network there is no
socket to accept, so "connect" is synthesized from the first frame a
peer delivers here, and every known peer is "closed" at unregister
time — which is exactly when a socket backend would drop the
connections of a disappearing endpoint.

With :meth:`SimTransport.configure_links` a link scheduler
(:class:`~repro.net.linkq.LinkScheduler`) sits between :meth:`send`
and the network: datagrams issued *inside* a handler (the window
:attr:`SimNetwork.op_depth` exposes) or under :meth:`corked` coalesce
into one simulated delivery per BATCH wire unit — taps, interceptors
and the link model see the batch as a single frame, exactly as a
socket would carry it — and the network's outermost-operation drain
guarantees every queued frame is delivered before simulation code
regains control.  Top-level sends outside a cork flush immediately as
legacy single-frame units, so an unbatched caller cannot tell the
scheduler is there.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.errors import NetworkError
from repro.net import framing, linkq
from repro.net.base import Frame, FrameHandler, PeerHook
from repro.sim.network import SimNetwork

#: Prefix marking a simulated BATCH wire unit.  Serialized overlay
#: messages are JSON or sealed-envelope bytes and never start with a
#: NUL byte, so the tag cannot collide with a real payload.
SIM_BATCH_MAGIC = b"\x00repro:batch\x01"


class SimTransport:
    """Adapter presenting a :class:`SimNetwork` as a transport backend."""

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        self.clock = network.clock
        self.scheduler: linkq.LinkScheduler | None = None
        #: per-address lifecycle state: (on_connect, on_close, seen peers)
        self._lifecycles: dict[str, tuple[PeerHook | None, PeerHook | None,
                                          set[str]]] = {}

    # -- link scheduling -----------------------------------------------------

    def configure_links(self, policy: linkq.LinkPolicy | None = None, *,
                        breaker_factory=None) -> linkq.LinkScheduler:
        """Install (or replace) the link scheduler for this endpoint's sends."""
        self.scheduler = linkq.LinkScheduler(
            policy if policy is not None else linkq.LinkPolicy(),
            clock_now=lambda: self.clock.now,
            send_single=self._ship_unit,
            send_batch=lambda src, dst, payload: self._ship_unit(
                src, dst, SIM_BATCH_MAGIC + payload),
            breaker_factory=breaker_factory)
        self.network.add_flush_hook(self._drain_hook)
        return self.scheduler

    def _drain_hook(self) -> None:
        scheduler = self.scheduler
        if scheduler is not None and not scheduler.corked_now:
            scheduler.flush_all()

    def _ship_unit(self, src: str, dst: str, payload: bytes) -> bool:
        try:
            return self.network.send(src, dst, payload)
        except NetworkError:
            # The destination vanished after the frame was queued: a
            # best-effort datagram loss, not a caller error.
            return False

    def corked(self):
        """Batch every send inside the context into shared wire units."""
        if self.scheduler is None or not linkq.FLAGS.frame_batching:
            return nullcontext()
        return self.scheduler.corked()

    def set_link_compression(self, src: str, dst: str, level: int) -> None:
        if self.scheduler is None:
            raise NetworkError("configure_links() before negotiating compression")
        self.scheduler.set_link_compression(src, dst, level)

    # -- registration --------------------------------------------------------

    def _split_batches(self, handler: FrameHandler) -> FrameHandler:
        """Unwrap BATCH wire units back into per-frame handler calls."""

        def split(frame: Frame) -> bytes | None:
            if not frame.payload.startswith(SIM_BATCH_MAGIC):
                return handler(frame)
            payloads = framing.decode_batch_payload(
                frame.payload[len(SIM_BATCH_MAGIC):])
            for payload in payloads:
                handler(Frame(src=frame.src, dst=frame.dst,
                              payload=payload, sent_at=frame.sent_at))
            return None

        return split

    def register(self, address: str, handler: FrameHandler, *,
                 on_connect: PeerHook | None = None,
                 on_close: PeerHook | None = None) -> None:
        if on_connect is None and on_close is None:
            self.network.register(address, self._split_batches(handler))
            return
        seen: set[str] = set()
        self._lifecycles[address] = (on_connect, on_close, seen)

        def hooked(frame: Frame) -> bytes | None:
            if on_connect is not None and frame.src not in seen:
                seen.add(frame.src)
                on_connect(frame.src)
            elif frame.src not in seen:
                seen.add(frame.src)
            return handler(frame)

        self.network.register(address, self._split_batches(hooked))

    def unregister(self, address: str) -> None:
        if self.scheduler is not None:
            self.scheduler.flush_for(address)
        lifecycle = self._lifecycles.pop(address, None)
        self.network.unregister(address)
        if lifecycle is not None:
            _, on_close, seen = lifecycle
            if on_close is not None:
                for peer in sorted(seen):
                    on_close(peer)

    def is_registered(self, address: str) -> bool:
        return self.network.is_registered(address)

    # -- adversary surface ---------------------------------------------------
    # Delegated: on the simulator, frames cross the network mid-wire, so
    # the hooks live there (see repro.net.adversary for the contract).

    def add_tap(self, tap) -> None:
        self.network.add_tap(tap)

    def remove_tap(self, tap) -> None:
        self.network.remove_tap(tap)

    def add_interceptor(self, interceptor) -> None:
        self.network.add_interceptor(interceptor)

    def remove_interceptor(self, interceptor) -> None:
        self.network.remove_interceptor(interceptor)

    # -- delivery ------------------------------------------------------------

    def send(self, src: str, dst: str, payload: bytes) -> bool:
        scheduler = self.scheduler
        if scheduler is None or not linkq.FLAGS.frame_batching:
            return self.network.send(src, dst, payload)
        if not self.network.is_registered(dst):
            raise NetworkError(f"no endpoint registered at {dst!r}")
        # Coalesce only where delivery order stays observable: inside a
        # handler of an in-flight network op (drained before the
        # outermost call returns) or under an explicit cork.
        return scheduler.enqueue(src, dst, payload,
                                 coalesce=self.network.op_depth > 0)

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        if self.scheduler is not None and linkq.FLAGS.frame_batching:
            # Ordering barrier: datagrams queued to this link must hit
            # the wire before the request does.
            self.scheduler.flush_link(src, dst)
        return self.network.request(src, dst, payload)
