"""Real sockets: an asyncio TCP :class:`~repro.net.base.Transport`.

One ``TcpTransport`` owns a background asyncio event loop (daemon
thread).  Every registered endpoint address gets its **own listening
socket** on ``host`` (an OS-assigned port by default), recorded in an
address directory so logical overlay addresses ("broker:0",
"peer:alice") resolve to ``host:port`` pairs; :meth:`add_route` seeds
the directory for endpoints living in other processes.

Threading model — the part that makes synchronous overlay code work
over real sockets:

* the **event loop thread** only moves bytes (accept, read, write);
* every **handler dispatch** runs on a worker-thread pool, so a broker
  function may itself issue blocking :meth:`request` calls mid-handler
  (the federation link handshake does exactly this: the responder
  digest-syncs *back at the initiator* while the initiator is still
  blocked in ``fed_link_req``) without stalling the loop;
* ``REQUEST`` frames dispatch as independent tasks — concurrent
  requests on one connection are multiplexed by ``request_id`` — while
  ``DATA`` frames dispatch sequentially per connection, preserving the
  per-link datagram ordering the simulator provides.

Delivery semantics match the simulator contract: :meth:`send` raises
:class:`~repro.errors.NetworkError` for an address the directory does
not know and returns ``False`` when the connection fails (best-effort
datagram); :meth:`request` raises :class:`NetworkError` on connection
failure, timeout, or a responder that answered nothing.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import struct
import threading
from dataclasses import dataclass, field

from contextlib import nullcontext

from repro import obs
from repro.errors import NetworkError
from repro.net import framing, linkq
from repro.net.base import Frame, FrameHandler, PeerHook
from repro.net.clock import WallClock

#: how long ``close()`` waits for the loop thread to wind down
_SHUTDOWN_GRACE = 5.0


@dataclass
class _EndpointState:
    """Everything the transport tracks for one registered address."""

    handler: FrameHandler
    on_connect: PeerHook | None
    on_close: PeerHook | None
    server: asyncio.AbstractServer | None = None
    #: inbound connection writers (server side), for drain-on-unregister
    inbound: set[asyncio.StreamWriter] = field(default_factory=set)


class _Conn:
    """One pooled outbound connection (src endpoint -> dst address)."""

    def __init__(self, src: str, dst: str, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.src = src
        self.dst = dst
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pending: set[int] = set()  # request ids in flight on this conn
        self.reader_task: asyncio.Task | None = None


class TcpTransport:
    """Length-prefix-framed overlay frames over 127.0.0.1 (or any host)."""

    def __init__(self, host: str = "127.0.0.1", *,
                 request_timeout: float = 30.0,
                 connect_timeout: float = 5.0,
                 max_workers: int = 32) -> None:
        self.host = host
        self.clock = WallClock()
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-net")
        self._lock = threading.Lock()
        self._directory: dict[str, tuple[str, int]] = {}
        self._endpoints: dict[str, _EndpointState] = {}
        self._conns: dict[tuple[str, str], _Conn] = {}
        self._pending: dict[int, tuple[concurrent.futures.Future, str]] = {}
        self._req_ids = itertools.count(1)
        self._closed = False
        self.scheduler: linkq.LinkScheduler | None = None
        self._taps: list = []
        self._interceptors: list = []

    # -- loop plumbing -----------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._closed:
                raise NetworkError("transport is closed")
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever, name="repro-net-loop", daemon=True)
                thread.start()
                self._loop, self._thread = loop, thread
            return self._loop

    def _run(self, coro, timeout: float | None):
        """Run ``coro`` on the loop from any other thread and wait."""
        loop = self._ensure_loop()
        future = asyncio.run_coroutine_threadsafe(coro, loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError as exc:
            future.cancel()
            raise NetworkError("transport operation timed out") from exc

    # -- link scheduling ---------------------------------------------------

    def configure_links(self, policy: linkq.LinkPolicy | None = None, *,
                        breaker_factory=None) -> linkq.LinkScheduler:
        """Install (or replace) the link scheduler for this transport.

        Datagrams to a busy link coalesce into BATCH wire units — one
        ``writer.write`` per flush — with the adaptive window armed as
        an event-loop timer; an idle link still flushes immediately,
        so request/response latency is untouched.
        """
        self.scheduler = linkq.LinkScheduler(
            policy if policy is not None else linkq.LinkPolicy(),
            clock_now=lambda: self.clock.now,
            send_single=lambda src, dst, payload: self._wire_send(
                src, dst, framing.KIND_DATA, payload),
            send_batch=lambda src, dst, payload: self._wire_send(
                src, dst, framing.KIND_BATCH, payload),
            breaker_factory=breaker_factory,
            defer=self._arm_flush_timer)
        return self.scheduler

    def _arm_flush_timer(self, delay: float, callback) -> None:
        """Run ``callback`` on the worker pool after ``delay`` seconds."""

        def fire() -> None:
            try:
                self._pool.submit(callback)
            except RuntimeError:
                pass  # pool already shut down

        try:
            loop = self._ensure_loop()
        except NetworkError:
            return
        loop.call_soon_threadsafe(loop.call_later, delay, fire)

    def corked(self):
        """Batch every send inside the context into shared wire units."""
        if self.scheduler is None or not linkq.FLAGS.frame_batching:
            return nullcontext()
        return self.scheduler.corked()

    def set_link_compression(self, src: str, dst: str, level: int) -> None:
        if self.scheduler is None:
            raise NetworkError("configure_links() before negotiating compression")
        self.scheduler.set_link_compression(src, dst, level)

    # -- registration ------------------------------------------------------

    def register(self, address: str, handler: FrameHandler, *,
                 on_connect: PeerHook | None = None,
                 on_close: PeerHook | None = None) -> None:
        with self._lock:
            if self._closed:
                raise NetworkError("transport is closed")
            if address in self._endpoints:
                raise NetworkError(f"address {address!r} is already registered")
            state = _EndpointState(handler=handler, on_connect=on_connect,
                                   on_close=on_close)
            self._endpoints[address] = state
        try:
            self._run(self._start_server(address, state), self.connect_timeout)
        except Exception:
            with self._lock:
                self._endpoints.pop(address, None)
            raise
        obs.get_registry().set_gauge("net.tcp.endpoints", len(self._endpoints))

    async def _start_server(self, address: str, state: _EndpointState) -> None:
        server = await asyncio.start_server(
            lambda r, w: self._serve_connection(address, state, r, w),
            self.host, 0)
        state.server = server
        port = server.sockets[0].getsockname()[1]
        with self._lock:
            self._directory[address] = (self.host, port)

    def location(self, address: str) -> tuple[str, int]:
        """The (host, port) a registered address listens on."""
        try:
            return self._directory[address]
        except KeyError:
            raise NetworkError(f"no endpoint registered at {address!r}") from None

    def add_route(self, address: str, host: str, port: int) -> None:
        """Seed the directory for an endpoint served by another process."""
        with self._lock:
            self._directory[address] = (host, port)

    def is_registered(self, address: str) -> bool:
        return address in self._directory

    # -- server side -------------------------------------------------------

    async def _serve_connection(self, address: str, state: _EndpointState,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        state.inbound.add(writer)
        write_lock = asyncio.Lock()
        peer_src: str | None = None
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    head = await reader.readexactly(framing.LENGTH_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                (length,) = struct.unpack(">I", head)
                try:
                    framing.check_length(length)
                    body = await reader.readexactly(length)
                    kind, req_id, src, payload = framing.decode_body(body)
                except framing.FramingError:
                    obs.get_registry().incr("net.tcp.bad_frames")
                    break  # unframeable stream: drop the connection
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if peer_src is None:
                    peer_src = src
                    if state.on_connect is not None:
                        await self._loop_safe_hook(state.on_connect, src)
                frame = Frame(src=src, dst=address, payload=payload,
                              sent_at=self.clock.now)
                obs.get_registry().incr("net.tcp.frames_received")
                if kind == framing.KIND_REQUEST:
                    # Independent task: a handler may block on a nested
                    # request back at this very peer (federation link
                    # handshake), so responses must multiplex by id.
                    task = asyncio.ensure_future(self._dispatch_request(
                        state, frame, req_id, writer, write_lock))
                    request_tasks.add(task)
                    task.add_done_callback(request_tasks.discard)
                elif kind == framing.KIND_DATA:
                    # Sequential per connection: datagram order on one
                    # link is preserved, exactly like the simulator.
                    await self._dispatch_data(state, frame)
                elif kind == framing.KIND_BATCH:
                    # One wire unit, several datagrams: split and
                    # dispatch sequentially so per-link order holds.
                    try:
                        inner = framing.decode_batch_payload(payload)
                    except framing.FramingError:
                        obs.get_registry().incr("net.batch.decode_errors")
                        break
                    for data in inner:
                        await self._dispatch_data(state, Frame(
                            src=src, dst=address, payload=data,
                            sent_at=self.clock.now))
                else:
                    obs.get_registry().incr("net.tcp.unexpected_kind")
        finally:
            for task in list(request_tasks):
                task.cancel()
            state.inbound.discard(writer)
            writer.close()
            if peer_src is not None and state.on_close is not None:
                await self._loop_safe_hook(state.on_close, peer_src)

    async def _loop_safe_hook(self, hook: PeerHook, peer: str) -> None:
        """Run a lifecycle hook on the pool so it may touch the overlay."""
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._pool, hook, peer)
        except Exception:
            obs.get_registry().incr("net.tcp.hook_errors")

    async def _dispatch_data(self, state: _EndpointState, frame: Frame) -> None:
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._pool, state.handler, frame)
        except Exception:
            obs.get_registry().incr("net.tcp.handler_errors")

    async def _dispatch_request(self, state: _EndpointState, frame: Frame,
                                req_id: int, writer: asyncio.StreamWriter,
                                write_lock: asyncio.Lock) -> None:
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                self._pool, state.handler, frame)
        except Exception as exc:
            obs.get_registry().incr("net.tcp.handler_errors")
            response = None
            reason = f"handler failed: {type(exc).__name__}"
        else:
            reason = f"endpoint {frame.dst!r} did not answer the request"
        try:
            if response is None:
                out = framing.encode_frame(
                    framing.KIND_ERROR, req_id, frame.dst,
                    reason.encode("utf-8"))
            else:
                out = framing.encode_frame(
                    framing.KIND_RESPONSE, req_id, frame.dst, bytes(response))
            async with write_lock:
                writer.write(out)
                await writer.drain()
        except (ConnectionError, RuntimeError, framing.FramingError):
            obs.get_registry().incr("net.tcp.response_write_failures")

    # -- client side -------------------------------------------------------

    async def _get_conn(self, src: str, dst: str) -> _Conn:
        key = (src, dst)
        conn = self._conns.get(key)
        if conn is not None and not conn.writer.is_closing():
            return conn
        host, port = self.location(dst)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self.connect_timeout)
        conn = _Conn(src, dst, reader, writer)
        conn.reader_task = asyncio.ensure_future(self._conn_reader(conn))
        self._conns[key] = conn
        return conn

    async def _conn_reader(self, conn: _Conn) -> None:
        """Resolve RESPONSE/ERROR frames arriving on an outbound conn."""
        try:
            while True:
                head = await conn.reader.readexactly(framing.LENGTH_BYTES)
                (length,) = struct.unpack(">I", head)
                framing.check_length(length)
                body = await conn.reader.readexactly(length)
                kind, req_id, _src, payload = framing.decode_body(body)
                entry = self._pending.pop(req_id, None)
                conn.pending.discard(req_id)
                if entry is None:
                    obs.get_registry().incr("net.tcp.orphan_responses")
                    continue
                future, _owner = entry
                if kind == framing.KIND_RESPONSE:
                    future.set_result(payload)
                elif kind == framing.KIND_ERROR:
                    future.set_exception(NetworkError(
                        payload.decode("utf-8", "replace")))
                else:
                    future.set_exception(NetworkError(
                        f"unexpected frame kind {kind:#x} in response"))
        except (asyncio.IncompleteReadError, ConnectionError,
                framing.FramingError, asyncio.CancelledError):
            pass
        finally:
            self._conns.pop((conn.src, conn.dst), None)
            try:
                conn.writer.close()
            except RuntimeError:
                pass  # loop already closed (coroutine finalized at GC)
            for req_id in list(conn.pending):
                entry = self._pending.pop(req_id, None)
                if entry is not None and not entry[0].done():
                    entry[0].set_exception(NetworkError(
                        f"connection from {conn.src!r} to {conn.dst!r} "
                        f"was lost"))

    async def _write_frame(self, src: str, dst: str, kind: int,
                           req_id: int, payload: bytes) -> None:
        conn = await self._get_conn(src, dst)
        out = framing.encode_frame(kind, req_id, src, payload)
        async with conn.write_lock:
            conn.writer.write(out)
            await conn.writer.drain()
        if kind == framing.KIND_REQUEST:
            conn.pending.add(req_id)

    # -- adversary surface ---------------------------------------------------
    # The tap/interceptor hooks of repro.net.adversary.  On sockets there
    # is no mid-wire vantage point, so the chain runs on the outbound
    # path of this transport object: every send() datagram, the request
    # leg before the write and the response leg after it.  When the
    # endpoints under attack share the transport (the in-process
    # evaluation setup) that is every frame, matching the simulator.

    def add_tap(self, tap) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap) -> None:
        self._taps.remove(tap)

    def add_interceptor(self, interceptor) -> None:
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor) -> None:
        self._interceptors.remove(interceptor)

    def _through_adversaries(self, frame: Frame) -> Frame | None:
        if not self._taps and not self._interceptors:
            return frame
        from repro.net.adversary import run_chain

        return run_chain(self._taps, self._interceptors, frame)

    # -- transport contract ------------------------------------------------

    def _wire_send(self, src: str, dst: str, kind: int, payload: bytes) -> bool:
        """Write one wire unit (DATA or BATCH); ``False`` on failure."""
        registry = obs.get_registry()
        try:
            self._run(self._write_frame(src, dst, kind, 0, bytes(payload)),
                      self.connect_timeout)
        except (NetworkError, OSError):
            registry.incr("net.tcp.frames_dropped")
            return False
        registry.incr("net.tcp.frames_sent")
        registry.incr("net.tcp.bytes_sent", len(payload))
        return True

    def send(self, src: str, dst: str, payload: bytes) -> bool:
        """Best-effort datagram; ``False`` when the connection fails."""
        self.location(dst)  # unknown destination raises, like the sim
        out = self._through_adversaries(
            Frame(src=src, dst=dst, payload=bytes(payload),
                  sent_at=self.clock.now))
        if out is None or out.dst not in self._directory:
            # Adversarial drop (or redirect into the void): best-effort
            # loss, exactly the simulator's answer.
            obs.get_registry().incr("net.tcp.frames_dropped")
            return False
        src, dst, payload = out.src, out.dst, out.payload
        scheduler = self.scheduler
        if scheduler is None or not linkq.FLAGS.frame_batching:
            return self._wire_send(src, dst, framing.KIND_DATA, payload)
        # coalesce=None: the idle heuristic — a quiet link flushes this
        # frame immediately, a busy one queues behind the adaptive timer.
        return scheduler.enqueue(src, dst, payload)

    def request(self, src: str, dst: str, payload: bytes) -> bytes:
        """Round-trip exchange; raises :class:`NetworkError` on failure."""
        self.location(dst)
        out = self._through_adversaries(
            Frame(src=src, dst=dst, payload=bytes(payload),
                  sent_at=self.clock.now))
        if out is None or out.dst not in self._directory:
            raise NetworkError(f"request from {src!r} to {dst!r} was dropped")
        dst, payload = out.dst, out.payload
        if self.scheduler is not None and linkq.FLAGS.frame_batching:
            # Ordering barrier: datagrams queued to this link must hit
            # the wire before the request does.
            self.scheduler.flush_link(src, dst)
        req_id = next(self._req_ids)
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._pending[req_id] = (future, src)
        registry = obs.get_registry()
        try:
            self._run(self._write_frame(src, dst, framing.KIND_REQUEST,
                                        req_id, bytes(payload)),
                      self.connect_timeout)
        except (NetworkError, OSError) as exc:
            self._pending.pop(req_id, None)
            raise NetworkError(
                f"request from {src!r} to {dst!r} was dropped: {exc}") from exc
        registry.incr("net.tcp.frames_sent")
        registry.incr("net.tcp.bytes_sent", len(payload))
        try:
            response = future.result(self.request_timeout)
        except concurrent.futures.TimeoutError as exc:
            self._pending.pop(req_id, None)
            raise NetworkError(
                f"request from {src!r} to {dst!r} timed out after "
                f"{self.request_timeout}s") from exc
        # Response leg through the same chain: taps see the answer,
        # interceptors may tamper with or drop it, like the simulator's
        # second _through_adversaries pass inside request().
        back = self._through_adversaries(
            Frame(src=dst, dst=src, payload=response,
                  sent_at=self.clock.now))
        if back is None:
            raise NetworkError(
                f"response from {dst!r} to {src!r} was dropped")
        return back.payload

    def unregister(self, address: str) -> None:
        """Drop an endpoint and drain everything attached to it.

        Closes its listening socket, every inbound connection, every
        pooled outbound connection it originated, and fails its pending
        requests — so a closed endpoint can never leak connections.
        """
        if self.scheduler is not None:
            self.scheduler.flush_for(address)
        with self._lock:
            state = self._endpoints.pop(address, None)
            self._directory.pop(address, None)
        if state is None:
            return
        if self._loop is not None and self._loop.is_running():
            try:
                self._run(self._teardown_endpoint(address, state),
                          _SHUTDOWN_GRACE)
            except NetworkError:
                pass
        for req_id, (future, owner) in list(self._pending.items()):
            if owner == address and not future.done():
                self._pending.pop(req_id, None)
                future.set_exception(NetworkError(
                    f"endpoint {address!r} closed with the request in flight"))
        obs.get_registry().set_gauge("net.tcp.endpoints", len(self._endpoints))

    async def _teardown_endpoint(self, address: str,
                                 state: _EndpointState) -> None:
        if state.server is not None:
            state.server.close()
            await state.server.wait_closed()
        for writer in list(state.inbound):
            writer.close()
        state.inbound.clear()
        for key, conn in list(self._conns.items()):
            if key[0] == address:
                if conn.reader_task is not None:
                    conn.reader_task.cancel()
                conn.writer.close()
                self._conns.pop(key, None)

    async def _drain_tasks(self) -> None:
        tasks = [task for task in asyncio.all_tasks()
                 if task is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        """Tear down every endpoint, the pool, and the event loop."""
        with self._lock:
            if self._closed:
                return
            addresses = list(self._endpoints)
        if self.scheduler is not None:
            self.scheduler.flush_all()
        for address in addresses:
            self.unregister(address)
        with self._lock:
            loop, thread = self._loop, self._thread
        if loop is not None and loop.is_running():
            # Let cancelled reader/request tasks run their finally blocks
            # while the loop is still alive, so no coroutine is finalized
            # against a closed loop at GC time.
            try:
                self._run(self._drain_tasks(), _SHUTDOWN_GRACE)
            except NetworkError:
                pass
        with self._lock:
            self._closed = True
            self._loop = self._thread = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(_SHUTDOWN_GRACE)
            loop.close()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
