"""The transport abstraction underneath every endpoint.

A :class:`Transport` moves **serialized frame bytes** between named
addresses.  Two backends implement it:

* :class:`repro.net.sim.SimTransport` — the discrete-event simulator
  (deterministic; the test harness),
* :class:`repro.net.tcp.TcpTransport` — real asyncio TCP sockets with
  length-prefixed framing (the production path).

The overlay never talks to a backend directly: it goes through
:class:`repro.jxta.endpoint.Endpoint`, which owns message decode,
the wire boundary and handler dispatch.  Because both backends carry
the same :class:`Frame` quadruple (src, dst, payload, sent_at), the
same broker/client/federation/secure-* code serves simulated links
and real sockets unchanged.

Lifecycle hooks, modeled on event-driven IPC servers (connect /
receive / close), are delivered per registration:

* ``on_connect(peer)`` — first traffic (or socket accept) from a peer,
* ``on_close(peer)`` — the peer's connection went away (socket close;
  synthesized at unregister time on the simulator).

Message-level ``on_receive`` lives on the endpoint, after decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable


@dataclass(frozen=True)
class Frame:
    """One message on the wire."""

    src: str
    dst: str
    payload: bytes
    sent_at: float

    @property
    def size(self) -> int:
        return len(self.payload)


#: Handler signature: receives the frame, returns optional response bytes.
FrameHandler = Callable[[Frame], "bytes | None"]

#: Lifecycle hook: called with the peer's address.
PeerHook = Callable[[str], None]


class TransportClock(Protocol):
    """What a backend's clock must offer the layers above it.

    :class:`repro.sim.clock.VirtualClock` (simulated time) and
    :class:`repro.net.clock.WallClock` (real time) both satisfy this,
    so retry backoff, timeout budgets, credential validity windows and
    circuit breakers run unchanged on either backend.
    """

    @property
    def now(self) -> float: ...

    def advance(self, seconds: float) -> float: ...

    def charge_cpu(self, seconds: float) -> float: ...

    def cpu_section(self): ...


@runtime_checkable
class Transport(Protocol):
    """A named-address datagram + request/response byte mover.

    Semantics every backend must honour (they are what the overlay's
    retry/failover machinery is written against):

    * :meth:`register` raises :class:`~repro.errors.NetworkError` when
      the address is taken;
    * :meth:`send` raises :class:`~repro.errors.NetworkError` for an
      unknown destination and returns ``False`` on best-effort loss;
    * :meth:`request` raises :class:`~repro.errors.NetworkError` when
      the exchange fails or the responder does not answer.
    """

    clock: TransportClock

    def register(self, address: str, handler: FrameHandler, *,
                 on_connect: PeerHook | None = None,
                 on_close: PeerHook | None = None) -> None: ...

    def unregister(self, address: str) -> None: ...

    def is_registered(self, address: str) -> bool: ...

    def send(self, src: str, dst: str, payload: bytes) -> bool: ...

    def request(self, src: str, dst: str, payload: bytes) -> bytes: ...


def as_transport(backend) -> "Transport":
    """Coerce ``backend`` into a :class:`Transport`.

    Accepts a ready transport unchanged; a bare
    :class:`~repro.sim.network.SimNetwork` is wrapped in a
    :class:`~repro.net.sim.SimTransport`, which is what keeps every
    pre-redesign ``Endpoint(network, address)`` call site working.
    """
    # Imported lazily: repro.sim.network re-exports our Frame, so a
    # module-level import here would cycle through the package.
    from repro.sim.network import SimNetwork

    if isinstance(backend, SimNetwork):
        from repro.net.sim import SimTransport
        return SimTransport(backend)
    if isinstance(backend, Transport):
        return backend
    raise TypeError(
        f"expected a Transport or SimNetwork, got {type(backend).__name__}")
