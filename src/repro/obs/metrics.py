"""Counters, gauges and histogram timers behind a process-local registry.

This module is deliberately **zero-dependency** (stdlib only) and imports
nothing from the rest of ``repro`` except the dependency-free
:mod:`repro.perf` switch set, so every layer — crypto, simulator,
overlay, secure core — can instrument itself without creating cycles.

Design goals, in order:

1. **Cheap when disabled.**  Every recording path starts with a single
   ``enabled`` check; a disabled registry performs no clock reads, no
   dict lookups and no allocations (the opt-out the benchmarks need).
2. **Bounded memory.**  Histograms keep exact count/sum/min/max forever
   but retain at most ``max_samples`` observations for the percentile
   estimates (ring-buffer overwrite beyond that), so a broker serving
   millions of operations does not grow without bound.
3. **One way to read.**  :meth:`Registry.snapshot` renders everything as
   plain dicts that serialise straight to ``BENCH_OBS.json``.

Naming conventions live in ``docs/OBSERVABILITY.md``; the machine-checked
pattern list is :data:`repro.obs.METRIC_PATTERNS`.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro import perf

#: Environment variable that disables the default registry at import time.
DISABLE_ENV = "REPRO_OBS_DISABLED"

#: Retained observations per histogram (percentiles are computed over the
#: most recent window once exceeded; count/sum/min/max stay exact).
DEFAULT_MAX_SAMPLES = 8192


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value", "_owner")

    def __init__(self, name: str, owner: "Registry | None" = None) -> None:
        self.name = name
        self.value = 0
        self._owner = owner

    def incr(self, by: int = 1) -> None:
        if self._owner is not None and not self._owner.enabled:
            return
        self.value += by


class Gauge:
    """A named value that can go up and down (e.g. registered endpoints)."""

    __slots__ = ("name", "value", "_owner")

    def __init__(self, name: str, owner: "Registry | None" = None) -> None:
        self.name = name
        self.value = 0.0
        self._owner = owner

    def set(self, value: float) -> None:
        if self._owner is not None and not self._owner.enabled:
            return
        self.value = float(value)

    def add(self, delta: float) -> None:
        if self._owner is not None and not self._owner.enabled:
            return
        self.value += delta


class Histogram:
    """Streaming distribution summary with percentile estimates.

    Usable standalone (``owner=None`` records unconditionally) or through
    a :class:`Registry`.  ``observe`` keeps exact aggregate moments and a
    bounded sample window for :meth:`percentile`.
    """

    __slots__ = ("name", "count", "total", "min_value", "max_value",
                 "_samples", "_sorted", "_max_samples", "_sum_sq", "_owner")

    def __init__(self, name: str = "", owner: "Registry | None" = None,
                 max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_value = 0.0
        self.max_value = 0.0
        self._sum_sq = 0.0
        self._samples: list[float] = []
        self._sorted: list[float] | None = []
        self._max_samples = max_samples
        self._owner = owner

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        if self._owner is not None and not self._owner.enabled:
            return
        value = float(value)
        if self.count == 0:
            self.min_value = self.max_value = value
        else:
            if value < self.min_value:
                self.min_value = value
            if value > self.max_value:
                self.max_value = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:  # ring-buffer overwrite: percentiles track the recent window
            self._samples[self.count % self._max_samples] = value
        self.count += 1
        self.total += value
        self._sum_sq += value * value
        self._sorted = None  # invalidate the percentile cache

    # -- statistics ----------------------------------------------------------

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained observation window (insertion order)."""
        return tuple(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation over *all* observations (exact)."""
        if self.count < 2:
            return 0.0
        var = (self._sum_sq - self.count * self.mean * self.mean) / (self.count - 1)
        return math.sqrt(var) if var > 0.0 else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over the retained window.

        An empty histogram reports 0.0 for every percentile (metrics must
        never raise in reporting paths); ``p`` outside [0, 100] raises.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * (p / 100.0)
        lo = int(rank)
        frac = rank - lo
        if frac == 0.0:
            return ordered[lo]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _Timer:
    """Context manager recording elapsed wall time (ms) into a histogram."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe((time.perf_counter() - self._t0) * 1e3)


class _NullTimer:
    """Shared no-op timer handed out by a disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class Registry:
    """A process-local namespace of counters, gauges and histograms.

    Instruments are created on first use and live for the registry's
    lifetime.  All recording honours :attr:`enabled`; a disabled registry
    is safe to leave wired into hot paths (single branch per call).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switches ------------------------------------------------------------

    def enable(self) -> "Registry":
        self.enabled = True
        return self

    def disable(self) -> "Registry":
        self.enabled = False
        return self

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name, owner=self)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, owner=self)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, owner=self)
        return histogram

    # -- recording conveniences ----------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        if not self.enabled:
            return
        self.counter(name).incr(by)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def time(self, name: str) -> "_Timer | _NullTimer":
        """``with registry.time("overlay.login.latency_ms"): ...``"""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.histogram(name))

    # -- reading -------------------------------------------------------------

    def count(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def metric_names(self) -> list[str]:
        """Every metric name this registry has recorded, sorted."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> dict[str, dict]:
        """Everything recorded so far, as JSON-ready plain dicts."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class InternedCounter:
    """A counter name resolved to its instrument once per registry.

    ``registry.incr(name)`` hashes the name into the instrument dict on
    every call; hot paths (one or more increments *per frame*) instead
    hold one of these, which caches the :class:`Counter` object and
    re-resolves only when the process registry is swapped (bench/test
    isolation).  With ``perf.FLAGS.interned_metrics`` off it degrades to
    exactly the legacy string-keyed path.
    """

    __slots__ = ("name", "_registry", "_counter")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Registry | None = None
        self._counter: Counter | None = None

    def incr(self, by: int = 1) -> None:
        registry = _REGISTRY
        if not registry.enabled:
            return
        if not perf.FLAGS.interned_metrics:
            registry.incr(self.name, by)
            return
        if registry is not self._registry:
            self._counter = registry.counter(self.name)
            self._registry = registry
        self._counter.value += by


class InternedHistogram:
    """Histogram twin of :class:`InternedCounter` (per-frame observes)."""

    __slots__ = ("name", "_registry", "_histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Registry | None = None
        self._histogram: Histogram | None = None

    def observe(self, value: float) -> None:
        registry = _REGISTRY
        if not registry.enabled:
            return
        if not perf.FLAGS.interned_metrics:
            registry.observe(self.name, value)
            return
        if registry is not self._registry:
            self._histogram = registry.histogram(self.name)
            self._registry = registry
        self._histogram.observe(value)


def _enabled_by_default() -> bool:
    return os.environ.get(DISABLE_ENV, "").lower() not in ("1", "true", "yes")


#: The process-local default registry every instrumented module records to.
_REGISTRY = Registry(enabled=_enabled_by_default())


def get_registry() -> Registry:
    return _REGISTRY


def set_registry(registry: Registry) -> Registry:
    """Swap the process registry (tests / bench isolation).  Returns it."""
    global _REGISTRY
    _REGISTRY = registry
    return registry
