"""``repro.obs`` — zero-dependency observability: metrics, traces, hooks.

Three cooperating, individually usable pieces (see
``docs/OBSERVABILITY.md`` for the operator guide):

* :mod:`repro.obs.metrics` — counters / gauges / histogram timers behind
  a process-local :class:`Registry` (p50/p95/p99, byte accounting);
* :mod:`repro.obs.trace` — nested protocol-phase spans with JSON export;
* :mod:`repro.obs.events` — the typed protocol hook bus
  (``on_login``, ``on_replay_blocked``, ...).

Everything records to process-local defaults swappable via
``set_registry`` / ``set_tracer`` / ``set_events``; setting the
environment variable ``REPRO_OBS_DISABLED=1`` (before import) starts the
default registry disabled, which turns every instrumentation point into
a single-branch no-op.
"""

from __future__ import annotations

import functools
import re
from typing import Callable

from repro.obs.events import (
    HOOKS,
    ProtocolEvents,
    emit,
    get_events,
    on,
    set_events,
)
from repro.obs.metrics import (
    DISABLE_ENV,
    Counter,
    Gauge,
    Histogram,
    InternedCounter,
    InternedHistogram,
    Registry,
    get_registry,
    set_registry,
)
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, span

#: Every metric name the instrumented tree may export, as documented
#: patterns (``<x>`` matches one dot-free segment).  ``docs/OBSERVABILITY.md``
#: must list each pattern verbatim — the tests enforce both directions.
METRIC_PATTERNS: tuple[str, ...] = (
    # simulated network (sim/network.py)
    "net.frames_sent",
    "net.frames_delivered",
    "net.frames_dropped",
    "net.bytes_sent",
    "net.frame_bytes",
    "net.endpoints",
    # link-layer send scheduler (net/linkq.py)
    "net.queue.enqueued",
    "net.queue.depth",
    "net.queue.drop",
    "net.queue.defer",
    "net.queue.flush",
    "net.batch.units",
    "net.batch.frames",
    "net.batch.decode_errors",
    "net.compress.units",
    "net.compress.bytes_in",
    "net.compress.bytes_out",
    "net.compress.ratio",
    # client primitives (overlay/primitives.py decorator)
    "overlay.<primitive>.calls",
    "overlay.<primitive>.errors",
    "overlay.<primitive>.latency_ms",
    "overlay.<primitive>.bytes_sent",
    "overlay.<primitive>.frames_sent",
    "overlay.<primitive>.retries",
    # robustness policies (overlay/policy.py)
    "policy.breaker.state",
    "policy.breaker.transitions",
    "policy.retry.backoff_ms",
    # fault injection (sim/faults.py)
    "faults.<fault>.injected",
    # broker functions (overlay/broker.py, core/secure_broker.py)
    "broker.fn.<msg_type>.calls",
    "broker.fn.<msg_type>.latency_ms",
    # protocol-phase spans (core/secure_*.py); <path> may contain dots
    "span.<path>.ms",
    # crypto operation counters
    "crypto.rsa.public_op",
    "crypto.rsa.private_op",
    "crypto.rsa.verify_op",
    "crypto.rsa.keygen",
    "crypto.aes.key_schedule",
    "crypto.aes.blocks_encrypted",
    "crypto.aes.blocks_decrypted",
    "crypto.envelope.seal",
    "crypto.envelope.seal_many",
    "crypto.envelope.recipients",
    "crypto.envelope.open",
    "crypto.envelope.plaintext_bytes",
    # per-group epoch keys (crypto/groupkey.py)
    "crypto.groupkey.seal",
    "crypto.groupkey.open",
    "crypto.groupkey.trimmed",
    "crypto.groupkey.reject.<reason>",
    # fast-path caches (crypto/resume.py, crypto/sigcache.py,
    # core/signed_advertisement.py)
    "crypto.resume.<event>",
    "crypto.sigcache.<event>",
    "core.adv_cache.evictions",
    # broker federation (overlay/federation.py, core/secure_federation.py)
    "fed.members",
    "fed.owned_entries",
    "fed.redirects",
    "fed.redirect_followed",
    "fed.redirect_failed",
    "fed.scatter",
    "fed.scatter_miss",
    "fed.reject.<reason>",
    "fed.sync.<event>",
    "fed.presence.<event>",
    # broker-mediated group cast (overlay/groupcast.py)
    "groupcast.rotate",
    "groupcast.rotate.degraded",
    "groupcast.sub",
    "groupcast.unsub",
    "groupcast.cast",
    "groupcast.delivered",
    "groupcast.relayed",
    "groupcast.replayed",
    "groupcast.relay.received",
    "groupcast.relay.ignored",
    "groupcast.epoch.pull",
    "groupcast.epoch.pull_failed",
    "groupcast.epoch.serve",
    "groupcast.epoch.bad_secret",
    "groupcast.store.evicted",
    "groupcast.store.expired",
    "groupcast.reject.<code>",
    "groupcast.fed.unauthorized",
    # hook-bus accounting (obs/events.py)
    "events.<hook>",
    "events.listener_errors",
    # wire-boundary rejections (wire/boundary.py)
    "wire.reject.oversize",
    "wire.reject.<msg_type>.<reason>",
    # bench-harness samples (bench/timing.py); <path> may contain dots
    "bench.<path>.total_ms",
)

_SEGMENT = r"[A-Za-z0-9_\-]+"        # one dot-free name segment
_PATH = r"[A-Za-z0-9_.\-]+"          # dotted span/bench paths


@functools.lru_cache(maxsize=None)
def _pattern_regex(pattern: str) -> "re.Pattern[str]":
    # re.escape leaves '<'/'>' alone, so '<x>' placeholders survive to here.
    escaped = re.escape(pattern).replace("<path>", _PATH)
    return re.compile("^" + re.sub(r"<[a-z_]+>", _SEGMENT, escaped) + "$")


def metric_pattern_for(name: str) -> str | None:
    """The documented pattern a concrete metric name falls under, if any."""
    for pattern in METRIC_PATTERNS:
        if _pattern_regex(pattern).match(name):
            return pattern
    return None


def timed_handler(name: str, handler: Callable) -> Callable:
    """Wrap a broker/endpoint message handler with call + latency metrics.

    Produces ``<name>.calls`` and ``<name>.latency_ms``; with the
    registry disabled the wrapper is one branch on top of the handler.
    """

    @functools.wraps(handler)
    def wrapped(message, src):
        registry = get_registry()
        if not registry.enabled:
            return handler(message, src)
        registry.incr(f"{name}.calls")
        with registry.time(f"{name}.latency_ms"):
            return handler(message, src)

    return wrapped


__all__ = [
    "DISABLE_ENV",
    "HOOKS",
    "METRIC_PATTERNS",
    "Counter",
    "Gauge",
    "Histogram",
    "InternedCounter",
    "InternedHistogram",
    "ProtocolEvents",
    "Registry",
    "Span",
    "Tracer",
    "emit",
    "get_events",
    "get_registry",
    "get_tracer",
    "metric_pattern_for",
    "on",
    "set_events",
    "set_registry",
    "set_tracer",
    "span",
    "timed_handler",
]
