"""Typed protocol event hooks — the operator/attack-harness surface.

Where :mod:`repro.overlay.events` models the *application* events the
paper's Client Module throws (section 2.2), this bus carries the
*observability* hooks of the secure protocol machinery itself: which
step of secureConnection / secureLogin / secureMsgPeer just happened,
and in particular which *defence* just fired.  Attack drivers and tests
subscribe to prove a defence triggered; operators subscribe to feed
alerting.

The hook catalogue below is typed in the documentation sense (each hook
has a fixed, documented keyword payload — the ipcs event-reference
idiom): subscribing or emitting an unknown hook raises immediately, and
every emit is counted as ``events.<hook>`` in the metrics registry.

Listener errors are contained: a crashing subscriber never breaks the
protocol path that emitted the hook (counted as
``events.listener_errors``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.metrics import Registry, get_registry

EventListener = Callable[..., None]

#: hook name -> documented keyword payload (the typed contract).
HOOKS: dict[str, str] = {
    "on_connect":             "peer, broker, secure",
    "on_login":               "peer, username, groups, secure",
    "on_logout":              "peer, username",
    "on_msg_sent":            "peer, to_peer, group, n_bytes, secure",
    "on_msg_received":        "peer, from_peer, group, n_bytes",
    "on_msg_rejected":        "peer, reason",
    "on_credential_issued":   "peer, subject",
    "on_credential_rejected": "peer, reason",
    "on_replay_blocked":      "peer, kind",   # kind: 'sid' | 'nonce'
    "on_broker_rejected":     "peer, broker, reason",
    "on_frame_dropped":       "src, dst, n_bytes",
    "on_retry":               "peer, primitive, attempt, reason",
    "on_degraded":            "peer, primitive, reason",
    "on_breaker_state":       "name, state",  # state: closed|half_open|open
}


class ProtocolEvents:
    """Synchronous pub/sub over the :data:`HOOKS` catalogue."""

    def __init__(self, registry: Registry | None = None) -> None:
        self._listeners: dict[str, list[EventListener]] = {}
        self._registry = registry

    def _reg(self) -> Registry:
        return self._registry if self._registry is not None else get_registry()

    @staticmethod
    def _check(hook: str) -> None:
        if hook not in HOOKS:
            raise ValueError(
                f"unknown observability hook {hook!r}; known: {sorted(HOOKS)}")

    def on(self, hook: str, listener: EventListener) -> EventListener:
        """Subscribe; returns the listener so it can double as a decorator."""
        self._check(hook)
        self._listeners.setdefault(hook, []).append(listener)
        return listener

    def off(self, hook: str, listener: EventListener) -> None:
        self._check(hook)
        self._listeners.get(hook, []).remove(listener)

    # ipcs-style aliases
    subscribe = on
    unsubscribe = off

    def listeners(self, hook: str) -> list[EventListener]:
        self._check(hook)
        return list(self._listeners.get(hook, []))

    def emit(self, hook: str, **payload: Any) -> None:
        self._check(hook)
        reg = self._reg()
        if reg.enabled:
            reg.incr(f"events.{hook}")
        listeners = self._listeners.get(hook)
        if not listeners:
            return
        for listener in list(listeners):
            try:
                listener(**payload)
            except Exception:  # a bad subscriber must not break the protocol
                reg.incr("events.listener_errors")

    def clear(self) -> None:
        self._listeners.clear()


#: The process-local default hook bus.
_EVENTS = ProtocolEvents()


def get_events() -> ProtocolEvents:
    return _EVENTS


def set_events(events: ProtocolEvents) -> ProtocolEvents:
    global _EVENTS
    _EVENTS = events
    return events


def emit(hook: str, **payload: Any) -> None:
    """Emit on the process bus: ``obs.emit("on_replay_blocked", ...)``."""
    _EVENTS.emit(hook, **payload)


def on(hook: str, listener: EventListener) -> EventListener:
    """Subscribe on the process bus."""
    return _EVENTS.on(hook, listener)
