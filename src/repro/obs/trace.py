"""Span-based tracing for protocol phases.

A *span* is one timed phase of a protocol run (``secureLogin``, its
``secure_login.envelope`` child, ...).  Spans nest: entering a span while
another is open makes it a child, so a full secure join exports as one
tree per primitive invocation.  Usage::

    from repro import obs

    with obs.span("secureLogin", peer=str(peer_id)):
        with obs.span("secure_login.sign"):
            ...

Every span also records its duration into the metrics registry as the
histogram ``span.<name>.ms`` — that is how the per-phase p50/p95 columns
in ``BENCH_OBS.json`` are produced without a second instrumentation pass.

Like the rest of :mod:`repro.obs` this module is stdlib-only.  Durations
are *wall clock* (``time.perf_counter``): they measure the real crypto
and serialisation work, which is exactly what the paper's overhead
figures account; modeled network transit lives in the simulator's
virtual clock, not here.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.obs.metrics import Registry, get_registry

#: Completed root spans retained per tracer (oldest evicted first).
DEFAULT_MAX_TRACES = 256


class Span:
    """One timed, attributed, possibly-nested phase."""

    __slots__ = ("name", "attrs", "start_ms", "end_ms", "children", "error")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ms = time.perf_counter() * 1e3
        self.end_ms: float | None = None
        self.children: list["Span"] = []
        self.error: str | None = None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": self.duration_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NullSpanContext:
    """Shared no-op context handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.error = f"{type(exc).__name__}: {exc}"
        self._tracer._finish(self._span)
        return None


class Tracer:
    """Builds span trees and exports them as JSON.

    ``registry=None`` follows the process default registry — both for the
    enabled/disabled switch and for the ``span.<name>.ms`` histograms.
    """

    def __init__(self, registry: Registry | None = None,
                 max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self._registry = registry
        self._stack: list[Span] = []
        self.finished: list[Span] = []
        self._max_traces = max_traces

    def _reg(self) -> Registry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def enabled(self) -> bool:
        return self._reg().enabled

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> "_SpanContext | _NullSpanContext":
        if not self._reg().enabled:
            return _NULL_SPAN
        span = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end_ms = time.perf_counter() * 1e3
        # Unwind to this span even if inner contexts leaked via exceptions.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._reg().observe(f"span.{span.name}.ms", span.duration_ms)
        if not self._stack:
            self.finished.append(span)
            if len(self.finished) > self._max_traces:
                del self.finished[:len(self.finished) - self._max_traces]

    # -- export --------------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [s.to_dict() for s in self.finished]

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def export(self, path: str) -> None:
        """Write every finished trace tree to ``path`` as a JSON array."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def clear(self) -> None:
        self._stack.clear()
        self.finished.clear()


#: The process-local default tracer (follows the default registry).
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    global _TRACER
    _TRACER = tracer
    return tracer


def span(name: str, **attrs: Any):
    """Open a span on the process tracer: ``with obs.span("secureLogin"):``"""
    return _TRACER.span(name, **attrs)
